//! Table V attribute mining.
//!
//! Attributes are mined *from the NLR* of each trace: each attribute is
//! either a **single** entry of the summarized sequence (a function
//! name or a loop ID `L<n>`) or a **double** — a pair of consecutive
//! entries (`a→b`), which encodes calling-context-like information.
//! Each attribute carries a frequency, encoded per [`FreqMode`]:
//! `actual` (observed count; loop entries weigh their iteration count),
//! `log10` (compressed), or `noFreq` (presence only).

use nlr::{Element, Nlr};
use std::collections::BTreeMap;
use std::fmt;

/// Single entries or consecutive pairs (Table V rows), plus the
/// caller/callee extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Each entry of the trace NLR.
    Single,
    /// Each pair of consecutive entries.
    Double,
    /// Caller→callee pairs recovered from call/return nesting — the
    /// "pairs of function calls … this reflects calling context"
    /// vantage point the paper inherits from Weber et al. Requires a
    /// filter that keeps returns (otherwise nesting is unknown and the
    /// mining falls back to [`AttrKind::Double`] semantics).
    CallerCallee,
}

/// Frequency encoding (Table V columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreqMode {
    /// The observed frequency.
    Actual,
    /// `log10(frequency) + 1` — compresses large trip-count gaps while
    /// keeping presence weight ≥ 1.
    Log10,
    /// Presence/absence only (weight 1).
    NoFreq,
}

/// One attribute-mining configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrConfig {
    /// Entry granularity.
    pub kind: AttrKind,
    /// Frequency encoding.
    pub freq: FreqMode,
}

impl AttrConfig {
    /// All six Table V combinations, for parameter sweeps.
    pub const ALL: [AttrConfig; 6] = [
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::NoFreq,
        },
    ];

    /// Table V plus the caller/callee extension — nine combinations.
    pub const EXTENDED: [AttrConfig; 9] = [
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::NoFreq,
        },
        AttrConfig {
            kind: AttrKind::CallerCallee,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::CallerCallee,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::CallerCallee,
            freq: FreqMode::NoFreq,
        },
    ];
}

impl fmt::Display for AttrConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AttrKind::Single => "sing",
            AttrKind::Double => "doub",
            AttrKind::CallerCallee => "ctxt",
        };
        let m = match self.freq {
            FreqMode::Actual => "actual",
            FreqMode::Log10 => "log10",
            FreqMode::NoFreq => "noFreq",
        };
        write!(f, "{k}.{m}")
    }
}

impl std::str::FromStr for AttrConfig {
    type Err = String;

    /// Parse an attribute code like `sing.actual` / `doub.noFreq` /
    /// `ctxt.log10`.
    fn from_str(code: &str) -> Result<AttrConfig, String> {
        let (k, m) = code
            .split_once('.')
            .ok_or_else(|| format!("attribute code `{code}` must be <kind>.<freq>"))?;
        let kind = match k {
            "sing" => AttrKind::Single,
            "doub" => AttrKind::Double,
            "ctxt" => AttrKind::CallerCallee,
            other => return Err(format!("unknown attribute kind `{other}`")),
        };
        let freq = match m {
            "actual" => FreqMode::Actual,
            "log10" => FreqMode::Log10,
            "noFreq" | "nofreq" => FreqMode::NoFreq,
            other => return Err(format!("unknown frequency mode `{other}`")),
        };
        Ok(AttrConfig { kind, freq })
    }
}

/// Render one NLR element as an attribute token: function/loop label.
fn entry_label<F: Fn(u32) -> String>(e: Element, name: &F) -> String {
    match e {
        Element::Sym(s) => name(s),
        Element::Loop { body, .. } => body.to_string(),
    }
}

/// Occurrence weight of one NLR element: a symbol counts 1, a loop
/// counts its iteration count (it stands for that many body executions).
fn entry_weight(e: Element) -> f64 {
    match e {
        Element::Sym(_) => 1.0,
        Element::Loop { count, .. } => count as f64,
    }
}

/// Mine the attribute set `{attr: weight}` of one trace.
///
/// `symbols` is the filtered pre-NLR stream (needed for the
/// caller/callee kind, which recovers nesting from call/return bits);
/// `nlr` is its summarization (used for single/double kinds).
pub fn mine<F: Fn(u32) -> String>(
    symbols: &[u32],
    nlr: &Nlr,
    cfg: AttrConfig,
    name: &F,
) -> Vec<(String, f64)> {
    let mut freq: BTreeMap<String, f64> = BTreeMap::new();
    let elems = nlr.elements();
    match cfg.kind {
        AttrKind::Single => {
            for &e in elems {
                *freq.entry(entry_label(e, name)).or_insert(0.0) += entry_weight(e);
            }
        }
        AttrKind::Double => {
            mine_double(elems, name, &mut freq);
        }
        AttrKind::CallerCallee => {
            if !mine_caller_callee(symbols, name, &mut freq) {
                // No return events in the stream: nesting unknown.
                mine_double(elems, name, &mut freq);
            }
        }
    }
    freq.into_iter()
        .map(|(k, f)| {
            let w = match cfg.freq {
                FreqMode::Actual => f,
                FreqMode::Log10 => f.log10() + 1.0,
                FreqMode::NoFreq => 1.0,
            };
            (k, w)
        })
        .collect()
}

fn mine_double<F: Fn(u32) -> String>(
    elems: &[Element],
    name: &F,
    freq: &mut BTreeMap<String, f64>,
) {
    for w in elems.windows(2) {
        let key = format!("{}→{}", entry_label(w[0], name), entry_label(w[1], name));
        *freq.entry(key).or_insert(0.0) += 1.0;
    }
    // A 1-element trace still yields its lone entry so the object is
    // not empty.
    if elems.len() == 1 {
        freq.insert(entry_label(elems[0], name), 1.0);
    }
}

/// Caller→callee pairs from call/return nesting. Returns false when
/// the stream contains no returns (nesting unrecoverable).
fn mine_caller_callee<F: Fn(u32) -> String>(
    symbols: &[u32],
    name: &F,
    freq: &mut BTreeMap<String, f64>,
) -> bool {
    use dt_trace::TraceEvent;
    if !symbols
        .iter()
        .any(|&s| TraceEvent::from_symbol(s).is_return())
    {
        return false;
    }
    let mut stack: Vec<u32> = Vec::new();
    for &sym in symbols {
        let e = TraceEvent::from_symbol(sym);
        if e.is_call() {
            let callee = e.fn_id().0;
            let key = match stack.last() {
                Some(&caller) => format!("{}⇒{}", name(caller << 1), name(callee << 1)),
                None => format!("⊤⇒{}", name(callee << 1)),
            };
            *freq.entry(key).or_insert(0.0) += 1.0;
            stack.push(callee);
        } else {
            // Tolerate unbalanced streams (filters may drop the call
            // side of a pair): pop the matching frame if present.
            if let Some(pos) = stack.iter().rposition(|&f| f == e.fn_id().0) {
                stack.truncate(pos);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlr::{LoopTable, NlrBuilder};

    fn names(s: u32) -> String {
        format!("f{s}")
    }

    fn sample_nlr() -> (Vec<u32>, Nlr, LoopTable) {
        let mut table = LoopTable::new();
        // f0 (f1 f2)^4 f3 f0
        let input = vec![0, 1, 2, 1, 2, 1, 2, 1, 2, 3, 0];
        let nlr = NlrBuilder::new(10).build(&input, &mut table);
        (input, nlr, table)
    }

    #[test]
    fn single_actual_counts_loops_by_iterations() {
        let (input, nlr, _t) = sample_nlr();
        let attrs = mine(
            &input,
            &nlr,
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            &names,
        );
        let get = |k: &str| attrs.iter().find(|(a, _)| a == k).map(|(_, w)| *w);
        assert_eq!(get("f0"), Some(2.0));
        assert_eq!(get("L0"), Some(4.0)); // loop weighted by trip count
        assert_eq!(get("f3"), Some(1.0));
    }

    #[test]
    fn nofreq_flattens_weights() {
        let (input, nlr, _t) = sample_nlr();
        let attrs = mine(
            &input,
            &nlr,
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
            &names,
        );
        assert!(attrs.iter().all(|(_, w)| *w == 1.0));
    }

    #[test]
    fn log10_compresses() {
        let (input, nlr, _t) = sample_nlr();
        let attrs = mine(
            &input,
            &nlr,
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Log10,
            },
            &names,
        );
        let l0 = attrs.iter().find(|(a, _)| a == "L0").unwrap().1;
        assert!((l0 - (4.0f64.log10() + 1.0)).abs() < 1e-12);
        let f3 = attrs.iter().find(|(a, _)| a == "f3").unwrap().1;
        assert!((f3 - 1.0).abs() < 1e-12); // log10(1)+1
    }

    #[test]
    fn double_attrs_are_consecutive_pairs() {
        let (input, nlr, _t) = sample_nlr();
        let attrs = mine(
            &input,
            &nlr,
            AttrConfig {
                kind: AttrKind::Double,
                freq: FreqMode::Actual,
            },
            &names,
        );
        let keys: Vec<&str> = attrs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["L0→f3", "f0→L0", "f3→f0"]);
    }

    #[test]
    fn singleton_trace_double_fallback() {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(10).build(&[5], &mut table);
        let attrs = mine(
            &[5],
            &nlr,
            AttrConfig {
                kind: AttrKind::Double,
                freq: FreqMode::NoFreq,
            },
            &names,
        );
        assert_eq!(attrs, vec![("f5".to_string(), 1.0)]);
    }

    #[test]
    fn caller_callee_uses_nesting() {
        use dt_trace::{FnId, TraceEvent};
        // main { a { b } b } encoded as call/return symbols.
        let sym = |f: u32, ret: bool| {
            if ret {
                TraceEvent::Return(FnId(f)).to_symbol()
            } else {
                TraceEvent::Call(FnId(f)).to_symbol()
            }
        };
        let stream = vec![
            sym(0, false), // main
            sym(1, false), // a
            sym(2, false), // b
            sym(2, true),
            sym(1, true),
            sym(2, false), // b again, from main
            sym(2, true),
            sym(0, true),
        ];
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(10).build(&stream, &mut table);
        let name = |s: u32| format!("f{}", s >> 1);
        let attrs = mine(
            &stream,
            &nlr,
            AttrConfig {
                kind: AttrKind::CallerCallee,
                freq: FreqMode::Actual,
            },
            &name,
        );
        let get = |k: &str| attrs.iter().find(|(a, _)| a == k).map(|(_, w)| *w);
        assert_eq!(get("⊤⇒f0"), Some(1.0));
        assert_eq!(get("f0⇒f1"), Some(1.0));
        assert_eq!(get("f1⇒f2"), Some(1.0));
        assert_eq!(get("f0⇒f2"), Some(1.0), "second b is called from main");
    }

    #[test]
    fn caller_callee_without_returns_falls_back_to_double() {
        // Calls only: nesting unknown → consecutive-pair semantics.
        use dt_trace::{FnId, TraceEvent};
        let stream: Vec<u32> = [0u32, 1, 2]
            .iter()
            .map(|&f| TraceEvent::Call(FnId(f)).to_symbol())
            .collect();
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(10).build(&stream, &mut table);
        let name = |s: u32| format!("f{}", s >> 1);
        let cc = mine(
            &stream,
            &nlr,
            AttrConfig {
                kind: AttrKind::CallerCallee,
                freq: FreqMode::NoFreq,
            },
            &name,
        );
        let dd = mine(
            &stream,
            &nlr,
            AttrConfig {
                kind: AttrKind::Double,
                freq: FreqMode::NoFreq,
            },
            &name,
        );
        assert_eq!(cc, dd);
    }

    #[test]
    fn attr_codes_parse_round_trip() {
        for cfg in AttrConfig::ALL {
            let parsed: AttrConfig = cfg.to_string().parse().unwrap();
            assert_eq!(parsed, cfg);
        }
        let c: AttrConfig = "ctxt.log10".parse().unwrap();
        assert_eq!(c.kind, AttrKind::CallerCallee);
        assert!("trip.actual".parse::<AttrConfig>().is_err());
        assert!("sing".parse::<AttrConfig>().is_err());
        assert!("sing.huge".parse::<AttrConfig>().is_err());
    }

    #[test]
    fn display_codes_match_paper() {
        assert_eq!(
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq
            }
            .to_string(),
            "sing.noFreq"
        );
        assert_eq!(
            AttrConfig {
                kind: AttrKind::Double,
                freq: FreqMode::Actual
            }
            .to_string(),
            "doub.actual"
        );
        assert_eq!(AttrConfig::ALL.len(), 6);
    }
}
