//! Running NLR summarization over a filtered execution.
//!
//! One [`nlr::LoopTable`] is shared by **all** traces of an analysis —
//! including both the normal and the faulty execution of a diff — so a
//! loop ID (`L0`, `L1`, …) denotes the same loop body everywhere, as in
//! the paper's Tables III/IV and diffNLR figures.

use crate::filter::FilteredSet;
use dt_cache::Cache;
use dt_trace::TraceId;
use nlr::{LoopId, LoopTable, Nlr, NlrBuilder, RecordingInterner, SharedLoopTable};
use std::collections::BTreeMap;
use std::sync::Arc;

/// NLR summaries of one execution's filtered traces.
#[derive(Debug, Clone)]
pub struct NlrSet {
    /// Per-trace summaries.
    pub nlrs: BTreeMap<TraceId, Nlr>,
    /// Truncation flags carried through from filtering.
    pub truncated: BTreeMap<TraceId, bool>,
}

impl NlrSet {
    /// Summarize every trace of `set` with body bound `k`, interning
    /// loops into the shared `table`.
    pub fn build(set: &FilteredSet, k: usize, table: &mut LoopTable) -> NlrSet {
        let builder = NlrBuilder::new(k);
        let mut nlrs = BTreeMap::new();
        let mut truncated = BTreeMap::new();
        for t in &set.traces {
            nlrs.insert(t.id, builder.build(&t.symbols, table));
            truncated.insert(t.id, t.truncated);
        }
        NlrSet { nlrs, truncated }
    }

    /// [`NlrSet::build`] through a [`Cache`]: each trace's fold is
    /// looked up by its content key (`keys`, aligned with `set.traces`)
    /// and replayed into `table` on a hit — skipping the builder — or
    /// built and stored on a miss. Replay re-interns the trace's bodies
    /// in its own first-fold order, which is exactly the intern sequence
    /// a cold build would issue, so loop numbering (and therefore every
    /// downstream label) is byte-identical either way. Returns the set
    /// plus the number of actual builder invocations.
    pub fn build_cached(
        set: &FilteredSet,
        k: usize,
        table: &mut LoopTable,
        cache: &Cache,
        keys: &[u128],
    ) -> (NlrSet, u64) {
        let builder = NlrBuilder::new(k);
        let mut nlrs = BTreeMap::new();
        let mut truncated = BTreeMap::new();
        let mut folds = 0u64;
        for (t, &key) in set.traces.iter().zip(keys) {
            let nlr = match cache.get_nlr(key) {
                Some(fold) => Nlr::from_parts(dt_cache::replay(&fold, table), fold.input_len),
                None => {
                    folds += 1;
                    let mut rec = dt_cache::Recording::new(table);
                    let nlr = builder.build(&t.symbols, &mut rec);
                    let order = rec.into_order();
                    let fold =
                        dt_cache::fold_from_build(&order, nlr.elements(), nlr.input_len(), |id| {
                            table.body(id).to_vec()
                        });
                    cache.put_nlr(key, Arc::new(fold));
                    nlr
                }
            };
            nlrs.insert(t.id, nlr);
            truncated.insert(t.id, t.truncated);
        }
        (NlrSet { nlrs, truncated }, folds)
    }

    /// Summarize every trace of `set` on up to `threads` threads,
    /// interning into the concurrent `shared` table. The resulting
    /// summaries carry **provisional** loop IDs (scheduling-dependent);
    /// also returned are the per-trace fold orders, in `set.traces`
    /// order, which [`SharedLoopTable::canonicalize_into`] replays to
    /// renumber deterministically — after which [`NlrSet::remap`]
    /// rewrites the summaries. NLR folding decisions are independent of
    /// the interner's numbering, so the structures are identical to a
    /// sequential build.
    pub fn build_shared(
        set: &FilteredSet,
        k: usize,
        shared: &SharedLoopTable,
        threads: usize,
    ) -> (NlrSet, Vec<Vec<LoopId>>) {
        let builder = NlrBuilder::new(k);
        let built = crate::sync::par_map(&set.traces, threads, |_, t| {
            let mut rec = RecordingInterner::new(shared);
            let nlr = builder.build(&t.symbols, &mut rec);
            (t.id, nlr, t.truncated, rec.into_order())
        });
        let mut nlrs = BTreeMap::new();
        let mut truncated = BTreeMap::new();
        let mut orders = Vec::with_capacity(built.len());
        for (id, nlr, trunc, order) in built {
            nlrs.insert(id, nlr);
            truncated.insert(id, trunc);
            orders.push(order);
        }
        (NlrSet { nlrs, truncated }, orders)
    }

    /// [`NlrSet::build_shared`] through a [`Cache`]: per-trace lookups
    /// as in [`NlrSet::build_cached`], but hits replay into the
    /// concurrent `shared` table through a [`RecordingInterner`], so the
    /// replayed interns appear in the trace's fold order exactly like a
    /// cold parallel build's — the subsequent canonical renumbering is
    /// oblivious to which traces hit. Returns the provisional set, the
    /// per-trace fold orders, and the number of builder invocations.
    pub fn build_shared_cached(
        set: &FilteredSet,
        k: usize,
        shared: &SharedLoopTable,
        threads: usize,
        cache: &Cache,
        keys: &[u128],
    ) -> (NlrSet, Vec<Vec<LoopId>>, u64) {
        let builder = NlrBuilder::new(k);
        let built = crate::sync::par_map(&set.traces, threads, |i, t| {
            let mut rec = RecordingInterner::new(shared);
            match cache.get_nlr(keys[i]) {
                Some(fold) => {
                    let nlr = Nlr::from_parts(dt_cache::replay(&fold, &mut rec), fold.input_len);
                    (t.id, nlr, t.truncated, rec.into_order(), 0u64)
                }
                None => {
                    let nlr = builder.build(&t.symbols, &mut rec);
                    let order = rec.into_order();
                    let fold =
                        dt_cache::fold_from_build(&order, nlr.elements(), nlr.input_len(), |id| {
                            shared.body(id).to_vec()
                        });
                    cache.put_nlr(keys[i], Arc::new(fold));
                    (t.id, nlr, t.truncated, order, 1)
                }
            }
        });
        let mut nlrs = BTreeMap::new();
        let mut truncated = BTreeMap::new();
        let mut orders = Vec::with_capacity(built.len());
        let mut folds = 0u64;
        for (id, nlr, trunc, order, fresh) in built {
            nlrs.insert(id, nlr);
            truncated.insert(id, trunc);
            orders.push(order);
            folds += fresh;
        }
        (NlrSet { nlrs, truncated }, orders, folds)
    }

    /// Rewrite every summary's loop references through `map`
    /// (provisional ID → canonical ID, indexed by provisional ID).
    pub fn remap(&self, map: &[LoopId]) -> NlrSet {
        NlrSet {
            nlrs: self
                .nlrs
                .iter()
                .map(|(&id, n)| (id, n.remap_loops(&|l: LoopId| map[l.0 as usize])))
                .collect(),
            truncated: self.truncated.clone(),
        }
    }

    /// Look up one summary.
    pub fn get(&self, id: TraceId) -> Option<&Nlr> {
        self.nlrs.get(&id)
    }

    /// Trace IDs in order.
    pub fn ids(&self) -> Vec<TraceId> {
        self.nlrs.keys().copied().collect()
    }

    /// Mean reduction factor across traces (the paper's §V metric).
    pub fn mean_reduction_factor(&self) -> f64 {
        if self.nlrs.is_empty() {
            return 1.0;
        }
        self.nlrs
            .values()
            .map(|n| n.reduction_factor())
            .sum::<f64>()
            / self.nlrs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FilteredSet, FilteredTrace};

    fn filtered(id: TraceId, symbols: Vec<u32>) -> FilteredTrace {
        FilteredTrace {
            id,
            symbols,
            truncated: false,
        }
    }

    #[test]
    fn shared_loop_table_across_traces() {
        let set = FilteredSet {
            traces: vec![
                filtered(TraceId::new(0, 0), vec![1, 2, 1, 2, 1, 2]),
                filtered(TraceId::new(1, 0), vec![1, 2, 1, 2]),
            ],
        };
        let mut table = LoopTable::new();
        let ns = NlrSet::build(&set, 10, &mut table);
        assert_eq!(table.len(), 1, "one shared loop body");
        let a = ns.get(TraceId::new(0, 0)).unwrap().elements()[0];
        let b = ns.get(TraceId::new(1, 0)).unwrap().elements()[0];
        assert_eq!(a.loop_id(), b.loop_id());
        assert!(ns.mean_reduction_factor() > 1.0);
    }

    #[test]
    fn empty_set() {
        let mut table = LoopTable::new();
        let ns = NlrSet::build(&FilteredSet::default(), 10, &mut table);
        assert!(ns.ids().is_empty());
        assert_eq!(ns.mean_reduction_factor(), 1.0);
    }
}
