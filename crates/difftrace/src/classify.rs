//! Bug classification from DiffTrace features.
//!
//! The paper's future work (§VII-3) proposes "systematic bug-injection
//! to see whether concept lattices and loop structures can be used as
//! elevated features for precise bug classifications via machine
//! learning". This module implements that pipeline:
//!
//! * [`extract_features`] turns one [`DiffRun`] into a fixed-length
//!   [`FeatureVector`] of exactly the "elevated features" the paper
//!   names — clustering distortion (B-score), JSM_D statistics,
//!   truncation evidence, loop-structure drift, and attribute novelty
//!   from the concept lattices.
//! * [`NearestCentroid`] is a deliberately simple, deterministic
//!   classifier (z-normalized nearest class centroid): the point is to
//!   show the features separate bug classes, not to ship a deep model.
//!
//! The bench crate's systematic injection campaign (experiment `e10`)
//! trains on labelled fault injections across all three workloads and
//! evaluates with leave-one-out cross-validation.

use crate::pipeline::DiffRun;
use std::collections::BTreeMap;
use std::fmt;

/// Number of features in a [`FeatureVector`].
pub const NUM_FEATURES: usize = 8;

/// Human-readable names of the features, index-aligned.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "bscore",
    "frac_truncated",
    "jsm_d_mean",
    "jsm_d_max",
    "suspect_concentration",
    "loop_drift",
    "attr_missing_frac",
    "attr_novel_frac",
];

/// The elevated features of one normal/faulty diff.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector(pub [f64; NUM_FEATURES]);

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in FEATURE_NAMES.iter().zip(&self.0) {
            writeln!(f, "  {name:<22} {v:.4}")?;
        }
        Ok(())
    }
}

/// Total loop iterations summed over a trace's NLR elements.
fn total_loop_iterations(nlr: &nlr::Nlr) -> f64 {
    nlr.elements()
        .iter()
        .filter_map(|e| match e {
            nlr::Element::Loop { count, .. } => Some(*count as f64),
            nlr::Element::Sym(_) => None,
        })
        .sum()
}

/// Extract the feature vector of a completed diff.
pub fn extract_features(d: &DiffRun) -> FeatureVector {
    let n = d.jsm_d.len().max(1);

    // JSM_D statistics (off-diagonal).
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut count = 0usize;
    for i in 0..d.jsm_d.len() {
        for j in 0..d.jsm_d.len() {
            if i != j {
                sum += d.jsm_d.m[i][j];
                max = max.max(d.jsm_d.m[i][j]);
                count += 1;
            }
        }
    }
    let jsm_d_mean = if count == 0 { 0.0 } else { sum / count as f64 };

    // Truncation evidence from the faulty run.
    let truncated = d.faulty.nlrs.truncated.values().filter(|&&t| t).count() as f64;
    let frac_truncated = truncated / n as f64;

    // How concentrated is the suspicion? 1 → a single culprit,
    // → 0 as everything is equally implicated.
    let scores = d.jsm_d.row_scores();
    let total: f64 = scores.iter().map(|(_, s)| s).sum();
    let top = scores.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
    let suspect_concentration = if total > 0.0 { top / total } else { 0.0 };

    // Loop-structure drift: mean |Δ total loop iterations| relative.
    let mut drift = 0.0;
    let mut drift_n = 0usize;
    for (id, nn) in &d.normal.nlrs.nlrs {
        if let Some(fn_) = d.faulty.nlrs.get(*id) {
            let a = total_loop_iterations(nn);
            let b = total_loop_iterations(fn_);
            if a.max(b) > 0.0 {
                drift += (a - b).abs() / a.max(b);
                drift_n += 1;
            }
        }
    }
    let loop_drift = if drift_n == 0 {
        0.0
    } else {
        drift / drift_n as f64
    };

    // Attribute-set movement between the two concept lattices: which
    // attributes vanished / appeared (union over objects).
    let attr_set = |run: &crate::pipeline::AnalysisRun| -> std::collections::BTreeSet<String> {
        (0..run.context.num_attrs())
            .map(|m| run.context.attr_name(fca::AttrId(m as u32)).to_string())
            .collect()
    };
    let na = attr_set(&d.normal);
    let fa = attr_set(&d.faulty);
    let union = na.union(&fa).count().max(1) as f64;
    let attr_missing_frac = na.difference(&fa).count() as f64 / union;
    let attr_novel_frac = fa.difference(&na).count() as f64 / union;

    FeatureVector([
        d.bscore,
        frac_truncated,
        jsm_d_mean,
        max,
        suspect_concentration,
        loop_drift,
        attr_missing_frac,
        attr_novel_frac,
    ])
}

/// A labelled training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Bug-class label (e.g. `"hang"`, `"missing-sync"`).
    pub label: String,
    /// Its features.
    pub features: FeatureVector,
}

/// Z-normalized nearest-centroid classifier.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    centroids: BTreeMap<String, [f64; NUM_FEATURES]>,
    mean: [f64; NUM_FEATURES],
    std: [f64; NUM_FEATURES],
}

impl NearestCentroid {
    /// Train on labelled samples. Panics on an empty training set.
    pub fn train(samples: &[Sample]) -> NearestCentroid {
        assert!(!samples.is_empty(), "cannot train on zero samples");
        // Global normalization statistics.
        let mut mean = [0.0; NUM_FEATURES];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(&s.features.0) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= samples.len() as f64;
        }
        let mut std = [0.0; NUM_FEATURES];
        for s in samples {
            for ((sd, v), m) in std.iter_mut().zip(&s.features.0).zip(&mean) {
                *sd += (v - m).powi(2);
            }
        }
        for sd in &mut std {
            *sd = (*sd / samples.len() as f64).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0; // constant feature: don't divide by ~0
            }
        }
        // Per-class centroids in normalized space.
        let mut sums: BTreeMap<String, ([f64; NUM_FEATURES], usize)> = BTreeMap::new();
        for s in samples {
            let entry = sums
                .entry(s.label.clone())
                .or_insert(([0.0; NUM_FEATURES], 0));
            for (i, v) in s.features.0.iter().enumerate() {
                entry.0[i] += (v - mean[i]) / std[i];
            }
            entry.1 += 1;
        }
        let centroids = sums
            .into_iter()
            .map(|(label, (mut acc, n))| {
                for a in &mut acc {
                    *a /= n as f64;
                }
                (label, acc)
            })
            .collect();
        NearestCentroid {
            centroids,
            mean,
            std,
        }
    }

    /// The trained class labels.
    pub fn labels(&self) -> Vec<&str> {
        self.centroids.keys().map(|s| s.as_str()).collect()
    }

    /// Classify a feature vector: `(label, distance)` of the nearest
    /// centroid (ties break toward the lexicographically first label).
    pub fn classify(&self, features: &FeatureVector) -> (String, f64) {
        let mut best: Option<(&str, f64)> = None;
        for (label, c) in &self.centroids {
            let mut dist = 0.0;
            for (i, ci) in c.iter().enumerate() {
                let z = (features.0[i] - self.mean[i]) / self.std[i];
                dist += (z - ci).powi(2);
            }
            let dist = dist.sqrt();
            if best.is_none() || dist < best.unwrap().1 {
                best = Some((label, dist));
            }
        }
        let (l, d) = best.expect("trained classifier has centroids");
        (l.to_string(), d)
    }
}

/// Leave-one-out accuracy of nearest-centroid on `samples`; returns
/// `(correct, total, per-sample predictions)`.
pub fn leave_one_out(samples: &[Sample]) -> (usize, usize, Vec<(String, String)>) {
    let mut correct = 0;
    let mut predictions = Vec::new();
    for i in 0..samples.len() {
        let train: Vec<Sample> = samples
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, s)| s.clone())
            .collect();
        let model = NearestCentroid::train(&train);
        let (pred, _) = model.classify(&samples[i].features);
        if pred == samples[i].label {
            correct += 1;
        }
        predictions.push((samples[i].label.clone(), pred));
    }
    (correct, samples.len(), predictions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(seed: f64) -> FeatureVector {
        FeatureVector([seed, seed * 0.5, 0.1, 0.2, 1.0 - seed, 0.0, 0.0, 0.0])
    }

    fn sample(label: &str, seed: f64) -> Sample {
        Sample {
            label: label.to_string(),
            features: fv(seed),
        }
    }

    #[test]
    fn centroid_classifier_separates_classes() {
        let samples = vec![
            sample("hang", 0.9),
            sample("hang", 0.85),
            sample("hang", 0.95),
            sample("silent", 0.1),
            sample("silent", 0.15),
            sample("silent", 0.05),
        ];
        let model = NearestCentroid::train(&samples);
        assert_eq!(model.labels(), vec!["hang", "silent"]);
        assert_eq!(model.classify(&fv(0.88)).0, "hang");
        assert_eq!(model.classify(&fv(0.12)).0, "silent");
    }

    #[test]
    fn loo_perfect_on_separable_data() {
        let samples = vec![
            sample("a", 0.9),
            sample("a", 0.8),
            sample("a", 0.95),
            sample("b", 0.1),
            sample("b", 0.2),
            sample("b", 0.05),
        ];
        let (correct, total, _) = leave_one_out(&samples);
        assert_eq!((correct, total), (6, 6));
    }

    #[test]
    fn constant_features_do_not_poison_normalization() {
        let samples = vec![sample("a", 0.5), sample("b", 0.5)];
        let model = NearestCentroid::train(&samples);
        let (_, d) = model.classify(&fv(0.5));
        assert!(d.is_finite());
    }

    #[test]
    fn feature_vector_display_names_everything() {
        let s = fv(0.3).to_string();
        for n in FEATURE_NAMES {
            assert!(s.contains(n), "{n} missing from {s}");
        }
    }

    #[test]
    #[should_panic]
    fn training_on_empty_set_panics() {
        let _ = NearestCentroid::train(&[]);
    }
}
