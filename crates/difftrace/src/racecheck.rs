//! The racecheck pre-pass: shared-memory data-race detection before
//! any diffing.
//!
//! [`racecheck_set`] runs the RC001–RC004 rule families (see the
//! `dt-racecheck` crate) over one execution's recorded traces, with
//! **byte-identical diagnostics for every thread count**: per-trace
//! access-group summaries fan out through [`crate::sync::par_map`]
//! (whose output is input-ordered), the rule evaluation itself is a
//! pure function of those summaries, and the report sorts canonically.
//!
//! [`crate::PipelineOptions::race`] threads the pass through the diff
//! pipeline: `Warn` attaches the reports to the [`crate::DiffRun`],
//! `Deny` makes [`crate::pipeline::try_diff_runs_hb_opts`] refuse to
//! diff when any error-severity diagnostic fires.

use crate::lint::{build_raw_nlrs, LintDomain, RawTrace};
use crate::sync::{effective_threads, par_map};
use dt_racecheck::compressed::Summarizer;
use dt_racecheck::{analyze, expanded, RaceReport, RaceVocab, TraceRaceFacts};
use dt_trace::{Trace, TraceSet};
use std::fmt;

/// Configuration for one racecheck pass.
#[derive(Debug, Clone)]
pub struct RaceOptions {
    /// Worker threads (same convention as
    /// [`crate::PipelineOptions::threads`]: `1` sequential, `0` all
    /// cores).
    pub threads: usize,
    /// Implementation family for the per-trace access-group facts.
    /// Both produce the same facts (property-tested in `dt-racecheck`);
    /// the compressed domain folds NLR terms without expansion, flat in
    /// loop repetition count.
    pub domain: LintDomain,
    /// NLR window size used by the compressed domain.
    pub nlr_k: usize,
}

impl Default for RaceOptions {
    fn default() -> RaceOptions {
        RaceOptions {
            threads: 1,
            domain: LintDomain::Expanded,
            nlr_k: 10,
        }
    }
}

/// Analyze one execution's traces for shared-memory races. See the
/// module docs for the determinism guarantees.
pub fn racecheck_set(set: &TraceSet, opts: &RaceOptions) -> RaceReport {
    let vocab = RaceVocab::build(&set.registry);
    let traces: Vec<&Trace> = set.iter().collect();
    let threads = effective_threads(opts.threads, traces.len().max(1));
    let facts: Vec<TraceRaceFacts> = match opts.domain {
        LintDomain::Expanded => par_map(&traces, threads, |_, t| {
            expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab)
        }),
        LintDomain::Compressed => {
            let raw: Vec<RawTrace> = traces
                .iter()
                .map(|t| RawTrace {
                    id: t.id,
                    symbols: t.to_symbols(),
                    truncated: t.truncated,
                })
                .collect();
            let (nlrs, table) = build_raw_nlrs(&raw, opts.nlr_k, threads);
            par_map(&traces, threads, |_, t| {
                let term = nlrs.get(t.id).expect("term built for every trace");
                let mut s = Summarizer::new(&table, &vocab);
                s.summarize(t.id, term, t.truncated)
            })
        }
    };
    analyze(&facts)
}

/// The attached results of the racecheck pre-pass, kept on the
/// [`crate::DiffRun`] when [`crate::PipelineOptions::race`] is `Warn`
/// (or a passing `Deny`).
#[derive(Debug, Clone)]
pub struct RacePrePass {
    /// Report for the normal execution.
    pub normal: RaceReport,
    /// Report for the faulty execution.
    pub faulty: RaceReport,
}

impl RacePrePass {
    /// Run the pass over both executions of a diff.
    pub fn run(normal: &TraceSet, faulty: &TraceSet, opts: &RaceOptions) -> RacePrePass {
        RacePrePass {
            normal: racecheck_set(normal, opts),
            faulty: racecheck_set(faulty, opts),
        }
    }
}

/// Race reports for both executions of a diff, returned when
/// [`crate::PipelineOptions::race`] is `Deny` and an error fired.
#[derive(Debug, Clone)]
pub struct RaceFailure {
    /// Report for the normal execution.
    pub normal: RaceReport,
    /// Report for the faulty execution.
    pub faulty: RaceReport,
}

impl fmt::Display for RaceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "racecheck gate denied: {} error(s) in the normal run, {} in the faulty run",
            self.normal.error_count(),
            self.faulty.error_count()
        )
    }
}

impl std::error::Error for RaceFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::{FunctionRegistry, TraceCollector, TraceId};
    use std::sync::Arc;

    /// A corpus with two worker threads of process 0 running `body`.
    fn team(body: impl Fn(&dt_trace::Tracer)) -> TraceSet {
        let registry = Arc::new(FunctionRegistry::new());
        let collector = TraceCollector::shared(registry);
        for thread in 1..=2 {
            let tr = collector.tracer(TraceId::new(0, thread));
            body(&tr);
            tr.finish();
        }
        collector.into_trace_set()
    }

    /// Two threads doing an unprotected read-modify-write on `counter`.
    fn racy() -> TraceSet {
        team(|tr| {
            for _ in 0..50 {
                tr.leaf("compute");
                tr.leaf("omp_read@counter");
                tr.leaf("omp_write@counter");
            }
        })
    }

    /// The same corpus with the accesses consistently locked.
    fn locked() -> TraceSet {
        team(|tr| {
            for _ in 0..50 {
                tr.leaf("compute");
                tr.leaf("omp_acquire@l");
                tr.leaf("omp_read@counter");
                tr.leaf("omp_write@counter");
                tr.leaf("omp_release@l");
            }
        })
    }

    #[test]
    fn both_domains_agree_byte_for_byte() {
        let set = racy();
        let e = racecheck_set(&set, &RaceOptions::default());
        let c = racecheck_set(
            &set,
            &RaceOptions {
                domain: LintDomain::Compressed,
                ..RaceOptions::default()
            },
        );
        assert!(!e.is_clean());
        assert_eq!(e.render_text(), c.render_text());
        assert_eq!(e.render_json(), c.render_json());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let set = racy();
        for domain in [LintDomain::Expanded, LintDomain::Compressed] {
            let base = racecheck_set(
                &set,
                &RaceOptions {
                    threads: 1,
                    domain,
                    ..RaceOptions::default()
                },
            );
            for threads in [2usize, 0] {
                let got = racecheck_set(
                    &set,
                    &RaceOptions {
                        threads,
                        domain,
                        ..RaceOptions::default()
                    },
                );
                assert_eq!(
                    base.render_text(),
                    got.render_text(),
                    "{domain:?}/{threads}"
                );
                assert_eq!(
                    base.render_json(),
                    got.render_json(),
                    "{domain:?}/{threads}"
                );
            }
        }
    }

    #[test]
    fn prepass_pairs_both_executions() {
        let pre = RacePrePass::run(&locked(), &racy(), &RaceOptions::default());
        assert!(pre.normal.is_clean(), "{}", pre.normal.render_text());
        assert!(!pre.faulty.is_clean());
        let failure = RaceFailure {
            normal: pre.normal,
            faulty: pre.faulty,
        };
        let msg = failure.to_string();
        assert!(
            msg.starts_with("racecheck gate denied: 0 error(s) in the normal run,"),
            "{msg}"
        );
    }
}
