//! The Table I front-end filters.
//!
//! Pre-processing extracts "the desired functions … based on predefined
//! or custom regular expressions" from decompressed ParLOT traces. A
//! [`FilterConfig`] combines the primary filters (drop returns, drop
//! `.plt` stubs) with a union of *keep classes*; an empty keep set
//! means "Everything".
//!
//! Filter codes render in the paper's style, e.g.
//! `11.mem.ompcrit.cust.K10` — first digit: returns dropped, second:
//! PLT dropped, then the keep classes, then the NLR constant.

use dt_trace::{Trace, TraceEvent, TraceId, TraceSet};
use rex::Regex;
use std::fmt;

/// One keep class of Table I.
#[derive(Debug, Clone)]
pub enum KeepClass {
    /// Functions starting with `MPI_`.
    MpiAll,
    /// MPI collective calls only.
    MpiCollectives,
    /// `MPI_Send`, `MPI_Isend`, `MPI_Recv`, `MPI_Irecv`, `MPI_Wait`.
    MpiSendRecv,
    /// Inner MPI library calls (`MPIDI_*`, `MPIR_*`, `MPID_*`) — only
    /// present when traces were captured in "all images" mode.
    MpiInternal,
    /// Functions starting with `GOMP_` (OpenMP runtime).
    OmpAll,
    /// `GOMP_critical_start` / `GOMP_critical_end` only.
    OmpCritical,
    /// Memory-related functions (memcpy, malloc, …).
    Memory,
    /// Network-related functions (tcp, socket, …).
    Network,
    /// Poll/yield/sched functions.
    Poll,
    /// String functions (strlen, strcpy, …).
    Strings,
    /// A custom regular expression (the "Advanced" row of Table I).
    Custom(String),
}

impl KeepClass {
    fn code(&self) -> &str {
        match self {
            KeepClass::MpiAll => "mpiall",
            KeepClass::MpiCollectives => "mpicol",
            KeepClass::MpiSendRecv => "mpisr",
            KeepClass::MpiInternal => "mpiint",
            KeepClass::OmpAll => "omp",
            KeepClass::OmpCritical => "ompcrit",
            KeepClass::Memory => "mem",
            KeepClass::Network => "net",
            KeepClass::Poll => "poll",
            KeepClass::Strings => "str",
            KeepClass::Custom(_) => "cust",
        }
    }
}

const MPI_COLLECTIVES: &[&str] = &[
    "MPI_Barrier",
    "MPI_Allreduce",
    "MPI_Reduce",
    "MPI_Bcast",
    "MPI_Allgather",
    "MPI_Gather",
    "MPI_Scatter",
    "MPI_Alltoall",
];

const MPI_SENDRECV: &[&str] = &["MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Wait"];

/// Compiled keep predicate for one class.
enum CompiledClass {
    Prefix(&'static str),
    OneOf(&'static [&'static str]),
    Re(Regex),
}

impl CompiledClass {
    fn matches(&self, name: &str) -> bool {
        match self {
            CompiledClass::Prefix(p) => name.starts_with(p),
            CompiledClass::OneOf(set) => set.contains(&name),
            CompiledClass::Re(re) => re.is_match(name),
        }
    }
}

fn compile_class(c: &KeepClass) -> CompiledClass {
    match c {
        KeepClass::MpiAll => CompiledClass::Prefix("MPI_"),
        KeepClass::MpiCollectives => CompiledClass::OneOf(MPI_COLLECTIVES),
        KeepClass::MpiSendRecv => CompiledClass::OneOf(MPI_SENDRECV),
        KeepClass::MpiInternal => {
            CompiledClass::Re(Regex::new("^(MPIDI_|MPIR_|MPID_)").expect("static pattern"))
        }
        KeepClass::OmpAll => CompiledClass::Prefix("GOMP_"),
        KeepClass::OmpCritical => {
            CompiledClass::Re(Regex::new("^GOMP_critical_(start|end)$").expect("static pattern"))
        }
        KeepClass::Memory => CompiledClass::Re(
            Regex::new_case_insensitive("memcpy|memchk|memset|memmove|alloc|free")
                .expect("static pattern"),
        ),
        KeepClass::Network => CompiledClass::Re(
            Regex::new_case_insensitive("network|tcp|socket|ib_|verbs").expect("static pattern"),
        ),
        KeepClass::Poll => CompiledClass::Re(
            Regex::new_case_insensitive("poll|yield|sched").expect("static pattern"),
        ),
        KeepClass::Strings => CompiledClass::Re(
            Regex::new_case_insensitive("^str(len|cpy|cmp|ncpy|ncmp|cat|chr)")
                .expect("static pattern"),
        ),
        // An invalid custom pattern matches nothing; callers surface
        // the error via `FilterConfig::validate` before running.
        KeepClass::Custom(pat) => match Regex::new(pat) {
            Ok(re) => CompiledClass::Re(re),
            Err(_) => CompiledClass::OneOf(&[]),
        },
    }
}

/// A full filter configuration.
#[derive(Debug, Clone)]
pub struct FilterConfig {
    /// Drop all return events (Table I "Returns").
    pub drop_returns: bool,
    /// Drop `.plt` lazy-binding stubs (Table I "PLT").
    pub drop_plt: bool,
    /// Keep classes (union). Empty = keep everything ("Everything").
    pub keep: Vec<KeepClass>,
    /// The NLR constant `K` used downstream (carried here because the
    /// paper's filter codes end in `K10`/`K50`).
    pub nlr_k: usize,
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            drop_returns: true,
            drop_plt: true,
            keep: Vec::new(),
            nlr_k: 10,
        }
    }
}

impl FilterConfig {
    /// "Everything" filter (drop returns + PLT only) with NLR `K`.
    pub fn everything(k: usize) -> FilterConfig {
        FilterConfig {
            nlr_k: k,
            ..FilterConfig::default()
        }
    }

    /// Keep only MPI functions (the odd/even walk-through's filter).
    pub fn mpi_all(k: usize) -> FilterConfig {
        FilterConfig {
            keep: vec![KeepClass::MpiAll],
            nlr_k: k,
            ..FilterConfig::default()
        }
    }

    /// A fully discriminating stable code for this configuration: like
    /// `Display`, but custom classes carry their pattern
    /// (`cust:<pattern>`), so two configs with equal codes filter every
    /// corpus identically. Used to deduplicate sweep grids — the
    /// rendered `Display` code elides custom patterns, which would
    /// conflate genuinely different filters.
    pub fn stable_code(&self) -> String {
        use std::fmt::Write;
        let mut out = format!("{}{}", u8::from(self.drop_returns), u8::from(self.drop_plt));
        if self.keep.is_empty() {
            out.push_str(".all");
        } else {
            for k in &self.keep {
                match k {
                    KeepClass::Custom(p) => {
                        let _ = write!(out, ".cust:{p}");
                    }
                    other => {
                        let _ = write!(out, ".{}", other.code());
                    }
                }
            }
        }
        let _ = write!(out, ".K{}", self.nlr_k);
        out
    }

    /// Validate custom patterns; returns an error message on a bad one.
    pub fn validate(&self) -> Result<(), String> {
        for k in &self.keep {
            if let KeepClass::Custom(p) = k {
                Regex::new(p).map_err(|e| format!("bad custom filter `{p}`: {e}"))?;
            }
        }
        Ok(())
    }

    /// Probe every keep class against a corpus of *distinct* function
    /// names, without re-scanning any trace. Regex-backed classes are
    /// counted through the rex match counter; prefix/set classes are
    /// counted directly. This powers tracelint's dead-filter rule
    /// (TL004).
    pub fn probe_classes(&self, names: &[String]) -> Vec<ClassProbe> {
        self.keep
            .iter()
            .map(|class| {
                let (pattern, parse_error) = match class {
                    KeepClass::Custom(p) => (
                        Some(p.clone()),
                        Regex::new(p).err().map(|e| (e.position, e.message)),
                    ),
                    _ => (None, None),
                };
                if let Some(err) = parse_error {
                    return ClassProbe {
                        code: class.code().to_string(),
                        pattern,
                        matched: 0,
                        parse_error: Some(err),
                        satisfiable: false,
                    };
                }
                let compiled = compile_class(class);
                let (matched, satisfiable) = match &compiled {
                    CompiledClass::Re(re) => {
                        re.reset_match_count();
                        for n in names {
                            re.is_match(n);
                        }
                        (re.match_count(), re.is_satisfiable())
                    }
                    _ => {
                        let hits = names.iter().filter(|n| compiled.matches(n)).count();
                        (hits as u64, true)
                    }
                };
                ClassProbe {
                    code: class.code().to_string(),
                    pattern,
                    matched,
                    parse_error: None,
                    satisfiable,
                }
            })
            .collect()
    }

    fn keeps(&self, name: &str, compiled: &[CompiledClass]) -> bool {
        if self.drop_plt && (name.ends_with("@plt") || name.contains(".plt")) {
            return false;
        }
        if compiled.is_empty() {
            return true;
        }
        compiled.iter().any(|c| c.matches(name))
    }

    /// Apply to one trace: resolve names through `set`'s registry, keep
    /// matching events, encode as NLR-ready symbols
    /// ([`dt_trace::TraceEvent::to_symbol`]).
    pub fn apply_trace(&self, set: &TraceSet, trace: &Trace) -> FilteredTrace {
        let compiled: Vec<CompiledClass> = self.keep.iter().map(compile_class).collect();
        self.apply_trace_compiled(set, trace, &compiled)
    }

    fn apply_trace_compiled(
        &self,
        set: &TraceSet,
        trace: &Trace,
        compiled: &[CompiledClass],
    ) -> FilteredTrace {
        let mut symbols = Vec::new();
        for &e in &trace.events {
            if self.drop_returns && e.is_return() {
                continue;
            }
            let name = set.registry.name(e.fn_id());
            if self.keeps(&name, compiled) {
                symbols.push(e.to_symbol());
            }
        }
        FilteredTrace {
            id: trace.id,
            symbols,
            truncated: trace.truncated,
        }
    }

    /// Apply to every trace of a set.
    pub fn apply(&self, set: &TraceSet) -> FilteredSet {
        let compiled: Vec<CompiledClass> = self.keep.iter().map(compile_class).collect();
        FilteredSet {
            traces: set
                .iter()
                .map(|t| self.apply_trace_compiled(set, t, &compiled))
                .collect(),
        }
    }
}

impl fmt::Display for FilterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            u8::from(self.drop_returns),
            u8::from(self.drop_plt)
        )?;
        if self.keep.is_empty() {
            write!(f, ".all")?;
        } else {
            for k in &self.keep {
                write!(f, ".{}", k.code())?;
            }
        }
        write!(f, ".K{}", self.nlr_k)
    }
}

/// Result of probing one keep class against a name corpus
/// ([`FilterConfig::probe_classes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassProbe {
    /// The class's filter code (`mpiall`, `cust`, …).
    pub code: String,
    /// For custom classes, the pattern text.
    pub pattern: Option<String>,
    /// Distinct corpus names the class matched.
    pub matched: u64,
    /// Parse failure for a custom pattern: byte offset into the
    /// pattern, plus the parser's message.
    pub parse_error: Option<(usize, String)>,
    /// Whether the pattern can match *any* string (always true for
    /// built-in classes; `rex`'s satisfiability analysis for custom
    /// ones). `false` with no parse error means the pattern is
    /// structurally dead, e.g. `a^b`.
    pub satisfiable: bool,
}

/// How much of a trace set a filter keeps — the feedback a user needs
/// when turning the front-end-filter knob of the iterative loop
/// (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Events in the raw traces.
    pub total_events: usize,
    /// Events the filter keeps.
    pub kept_events: usize,
    /// Distinct function names among the kept events.
    pub distinct_kept: usize,
}

impl CoverageStats {
    /// Kept fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.kept_events as f64 / self.total_events as f64
        }
    }
}

impl FilterConfig {
    /// Measure what this filter keeps of `set`.
    pub fn coverage(&self, set: &TraceSet) -> CoverageStats {
        let filtered = self.apply(set);
        let total_events = set.iter().map(|t| t.events.len()).sum();
        let kept_events = filtered.traces.iter().map(|t| t.symbols.len()).sum();
        let distinct: std::collections::HashSet<u32> = filtered
            .traces
            .iter()
            .flat_map(|t| t.symbols.iter().map(|&s| s >> 1))
            .collect();
        CoverageStats {
            total_events,
            kept_events,
            distinct_kept: distinct.len(),
        }
    }
}

/// The predefined filters of Table I, named as the paper names them.
pub fn table_i_catalog(k: usize) -> Vec<(&'static str, FilterConfig)> {
    let with = |keep: Vec<KeepClass>| FilterConfig {
        keep,
        nlr_k: k,
        ..FilterConfig::default()
    };
    vec![
        ("Everything", FilterConfig::everything(k)),
        ("MPI All", with(vec![KeepClass::MpiAll])),
        ("MPI Collectives", with(vec![KeepClass::MpiCollectives])),
        ("MPI Send/Recv", with(vec![KeepClass::MpiSendRecv])),
        ("MPI Internal Library", with(vec![KeepClass::MpiInternal])),
        ("OMP All", with(vec![KeepClass::OmpAll])),
        ("OMP Critical", with(vec![KeepClass::OmpCritical])),
        ("Memory", with(vec![KeepClass::Memory])),
        ("Network", with(vec![KeepClass::Network])),
        ("Poll", with(vec![KeepClass::Poll])),
        ("String", with(vec![KeepClass::Strings])),
    ]
}

impl FilterConfig {
    /// Parse a filter code *without* validating custom patterns.
    ///
    /// `difftrace lint` uses this so that a bad custom regex becomes a
    /// TL004 diagnostic with a byte-offset span rather than an
    /// argument-parsing error.
    pub fn parse_lenient(code: &str) -> Result<FilterConfig, String> {
        FilterConfig::parse_code(code, false)
    }

    fn parse_code(code: &str, validate: bool) -> Result<FilterConfig, String> {
        let mut parts = code.split('.');
        let flags = parts.next().ok_or("empty filter code")?;
        if flags.len() != 2 || !flags.chars().all(|c| c == '0' || c == '1') {
            return Err(format!(
                "filter code must start with two 0/1 flags (returns, plt), got `{flags}`"
            ));
        }
        let mut cfg = FilterConfig {
            drop_returns: flags.as_bytes()[0] == b'1',
            drop_plt: flags.as_bytes()[1] == b'1',
            keep: Vec::new(),
            nlr_k: 10,
        };
        for part in parts {
            if let Some(k) = part.strip_prefix('K') {
                cfg.nlr_k = k
                    .parse::<usize>()
                    .map_err(|_| format!("bad NLR constant `{part}`"))?;
                if cfg.nlr_k == 0 {
                    return Err("NLR constant K must be ≥ 1".to_string());
                }
                continue;
            }
            let class = match part {
                "all" => continue, // "everything": empty keep set
                "mpiall" => KeepClass::MpiAll,
                "mpicol" => KeepClass::MpiCollectives,
                "mpisr" => KeepClass::MpiSendRecv,
                "mpiint" => KeepClass::MpiInternal,
                "omp" => KeepClass::OmpAll,
                "ompcrit" => KeepClass::OmpCritical,
                "mem" => KeepClass::Memory,
                "net" => KeepClass::Network,
                "poll" => KeepClass::Poll,
                "str" => KeepClass::Strings,
                other => match other.strip_prefix("cust:") {
                    Some(pat) => KeepClass::Custom(pat.to_string()),
                    None => return Err(format!("unknown filter class `{other}`")),
                },
            };
            cfg.keep.push(class);
        }
        if validate {
            cfg.validate()?;
        }
        Ok(cfg)
    }
}

impl std::str::FromStr for FilterConfig {
    type Err = String;

    /// Parse a filter code like `11.mem.ompcrit.K10` or
    /// `01.mpiall.cust:^CPU_.K50` (custom patterns follow `cust:`).
    fn from_str(code: &str) -> Result<FilterConfig, String> {
        FilterConfig::parse_code(code, true)
    }
}

/// One filtered trace: the kept events as NLR symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredTrace {
    /// Which thread.
    pub id: TraceId,
    /// Kept events, encoded via [`TraceEvent::to_symbol`].
    pub symbols: Vec<u32>,
    /// Carried over from the raw trace (deadlock-killed thread).
    pub truncated: bool,
}

/// All filtered traces of one execution.
#[derive(Debug, Clone, Default)]
pub struct FilteredSet {
    /// Per-thread filtered traces in `TraceId` order.
    pub traces: Vec<FilteredTrace>,
}

impl FilteredSet {
    /// Look up by ID.
    pub fn get(&self, id: TraceId) -> Option<&FilteredTrace> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// The trace IDs, in order.
    pub fn ids(&self) -> Vec<TraceId> {
        self.traces.iter().map(|t| t.id).collect()
    }
}

/// Resolve an NLR symbol back to a display name: call events map to the
/// function name, return events to `ret <name>`.
pub fn symbol_name(registry: &dt_trace::FunctionRegistry, sym: u32) -> String {
    let e = TraceEvent::from_symbol(sym);
    let n = registry.name(e.fn_id());
    if e.is_return() {
        format!("ret {n}")
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::{FunctionRegistry, TraceCollector};
    use std::sync::Arc;

    fn sample_set() -> TraceSet {
        let collector = TraceCollector::shared(Arc::new(FunctionRegistry::new()));
        let tr = collector.tracer(TraceId::new(0, 0));
        {
            let _m = tr.enter("main");
            let _i = tr.enter("MPI_Init");
            drop(_i);
            tr.leaf("malloc@plt");
            tr.leaf("memcpy");
            tr.leaf("GOMP_critical_start");
            tr.leaf("GOMP_critical_end");
            tr.leaf("GOMP_barrier");
            tr.leaf("strlen");
            tr.leaf("MPI_Send");
            tr.leaf("MPI_Barrier");
            tr.leaf("CPU_Exec");
        }
        tr.finish();
        collector.into_trace_set()
    }

    fn names_of(set: &TraceSet, ft: &FilteredTrace) -> Vec<String> {
        ft.symbols
            .iter()
            .map(|&s| symbol_name(&set.registry, s))
            .collect()
    }

    #[test]
    fn everything_drops_returns_and_plt() {
        let set = sample_set();
        let f = FilterConfig::everything(10);
        let ft = f.apply(&set).traces.remove(0);
        let names = names_of(&set, &ft);
        assert!(names.contains(&"main".to_string()));
        assert!(names.contains(&"CPU_Exec".to_string()));
        assert!(!names.iter().any(|n| n.contains("plt")));
        assert!(!names.iter().any(|n| n.starts_with("ret ")));
    }

    #[test]
    fn keep_returns_when_configured() {
        let set = sample_set();
        let f = FilterConfig {
            drop_returns: false,
            ..FilterConfig::everything(10)
        };
        let ft = f.apply(&set).traces.remove(0);
        let names = names_of(&set, &ft);
        assert!(names.contains(&"ret main".to_string()));
    }

    #[test]
    fn mpi_filters() {
        let set = sample_set();
        let all = FilterConfig::mpi_all(10).apply(&set).traces.remove(0);
        assert_eq!(
            names_of(&set, &all),
            vec!["MPI_Init", "MPI_Send", "MPI_Barrier"]
        );
        let col = FilterConfig {
            keep: vec![KeepClass::MpiCollectives],
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(names_of(&set, &col), vec!["MPI_Barrier"]);
        let sr = FilterConfig {
            keep: vec![KeepClass::MpiSendRecv],
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(names_of(&set, &sr), vec!["MPI_Send"]);
    }

    #[test]
    fn omp_and_memory_and_string_classes() {
        let set = sample_set();
        let crit = FilterConfig {
            keep: vec![KeepClass::OmpCritical],
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(
            names_of(&set, &crit),
            vec!["GOMP_critical_start", "GOMP_critical_end"]
        );
        let omp = FilterConfig {
            keep: vec![KeepClass::OmpAll],
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(names_of(&set, &omp).len(), 3);
        let mem = FilterConfig {
            keep: vec![KeepClass::Memory],
            drop_plt: false,
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(names_of(&set, &mem), vec!["malloc@plt", "memcpy"]);
        let s = FilterConfig {
            keep: vec![KeepClass::Strings],
            ..FilterConfig::default()
        }
        .apply(&set)
        .traces
        .remove(0);
        assert_eq!(names_of(&set, &s), vec!["strlen"]);
    }

    #[test]
    fn union_of_classes_and_custom() {
        let set = sample_set();
        let f = FilterConfig {
            keep: vec![
                KeepClass::Memory,
                KeepClass::OmpCritical,
                KeepClass::Custom("^CPU_Exec$".to_string()),
            ],
            ..FilterConfig::default()
        };
        f.validate().unwrap();
        let ft = f.apply(&set).traces.remove(0);
        assert_eq!(
            names_of(&set, &ft),
            vec![
                "memcpy",
                "GOMP_critical_start",
                "GOMP_critical_end",
                "CPU_Exec"
            ]
        );
    }

    #[test]
    fn code_rendering() {
        let f = FilterConfig {
            drop_returns: true,
            drop_plt: true,
            keep: vec![
                KeepClass::Memory,
                KeepClass::OmpCritical,
                KeepClass::Custom("x".into()),
            ],
            nlr_k: 10,
        };
        assert_eq!(f.to_string(), "11.mem.ompcrit.cust.K10");
        assert_eq!(FilterConfig::everything(50).to_string(), "11.all.K50");
        let f2 = FilterConfig {
            drop_returns: false,
            ..FilterConfig::mpi_all(10)
        };
        assert_eq!(f2.to_string(), "01.mpiall.K10");
    }

    #[test]
    fn mpi_internal_class_matches_library_names() {
        let collector = dt_trace::TraceCollector::shared(Arc::new(FunctionRegistry::new()));
        let tr = collector.tracer(TraceId::new(0, 0));
        tr.leaf("MPI_Send");
        tr.leaf("MPIDI_CH3_EagerContigSend");
        tr.leaf("MPIR_Allreduce_intra");
        tr.leaf("tcp_sendmsg");
        tr.leaf("userFn");
        tr.finish();
        let set = collector.into_trace_set();
        let f = FilterConfig {
            keep: vec![KeepClass::MpiInternal],
            ..FilterConfig::default()
        };
        let ft = f.apply(&set).traces.remove(0);
        assert_eq!(
            names_of(&set, &ft),
            vec!["MPIDI_CH3_EagerContigSend", "MPIR_Allreduce_intra"]
        );
        // The code round-trips through FromStr.
        let parsed: FilterConfig = "11.mpiint.K10".parse().unwrap();
        assert!(matches!(parsed.keep[0], KeepClass::MpiInternal));
    }

    #[test]
    fn coverage_measures_kept_fraction() {
        let set = sample_set();
        let total: usize = set.iter().map(|t| t.events.len()).sum();
        let all = FilterConfig {
            drop_returns: false,
            drop_plt: false,
            ..FilterConfig::everything(10)
        }
        .coverage(&set);
        assert_eq!(all.total_events, total);
        assert_eq!(all.kept_events, total);
        assert!((all.fraction() - 1.0).abs() < 1e-12);

        let mpi = FilterConfig::mpi_all(10).coverage(&set);
        assert_eq!(mpi.kept_events, 3); // Init, Send, Barrier calls
        assert_eq!(mpi.distinct_kept, 3);
        assert!(mpi.fraction() < 0.5);

        let none = FilterConfig {
            keep: vec![KeepClass::Network],
            ..FilterConfig::default()
        }
        .coverage(&set);
        assert_eq!(none.kept_events, 0);
        assert_eq!(none.fraction(), 0.0);
    }

    #[test]
    fn table_i_catalog_is_complete() {
        let cat = table_i_catalog(10);
        assert_eq!(cat.len(), 11);
        assert!(cat.iter().any(|(n, _)| *n == "MPI Collectives"));
        // Every entry is valid and keeps a subset of "Everything".
        let set = sample_set();
        let everything = table_i_catalog(10)[0].1.coverage(&set).kept_events;
        for (name, f) in cat {
            f.validate().unwrap();
            assert!(
                f.coverage(&set).kept_events <= everything,
                "{name} keeps more than Everything"
            );
        }
    }

    #[test]
    fn filter_codes_parse_round_trip() {
        for code in [
            "11.all.K10",
            "01.mpiall.K50",
            "11.mem.ompcrit.K10",
            "10.mpicol.mpisr.omp.net.poll.str.K3",
        ] {
            let cfg: FilterConfig = code.parse().unwrap();
            assert_eq!(cfg.to_string().replace(".cust", ""), *code);
        }
        let cfg: FilterConfig = "11.cust:^CPU_.K10".parse().unwrap();
        assert!(matches!(&cfg.keep[0], KeepClass::Custom(p) if p == "^CPU_"));
        assert!("xx.all.K10".parse::<FilterConfig>().is_err());
        assert!("11.bogus.K10".parse::<FilterConfig>().is_err());
        assert!("11.all.K0".parse::<FilterConfig>().is_err());
        assert!("11.cust:a(b.K10".parse::<FilterConfig>().is_err());
    }

    #[test]
    fn invalid_custom_pattern_rejected() {
        let f = FilterConfig {
            keep: vec![KeepClass::Custom("a(b".to_string())],
            ..FilterConfig::default()
        };
        assert!(f.validate().is_err());
    }
}
