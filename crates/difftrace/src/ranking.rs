//! Ranking tables: parameter sweeps over the DiffTrace loop.
//!
//! "Since DiffTrace output is highly dependent on parameters, each row
//! in ranking tables starts with the parameters that the suspicious
//! traces are the result of" (§IV, lightly paraphrased). A sweep runs [`crate::diff_runs`]
//! for every (filter, attribute) combination and sorts rows by B-score
//! ascending, like Tables VI–IX.

use crate::attributes::AttrConfig;
use crate::filter::FilterConfig;
use crate::lint::LintGate;
use crate::pipeline::{try_diff_runs_hb_rec, Params, PipelineOptions};
use cluster::Method;
use dt_cache::Cache;
use dt_trace::{TraceId, TraceSet};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// One row of a ranking table.
#[derive(Debug, Clone)]
pub struct RankingRow {
    /// Filter code, e.g. `11.mem.ompcrit.cust.K10`.
    pub filter: String,
    /// Attribute code, e.g. `doub.noFreq`.
    pub attrs: String,
    /// The B-score of the normal/faulty clustering pair.
    pub bscore: f64,
    /// Most-affected processes.
    pub top_processes: Vec<u32>,
    /// Most-affected threads.
    pub top_threads: Vec<TraceId>,
}

/// Sweep the parameter grid on a (normal, faulty) pair; rows come back
/// sorted by B-score ascending (the paper's table order).
pub fn sweep(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
) -> Vec<RankingRow> {
    sweep_cached(normal, faulty, filters, attr_configs, method, None)
}

/// [`sweep`] through a shared analysis [`Cache`]: grid cells that share
/// a filter reuse each trace's NLR fold, and re-runs over unchanged
/// corpora reuse everything. Rows are byte-identical to an uncached
/// sweep (the cache is observational; asserted by the cache-equivalence
/// harness).
pub fn sweep_cached(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    cache: Option<Arc<Cache>>,
) -> Vec<RankingRow> {
    let opts = cell_opts(cache);
    let mut rows: Vec<RankingRow> = grid(filters, attr_configs, method)
        .iter()
        .map(|p| run_cell(normal, faulty, p, &opts, &dt_obs::NOOP))
        .collect();
    sort_rows(&mut rows);
    rows
}

/// Pipeline options for one sweep cell: sequential inside the cell (the
/// grid itself is the parallelism axis), gates off, sharing `cache`.
fn cell_opts(cache: Option<Arc<Cache>>) -> PipelineOptions {
    PipelineOptions {
        threads: 1,
        lint: LintGate::Off,
        hb: LintGate::Off,
        race: LintGate::Off,
        req: LintGate::Off,
        cache,
    }
}

/// Multi-threaded [`sweep`] — the paper's future-work item (1),
/// "optimizing [the components] to exploit multi-core CPUs": every
/// parameter combination is an independent DiffTrace iteration, so the
/// grid is embarrassingly parallel. Results are identical to [`sweep`]
/// (asserted in tests); `threads` ≤ 0 picks the available parallelism.
pub fn sweep_parallel(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    threads: usize,
) -> Vec<RankingRow> {
    sweep_parallel_rec(
        normal,
        faulty,
        filters,
        attr_configs,
        method,
        threads,
        &dt_obs::NOOP,
    )
}

/// [`sweep_parallel`] reporting into `rec`: one `cell/<filter>/<attrs>`
/// span per grid point, per-worker busy time under `cells`, and a
/// `cells` counter. Observational only — rows are identical whatever
/// recorder is passed.
pub fn sweep_parallel_rec(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    threads: usize,
    rec: &dyn dt_obs::Recorder,
) -> Vec<RankingRow> {
    sweep_parallel_cached_rec(
        normal,
        faulty,
        filters,
        attr_configs,
        method,
        threads,
        None,
        rec,
    )
}

/// [`sweep_parallel_rec`] through a shared analysis [`Cache`]: every
/// worker consults the same cache, so whichever cell folds a
/// (filtered trace, K) first saves the work for all later cells sharing
/// that filter — and for later processes, when the cache is
/// disk-backed. Rows are byte-identical to the uncached sweep.
#[allow(clippy::too_many_arguments)]
pub fn sweep_parallel_cached_rec(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    threads: usize,
    cache: Option<Arc<Cache>>,
    rec: &dyn dt_obs::Recorder,
) -> Vec<RankingRow> {
    let params = grid(filters, attr_configs, method);
    if rec.enabled() {
        rec.add("cells", params.len() as u64);
    }
    let opts = cell_opts(cache);
    let mut rows = crate::sync::par_map_obs(&params, threads, rec, "cells", |_, p| {
        let _s = rec
            .enabled()
            .then(|| dt_obs::stage_owned(rec, format!("cell/{}/{}", p.filter, p.attrs)));
        run_cell(normal, faulty, p, &opts, rec)
    });
    sort_rows(&mut rows);
    rows
}

/// The parameter cross product, deduplicated: callers can pass the same
/// filter (or attribute config) twice — e.g. repeated `--filter` flags
/// — and each distinct (filter, attrs) combination still runs exactly
/// once. Filters compare by [`FilterConfig::stable_code`], which keeps
/// custom patterns, so two `cust` filters with different regexes are
/// distinct cells. First occurrence wins, preserving caller order.
fn grid(filters: &[FilterConfig], attr_configs: &[AttrConfig], method: Method) -> Vec<Params> {
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut out = Vec::with_capacity(filters.len() * attr_configs.len());
    for f in filters {
        for &a in attr_configs {
            if !seen.insert((f.stable_code(), a.to_string())) {
                continue;
            }
            out.push(Params {
                filter: f.clone(),
                attrs: a,
                linkage: method,
            });
        }
    }
    out
}

fn run_cell(
    normal: &TraceSet,
    faulty: &TraceSet,
    params: &Params,
    opts: &PipelineOptions,
    rec: &dyn dt_obs::Recorder,
) -> RankingRow {
    let d = try_diff_runs_hb_rec(normal, faulty, None, params, opts, rec)
        .expect("sweep cells run with all gates off");
    RankingRow {
        filter: params.filter.to_string(),
        attrs: params.attrs.to_string(),
        bscore: d.bscore,
        top_processes: d.suspicious_processes,
        top_threads: d.suspicious_threads,
    }
}

fn sort_rows(rows: &mut [RankingRow]) {
    rows.sort_by(|x, y| {
        x.bscore
            .total_cmp(&y.bscore)
            .then_with(|| x.filter.cmp(&y.filter))
            .then_with(|| x.attrs.cmp(&y.attrs))
    });
}

/// Render rows as an aligned text table in the paper's column layout.
pub fn render_ranking(rows: &[RankingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:<12} {:>8}  {:<20} {}\n",
        "Filter", "Attributes", "B-score", "Top Processes", "Top Threads"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        let procs = r
            .top_processes
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let threads = r
            .top_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<32} {:<12} {:>8.3}  {:<20} {}\n",
            r.filter, r.attrs, r.bscore, procs, threads
        ));
    }
    out
}

impl fmt::Display for RankingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {:.3} | {:?} | {:?}",
            self.filter, self.attrs, self.bscore, self.top_processes, self.top_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrKind, FreqMode};
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;

    fn runs() -> (TraceSet, TraceSet) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |bad_rank: Option<u32>| {
            crate::record_masters(&registry, 4, |p, tr| {
                tr.leaf("MPI_Init");
                let n = if Some(p) == bad_rank { 2 } else { 10 };
                for _ in 0..n {
                    tr.leaf("MPI_Allreduce");
                    tr.leaf("MPI_Bcast");
                }
                tr.leaf("MPI_Finalize");
            })
        };
        (mk(None), mk(Some(1)))
    }

    #[test]
    fn sweep_produces_sorted_rows() {
        let (normal, faulty) = runs();
        let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
        let attrs = [
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        ];
        let rows = sweep(&normal, &faulty, &filters, &attrs, Method::Ward);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].bscore <= w[1].bscore);
        }
        // Frequency-sensitive rows must implicate rank 1.
        let actual_rows: Vec<&RankingRow> =
            rows.iter().filter(|r| r.attrs == "sing.actual").collect();
        for r in actual_rows {
            assert_eq!(r.top_processes.first(), Some(&1), "{r}");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let (normal, faulty) = runs();
        let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
        let serial = sweep(&normal, &faulty, &filters, &AttrConfig::ALL, Method::Ward);
        for threads in [0usize, 1, 3, 16] {
            let par = sweep_parallel(
                &normal,
                &faulty,
                &filters,
                &AttrConfig::ALL,
                Method::Ward,
                threads,
            );
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.filter, b.filter);
                assert_eq!(a.attrs, b.attrs);
                assert_eq!(a.bscore, b.bscore);
                assert_eq!(a.top_processes, b.top_processes);
                assert_eq!(a.top_threads, b.top_threads);
            }
        }
    }

    /// Satellite: duplicated grid axes must not produce duplicated
    /// rows — each distinct (filter, attrs) cell runs exactly once.
    #[test]
    fn sweep_deduplicates_grid_cells() {
        let (normal, faulty) = runs();
        // mpiall twice, everything once; sing.actual twice, noFreq once
        // → 2 × 2 = 4 distinct cells, not 3 × 3 = 9.
        let filters = vec![
            FilterConfig::mpi_all(10),
            FilterConfig::mpi_all(10),
            FilterConfig::everything(10),
        ];
        let attrs = [
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        ];
        let rows = sweep(&normal, &faulty, &filters, &attrs, Method::Ward);
        assert_eq!(rows.len(), 4, "{rows:?}");
        let cells: BTreeSet<(String, String)> = rows
            .iter()
            .map(|r| (r.filter.clone(), r.attrs.clone()))
            .collect();
        assert_eq!(cells.len(), 4, "rows must be distinct cells");

        // Custom filters dedup by pattern, not by the (pattern-eliding)
        // display code: two different regexes are two cells.
        let cust = |pat: &str| FilterConfig {
            keep: vec![crate::KeepClass::Custom(pat.to_string())],
            ..FilterConfig::everything(10)
        };
        let g = grid(
            &[cust("MPI_.*"), cust("omp_.*"), cust("MPI_.*")],
            &attrs[..1],
            Method::Ward,
        );
        assert_eq!(g.len(), 2, "{g:?}");
    }

    /// Satellite (NaN bugfix): a NaN B-score must sort deterministically
    /// instead of panicking — `sort_by(total_cmp)` orders NaN after
    /// every finite value, where `partial_cmp().unwrap()` used to abort
    /// the whole sweep.
    #[test]
    fn sort_rows_is_total_over_nan() {
        let row = |bscore: f64, filter: &str| RankingRow {
            filter: filter.to_string(),
            attrs: "sing.actual".to_string(),
            bscore,
            top_processes: vec![],
            top_threads: vec![],
        };
        let mut rows = vec![
            row(f64::NAN, "c"),
            row(1.0, "b"),
            row(f64::NAN, "a"),
            row(0.25, "d"),
        ];
        sort_rows(&mut rows);
        let order: Vec<&str> = rows.iter().map(|r| r.filter.as_str()).collect();
        // Finite ascending first, then the NaNs tie-broken by filter.
        assert_eq!(order, ["d", "b", "a", "c"]);
        // And sorting is idempotent (deterministic under re-sorts).
        let again = {
            let mut r2 = rows.clone();
            sort_rows(&mut r2);
            r2.iter().map(|r| r.filter.clone()).collect::<Vec<_>>()
        };
        assert_eq!(order, again.iter().map(String::as_str).collect::<Vec<_>>());
        // NaN rows still render rather than crash formatting.
        assert!(render_ranking(&rows).contains("NaN"));
    }

    /// Satellite (NaN bugfix): a degenerate corpus — every trace
    /// identical, plus a filter that keeps nothing — must flow through
    /// the whole sweep without panicking, at any thread count.
    #[test]
    fn degenerate_corpus_survives_sweep() {
        let registry = Arc::new(FunctionRegistry::new());
        let identical = || {
            crate::record_masters(&registry, 4, |_, tr| {
                tr.leaf("MPI_Init");
                tr.leaf("MPI_Finalize");
            })
        };
        let (normal, faulty) = (identical(), identical());
        // `cust:` pattern matching no function: every filtered trace is
        // empty, every attribute set is empty, all similarities
        // degenerate.
        let filters = vec![
            FilterConfig {
                keep: vec![crate::KeepClass::Custom("^nothing_matches$".into())],
                ..FilterConfig::everything(10)
            },
            FilterConfig::mpi_all(10),
        ];
        let serial = sweep(&normal, &faulty, &filters, &AttrConfig::ALL, Method::Ward);
        assert_eq!(serial.len(), 2 * AttrConfig::ALL.len());
        for threads in [0usize, 3] {
            let par = sweep_parallel(
                &normal,
                &faulty,
                &filters,
                &AttrConfig::ALL,
                Method::Ward,
                threads,
            );
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(
                    (a.filter.as_str(), a.attrs.as_str()),
                    (b.filter.as_str(), b.attrs.as_str())
                );
                assert!(a.bscore == b.bscore || (a.bscore.is_nan() && b.bscore.is_nan()));
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let (normal, faulty) = runs();
        let rows = sweep(
            &normal,
            &faulty,
            &[FilterConfig::mpi_all(10)],
            &[AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            }],
            Method::Ward,
        );
        let table = render_ranking(&rows);
        assert!(table.contains("B-score"));
        assert!(table.contains("11.mpiall.K10"));
        assert!(table.contains("sing.actual"));
    }
}
