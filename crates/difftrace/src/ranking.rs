//! Ranking tables: parameter sweeps over the DiffTrace loop.
//!
//! "Since DiffTrace output is highly dependent on parameters, each row
//! in ranking tables starts with the parameters that the suspicious
//! traces are the result of" (§IV, lightly paraphrased). A sweep runs [`crate::diff_runs`]
//! for every (filter, attribute) combination and sorts rows by B-score
//! ascending, like Tables VI–IX.

use crate::attributes::AttrConfig;
use crate::filter::FilterConfig;
use crate::pipeline::{diff_runs, Params};
use cluster::Method;
use dt_trace::{TraceId, TraceSet};
use std::fmt;

/// One row of a ranking table.
#[derive(Debug, Clone)]
pub struct RankingRow {
    /// Filter code, e.g. `11.mem.ompcrit.cust.K10`.
    pub filter: String,
    /// Attribute code, e.g. `doub.noFreq`.
    pub attrs: String,
    /// The B-score of the normal/faulty clustering pair.
    pub bscore: f64,
    /// Most-affected processes.
    pub top_processes: Vec<u32>,
    /// Most-affected threads.
    pub top_threads: Vec<TraceId>,
}

/// Sweep the parameter grid on a (normal, faulty) pair; rows come back
/// sorted by B-score ascending (the paper's table order).
pub fn sweep(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
) -> Vec<RankingRow> {
    let mut rows: Vec<RankingRow> = grid(filters, attr_configs, method)
        .iter()
        .map(|p| run_cell(normal, faulty, p))
        .collect();
    sort_rows(&mut rows);
    rows
}

/// Multi-threaded [`sweep`] — the paper's future-work item (1),
/// "optimizing [the components] to exploit multi-core CPUs": every
/// parameter combination is an independent DiffTrace iteration, so the
/// grid is embarrassingly parallel. Results are identical to [`sweep`]
/// (asserted in tests); `threads` ≤ 0 picks the available parallelism.
pub fn sweep_parallel(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    threads: usize,
) -> Vec<RankingRow> {
    sweep_parallel_rec(
        normal,
        faulty,
        filters,
        attr_configs,
        method,
        threads,
        &dt_obs::NOOP,
    )
}

/// [`sweep_parallel`] reporting into `rec`: one `cell/<filter>/<attrs>`
/// span per grid point, per-worker busy time under `cells`, and a
/// `cells` counter. Observational only — rows are identical whatever
/// recorder is passed.
pub fn sweep_parallel_rec(
    normal: &TraceSet,
    faulty: &TraceSet,
    filters: &[FilterConfig],
    attr_configs: &[AttrConfig],
    method: Method,
    threads: usize,
    rec: &dyn dt_obs::Recorder,
) -> Vec<RankingRow> {
    let params = grid(filters, attr_configs, method);
    if rec.enabled() {
        rec.add("cells", params.len() as u64);
    }
    let mut rows = crate::sync::par_map_obs(&params, threads, rec, "cells", |_, p| {
        let _s = rec
            .enabled()
            .then(|| dt_obs::stage_owned(rec, format!("cell/{}/{}", p.filter, p.attrs)));
        run_cell(normal, faulty, p)
    });
    sort_rows(&mut rows);
    rows
}

fn grid(filters: &[FilterConfig], attr_configs: &[AttrConfig], method: Method) -> Vec<Params> {
    let mut out = Vec::with_capacity(filters.len() * attr_configs.len());
    for f in filters {
        for &a in attr_configs {
            out.push(Params {
                filter: f.clone(),
                attrs: a,
                linkage: method,
            });
        }
    }
    out
}

fn run_cell(normal: &TraceSet, faulty: &TraceSet, params: &Params) -> RankingRow {
    let d = diff_runs(normal, faulty, params);
    RankingRow {
        filter: params.filter.to_string(),
        attrs: params.attrs.to_string(),
        bscore: d.bscore,
        top_processes: d.suspicious_processes,
        top_threads: d.suspicious_threads,
    }
}

fn sort_rows(rows: &mut [RankingRow]) {
    rows.sort_by(|x, y| {
        x.bscore
            .partial_cmp(&y.bscore)
            .unwrap()
            .then_with(|| x.filter.cmp(&y.filter))
            .then_with(|| x.attrs.cmp(&y.attrs))
    });
}

/// Render rows as an aligned text table in the paper's column layout.
pub fn render_ranking(rows: &[RankingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:<12} {:>8}  {:<20} {}\n",
        "Filter", "Attributes", "B-score", "Top Processes", "Top Threads"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        let procs = r
            .top_processes
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let threads = r
            .top_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<32} {:<12} {:>8.3}  {:<20} {}\n",
            r.filter, r.attrs, r.bscore, procs, threads
        ));
    }
    out
}

impl fmt::Display for RankingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {:.3} | {:?} | {:?}",
            self.filter, self.attrs, self.bscore, self.top_processes, self.top_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrKind, FreqMode};
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;

    fn runs() -> (TraceSet, TraceSet) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |bad_rank: Option<u32>| {
            crate::record_masters(&registry, 4, |p, tr| {
                tr.leaf("MPI_Init");
                let n = if Some(p) == bad_rank { 2 } else { 10 };
                for _ in 0..n {
                    tr.leaf("MPI_Allreduce");
                    tr.leaf("MPI_Bcast");
                }
                tr.leaf("MPI_Finalize");
            })
        };
        (mk(None), mk(Some(1)))
    }

    #[test]
    fn sweep_produces_sorted_rows() {
        let (normal, faulty) = runs();
        let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
        let attrs = [
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        ];
        let rows = sweep(&normal, &faulty, &filters, &attrs, Method::Ward);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].bscore <= w[1].bscore);
        }
        // Frequency-sensitive rows must implicate rank 1.
        let actual_rows: Vec<&RankingRow> =
            rows.iter().filter(|r| r.attrs == "sing.actual").collect();
        for r in actual_rows {
            assert_eq!(r.top_processes.first(), Some(&1), "{r}");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let (normal, faulty) = runs();
        let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
        let serial = sweep(&normal, &faulty, &filters, &AttrConfig::ALL, Method::Ward);
        for threads in [0usize, 1, 3, 16] {
            let par = sweep_parallel(
                &normal,
                &faulty,
                &filters,
                &AttrConfig::ALL,
                Method::Ward,
                threads,
            );
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.filter, b.filter);
                assert_eq!(a.attrs, b.attrs);
                assert_eq!(a.bscore, b.bscore);
                assert_eq!(a.top_processes, b.top_processes);
                assert_eq!(a.top_threads, b.top_threads);
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let (normal, faulty) = runs();
        let rows = sweep(
            &normal,
            &faulty,
            &[FilterConfig::mpi_all(10)],
            &[AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            }],
            Method::Ward,
        );
        let table = render_ranking(&rows);
        assert!(table.contains("B-score"));
        assert!(table.contains("11.mpiall.K10"));
        assert!(table.contains("sing.actual"));
    }
}
