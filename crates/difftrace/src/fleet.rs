//! Fleet-scale N-way diffing on one persistent incremental lattice.
//!
//! The pairwise pipeline ([`crate::pipeline`]) answers "how does THIS
//! faulty run differ from THAT normal run". Production debugging is
//! usually the N-way question instead: one suspicious run against a
//! *fleet* of good ones. [`FleetRun`] folds every run's mined
//! attribute sets into ONE [`fca::ConceptLattice`] via the incremental
//! Godin step ([`fca::ConceptLattice::add_object`]) — run N+1 never
//! rebuilds what runs 1..N already paid for — maintains the cross-run
//! similarity view incrementally as runs arrive, and ranks "which run,
//! and which trace within it, deviates from the consensus".
//!
//! # Ingestion-order independence
//!
//! Folding the same runs in any order yields **byte-identical
//! rankings**. Three design rules make that hold:
//!
//! * every run gets its own local [`nlr::LoopTable`], so loop
//!   numbering never depends on which runs were folded before it;
//! * loop tokens in mined attribute names are rewritten to
//!   content-hash labels (`L#<hash>` over the structural rendering of
//!   the body through *registry names*), so two runs that fold the
//!   same loop agree on its attribute name no matter what their
//!   registries or tables look like;
//! * every floating-point reduction (pairwise Jaccard merge-join,
//!   consensus sums, run means) iterates in a canonical order —
//!   name-sorted attributes, name-sorted runs, id-sorted traces —
//!   never in ingestion order.
//!
//! This mirrors how [`nlr::SharedLoopTable`] replay removes the thread
//! schedule from parallel NLR builds: compute in whatever order is
//! convenient, then canonicalize before anything observable.
//!
//! # Scoring
//!
//! For run `r` and trace `t`, the consensus deviation is
//! `dev(r,t) = 1 − mean over other runs r' of sim((r,t), (r',t))`; a
//! run's score is the mean deviation over its traces. The top-ranked
//! run is flagged as the fleet outlier when its score exceeds twice
//! the median run score (plus an epsilon so a perfectly homogeneous
//! fleet is never flagged). All comparisons go through
//! [`f64::total_cmp`] with name/id tie-breaks, so ranking is total
//! and NaN-safe.

use crate::attributes::mine;
use crate::filter::symbol_name;
use crate::pipeline::{align_filtered, build_nlrs, nlr_cache_keys, Params};
use crate::sync::{effective_threads, par_map_obs};
use cluster::{fcluster_maxclust, linkage, CondensedMatrix};
use dt_cache::Cache;
use dt_obs::{stage, Recorder};
use dt_trace::{TraceId, TraceSet};
use fca::{AttrId, ConceptLattice, FormalContext};
use nlr::{Element, LoopId, LoopTable};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Loop tokens in mined labels are shifted above this base before the
/// content-hash rewrite, so a *function* named like `L5` can never be
/// mistaken for a loop reference (real loop ids stay far below 2³⁰).
const LOOP_TOKEN_BASE: u32 = 1 << 30;

/// A healthy-looking fleet is never flagged: the top score must beat
/// `2 × median + ε`.
const OUTLIER_EPSILON: f64 = 1e-12;

/// Execution options for fleet folding, orthogonal to [`Params`]:
/// they change how fast a run is folded, never what the fold yields.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads for the per-run NLR/mining stages (0 = all
    /// available parallelism, ≤1 = sequential).
    pub threads: usize,
    /// Content-addressed NLR fold cache. Only the NLR stage is cached:
    /// mined attribute sets embed run-local loop labels, so sharing
    /// the attribute cache across runs would be unsound.
    pub cache: Option<Arc<Cache>>,
}

impl FleetOptions {
    /// Options with the given thread count.
    pub fn with_threads(threads: usize) -> FleetOptions {
        FleetOptions {
            threads,
            ..FleetOptions::default()
        }
    }
}

/// Why a run could not join the fleet. Every variant is a diagnosed
/// input error (CLI exit 2), never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The run's trace set differs from the fleet's universe (fixed by
    /// the first run folded).
    Misaligned {
        /// The offending run.
        run: String,
        /// Universe traces the run lacks.
        missing: Vec<TraceId>,
        /// Run traces outside the universe.
        extra: Vec<TraceId>,
    },
    /// Two runs with the same name.
    DuplicateRun(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Misaligned {
                run,
                missing,
                extra,
            } => {
                let list = |ids: &[TraceId]| {
                    ids.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                write!(
                    f,
                    "ragged fleet: run `{run}` does not cover the fleet's trace set:"
                )?;
                if !missing.is_empty() {
                    write!(f, " missing [{}]", list(missing))?;
                }
                if !extra.is_empty() {
                    write!(f, " extra [{}]", list(extra))?;
                }
                Ok(())
            }
            FleetError::DuplicateRun(name) => {
                write!(f, "duplicate run name `{name}` in fleet")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One run's place in the consensus ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RunScore {
    /// Run name.
    pub name: String,
    /// Mean consensus deviation over the run's traces (0 = identical
    /// to the fleet consensus).
    pub score: f64,
    /// Per-trace deviations, ranked most-deviant first.
    pub traces: Vec<(TraceId, f64)>,
}

/// The fleet analysis result: ranking, outlier verdict, clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Runs ranked by score (most deviant first; ties broken by name).
    pub runs: Vec<RunScore>,
    /// The trace universe every run covers, in matrix order.
    pub universe: Vec<TraceId>,
    /// `(run, cluster-id)` in canonical (name-sorted) order, from a
    /// 2-way cut of the run-level dendrogram — the "consensus vs
    /// deviant" grouping.
    pub clusters: Vec<(String, usize)>,
    /// The flagged run, when the top score clears `2 × median + ε`
    /// (needs ≥ 3 runs; a pair has no consensus to deviate from).
    pub outlier: Option<String>,
    /// Median run score (the consensus spread the verdict is against).
    pub median: f64,
    /// Objects folded into the persistent lattice (runs × traces).
    pub objects: usize,
    /// Concepts in the persistent lattice.
    pub concepts: usize,
}

impl FleetReport {
    /// The rank (1-based) and score of `run`, if it is in the fleet.
    pub fn rank_of(&self, run: &str) -> Option<(usize, f64)> {
        self.runs
            .iter()
            .position(|r| r.name == run)
            .map(|i| (i + 1, self.runs[i].score))
    }
}

/// An N-way fleet analysis under one [`Params`]: a persistent formal
/// context + concept lattice grown object-by-object as runs are
/// folded, plus the incrementally maintained cross-run similarity
/// view. Fold runs with [`FleetRun::add_run`], read the ranking with
/// [`FleetRun::report`].
#[derive(Debug)]
pub struct FleetRun {
    params: Params,
    /// Trace ids every run must cover, fixed by the first run.
    universe: Vec<TraceId>,
    /// Run names in fold order.
    runs: Vec<String>,
    /// Per run, per trace (universe order): the name-sorted mined
    /// attribute list with canonical loop labels.
    attrs: Vec<Vec<Vec<(String, f64)>>>,
    /// Persistent context; objects are labelled `run/P.T`.
    context: FormalContext,
    /// Persistent lattice, grown only via the incremental Godin step.
    lattice: ConceptLattice,
    /// `cross[i][j][t]` (j < i) = sim of trace `t` between runs `i`
    /// and `j` (fold order) — the incrementally maintained JSM view.
    cross: Vec<Vec<Vec<f64>>>,
}

impl FleetRun {
    /// An empty fleet under `params`.
    pub fn new(params: Params) -> FleetRun {
        FleetRun {
            params,
            universe: Vec::new(),
            runs: Vec::new(),
            attrs: Vec::new(),
            context: FormalContext::new(),
            lattice: ConceptLattice::new(),
            cross: Vec::new(),
        }
    }

    /// The analysis parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs folded so far, in fold order.
    pub fn run_names(&self) -> &[String] {
        &self.runs
    }

    /// The trace universe (empty until the first run is folded).
    pub fn universe(&self) -> &[TraceId] {
        &self.universe
    }

    /// Fold one run into the fleet (see [`FleetRun::add_run_rec`]).
    pub fn add_run(
        &mut self,
        run: &str,
        set: &TraceSet,
        opts: &FleetOptions,
    ) -> Result<(), FleetError> {
        self.add_run_rec(run, set, opts, &dt_obs::NOOP)
    }

    /// Fold one run into the fleet, reporting stage spans and the
    /// incrementality counters (`fleet_runs`, `fleet_lattice_folds`,
    /// `nlr_folds`) into `rec`. The first run fixes the trace
    /// universe; later runs must cover exactly the same trace set or
    /// the fold is refused with a diagnosed [`FleetError::Misaligned`]
    /// (the fleet itself is left unchanged).
    pub fn add_run_rec(
        &mut self,
        run: &str,
        set: &TraceSet,
        opts: &FleetOptions,
        rec: &dyn Recorder,
    ) -> Result<(), FleetError> {
        if self.runs.iter().any(|r| r == run) {
            return Err(FleetError::DuplicateRun(run.to_string()));
        }
        let ids = set.ids();
        if self.runs.is_empty() {
            self.universe = ids;
        } else if ids != self.universe {
            let missing = self
                .universe
                .iter()
                .filter(|t| !ids.contains(t))
                .copied()
                .collect();
            let extra = ids
                .iter()
                .filter(|t| !self.universe.contains(t))
                .copied()
                .collect();
            return Err(FleetError::Misaligned {
                run: run.to_string(),
                missing,
                extra,
            });
        }
        let attrs = mine_run(set, &self.params, &self.universe, opts, rec);

        // Grow the persistent lattice by exactly this run's objects —
        // the incremental Godin step, never a rebuild. The counter is
        // what `--metrics` greps to prove incrementality.
        {
            let _s = stage(rec, "fleet_fold");
            for (id, a) in self.universe.iter().zip(&attrs) {
                let g = self.context.add_object(
                    &format!("{run}/{id}"),
                    a.iter().map(|(k, w)| (k.as_str(), *w)),
                );
                let intent = self.context.object_attrs(g).clone();
                self.lattice.add_object(&intent);
            }
        }
        if rec.enabled() {
            rec.add("fleet_runs", 1);
            rec.add("fleet_lattice_folds", self.universe.len() as u64);
        }

        // Incrementally extend the cross-run similarity view: one
        // per-trace row against each already-folded run. Each cell is
        // a pure merge-join over two runs' name-sorted attribute
        // lists, so its value cannot depend on fold order.
        {
            let _s = stage(rec, "fleet_jsm");
            let row: Vec<Vec<f64>> = self
                .attrs
                .iter()
                .map(|prev| {
                    (0..self.universe.len())
                        .map(|t| pair_jaccard(&attrs[t], &prev[t]))
                        .collect()
                })
                .collect();
            if rec.enabled() {
                rec.add("fleet_jsm_cells", (row.len() * self.universe.len()) as u64);
            }
            self.cross.push(row);
        }
        self.attrs.push(attrs);
        self.runs.push(run.to_string());
        Ok(())
    }

    /// Similarity of trace `t` between runs `a` and `b` (fold-order
    /// indices).
    fn sim(&self, a: usize, b: usize, t: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let (hi, lo) = if a > b { (a, b) } else { (b, a) };
        self.cross[hi][lo][t]
    }

    /// The fleet ranking. Every reduction runs in canonical order
    /// (name-sorted runs, universe-order traces), so the report is
    /// byte-identical for any fold order of the same runs.
    pub fn report(&self) -> FleetReport {
        let n_runs = self.runs.len();
        let n_traces = self.universe.len();
        let mut order: Vec<usize> = (0..n_runs).collect();
        order.sort_by(|&a, &b| self.runs[a].cmp(&self.runs[b]));

        let mut scores: Vec<RunScore> = order
            .iter()
            .map(|&r| {
                let mut traces: Vec<(TraceId, f64)> = (0..n_traces)
                    .map(|t| {
                        let mut sum = 0.0;
                        for &q in &order {
                            if q != r {
                                sum += self.sim(r, q, t);
                            }
                        }
                        let dev = if n_runs > 1 {
                            1.0 - sum / (n_runs - 1) as f64
                        } else {
                            0.0
                        };
                        (self.universe[t], dev)
                    })
                    .collect();
                let score = if n_traces == 0 {
                    0.0
                } else {
                    traces.iter().map(|x| x.1).sum::<f64>() / n_traces as f64
                };
                traces.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                RunScore {
                    name: self.runs[r].clone(),
                    score,
                    traces,
                }
            })
            .collect();

        let mut sorted: Vec<f64> = scores.iter().map(|r| r.score).collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted
            .get(sorted.len().saturating_sub(1) / 2)
            .copied()
            .unwrap_or(0.0);

        // Run-level clusters over the canonical (name-sorted) run
        // order: mean per-trace similarity, 2-way dendrogram cut.
        let clusters = if n_runs >= 2 {
            let m: Vec<Vec<f64>> = order
                .iter()
                .map(|&a| {
                    order
                        .iter()
                        .map(|&b| {
                            if n_traces == 0 {
                                1.0
                            } else {
                                (0..n_traces).map(|t| self.sim(a, b, t)).sum::<f64>()
                                    / n_traces as f64
                            }
                        })
                        .collect()
                })
                .collect();
            let dend = linkage(&CondensedMatrix::from_similarity(&m), self.params.linkage);
            order
                .iter()
                .zip(fcluster_maxclust(&dend, 2))
                .map(|(&r, c)| (self.runs[r].clone(), c))
                .collect()
        } else {
            self.runs.iter().map(|r| (r.clone(), 1)).collect()
        };

        scores.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.name.cmp(&b.name)));
        let outlier = if n_runs >= 3 {
            scores
                .first()
                .filter(|top| top.score > 2.0 * median + OUTLIER_EPSILON)
                .map(|top| top.name.clone())
        } else {
            None
        };

        FleetReport {
            runs: scores,
            universe: self.universe.clone(),
            clusters,
            outlier,
            median,
            objects: self.context.num_objects(),
            concepts: self.lattice.concepts().len(),
        }
    }

    /// The persistent lattice in canonical form: the sorted set of
    /// `(sorted extent object labels, sorted intent attribute names)`
    /// pairs. Object indices and attribute interning order are fold
    /// artifacts, so this — not struct equality — is what "the same
    /// lattice" means across incremental and batch construction.
    pub fn lattice_canonical(&self) -> Vec<(Vec<String>, Vec<String>)> {
        let mut out: Vec<(Vec<String>, Vec<String>)> = self
            .lattice
            .concepts()
            .iter()
            .map(|c| {
                let mut ext: Vec<String> = c
                    .extent
                    .iter()
                    .map(|g| self.context.object_label(g).to_string())
                    .collect();
                ext.sort();
                let mut int: Vec<String> = c
                    .intent
                    .iter()
                    .map(|m| self.context.attr_name(AttrId(m as u32)).to_string())
                    .collect();
                int.sort();
                (ext, int)
            })
            .collect();
        out.sort();
        out
    }

    /// From-scratch batch construction: mine every run, assemble ONE
    /// full context, and build the lattice with
    /// [`ConceptLattice::from_context`] — deliberately *not* reusing
    /// any incremental state. Exists so tests can hold the incremental
    /// fold to the batch result (equal canonical lattice, byte-equal
    /// rankings); production callers should fold incrementally.
    pub fn batch_rec(
        params: &Params,
        named: &[(&str, &TraceSet)],
        opts: &FleetOptions,
        rec: &dyn Recorder,
    ) -> Result<FleetRun, FleetError> {
        let mut fleet = FleetRun::new(params.clone());
        for (run, set) in named {
            if fleet.runs.iter().any(|r| r == run) {
                return Err(FleetError::DuplicateRun(run.to_string()));
            }
            let ids = set.ids();
            if fleet.runs.is_empty() {
                fleet.universe = ids;
            } else if ids != fleet.universe {
                let missing = fleet
                    .universe
                    .iter()
                    .filter(|t| !ids.contains(t))
                    .copied()
                    .collect();
                let extra = ids
                    .iter()
                    .filter(|t| !fleet.universe.contains(t))
                    .copied()
                    .collect();
                return Err(FleetError::Misaligned {
                    run: run.to_string(),
                    missing,
                    extra,
                });
            }
            let attrs = mine_run(set, params, &fleet.universe, opts, rec);
            fleet.attrs.push(attrs);
            fleet.runs.push(run.to_string());
        }
        // One flat context over all objects, lattice from scratch.
        for (run, attrs) in fleet.runs.iter().zip(&fleet.attrs) {
            for (id, a) in fleet.universe.iter().zip(attrs) {
                fleet.context.add_object(
                    &format!("{run}/{id}"),
                    a.iter().map(|(k, w)| (k.as_str(), *w)),
                );
            }
        }
        fleet.lattice = ConceptLattice::from_context(&fleet.context);
        // Full cross-run similarity view in one go.
        for i in 0..fleet.runs.len() {
            let row: Vec<Vec<f64>> = (0..i)
                .map(|j| {
                    (0..fleet.universe.len())
                        .map(|t| pair_jaccard(&fleet.attrs[i][t], &fleet.attrs[j][t]))
                        .collect()
                })
                .collect();
            fleet.cross.push(row);
        }
        Ok(fleet)
    }
}

/// Mine one run into per-trace, name-sorted attribute lists with
/// canonical (content-hash) loop labels. Uses a run-LOCAL loop table:
/// loop numbering must not leak fleet fold order into attribute names.
fn mine_run(
    set: &TraceSet,
    params: &Params,
    universe: &[TraceId],
    opts: &FleetOptions,
    rec: &dyn Recorder,
) -> Vec<Vec<(String, f64)>> {
    let threads = effective_threads(opts.threads, universe.len());
    let aligned = {
        let _s = stage(rec, "fleet_filter");
        align_filtered(set, params, universe)
    };
    let keys: Option<Vec<u128>> = opts
        .cache
        .as_ref()
        .map(|_| nlr_cache_keys(set, &aligned, params.filter.nlr_k));
    let mut table = LoopTable::new();
    let (nlrs, folds) = {
        let _s = stage(rec, "fleet_nlr");
        build_nlrs(
            &aligned,
            params.filter.nlr_k,
            &mut table,
            threads,
            opts.cache.as_deref(),
            keys.as_deref(),
        )
    };
    if rec.enabled() {
        rec.add("nlr_folds", folds);
    }

    let name = |s: u32| symbol_name(&set.registry, s);
    // Canonical labels for every top-level loop reference. Nested
    // references render structurally inside the hash input, so only
    // top-level ids (the only ones that reach attribute names — see
    // `attributes::entry_label`) need entries.
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    for id in universe {
        if let Some(nlr) = nlrs.get(*id) {
            for e in nlr.elements() {
                if let Element::Loop { body, .. } = e {
                    labels
                        .entry(body.0)
                        .or_insert_with(|| canonical_loop_label(&table, *body, &name));
                }
            }
        }
    }

    let shift = |id: LoopId| LoopId(id.0 + LOOP_TOKEN_BASE);
    let _s = stage(rec, "fleet_mine");
    par_map_obs(universe, threads, rec, "fleet_mine", |_i, id| {
        let nlr = nlrs.get(*id).expect("aligned");
        let symbols: &[u32] = aligned
            .traces
            .iter()
            .find(|t| t.id == *id)
            .map(|t| t.symbols.as_slice())
            .unwrap_or(&[]);
        let raw = mine(symbols, &nlr.remap_loops(&shift), params.attrs, &name);
        let mut agg: BTreeMap<String, f64> = BTreeMap::new();
        for (key, w) in raw {
            *agg.entry(rewrite_label(&key, &labels)).or_insert(0.0) += w;
        }
        agg.into_iter().collect()
    })
}

/// The registry-independent canonical label of a loop body:
/// `L#<hash>` over the structural rendering through symbol *names*
/// (`Sym` → name, nested `Loop` → `[body]^count`). Two runs folding
/// the same loop shape agree on this label whatever their interning
/// orders were.
fn canonical_loop_label<F: Fn(u32) -> String>(table: &LoopTable, id: LoopId, name: &F) -> String {
    let mut rendered = String::new();
    render_body(table, id, name, &mut rendered);
    format!("L#{:016x}", fold64(fnv128(rendered.as_bytes())))
}

fn render_body<F: Fn(u32) -> String>(table: &LoopTable, id: LoopId, name: &F, out: &mut String) {
    for (i, &e) in table.body(id).iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match e {
            Element::Sym(s) => out.push_str(&name(s)),
            Element::Loop { body, count } => {
                out.push('[');
                render_body(table, body, name, out);
                out.push_str(&format!("]^{count}"));
            }
        }
    }
}

/// 128-bit FNV-1a.
fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn fold64(h: u128) -> u64 {
    (h ^ (h >> 64)) as u64
}

/// Rewrite shifted loop tokens (`L<n>` with `n ≥ LOOP_TOKEN_BASE`)
/// inside a mined attribute name to their canonical labels. Composite
/// labels (`a→b` doubles, `a⇒b` caller/callee) are split on their
/// separators and each segment rewritten independently.
fn rewrite_label(label: &str, labels: &BTreeMap<u32, String>) -> String {
    let mut out = String::with_capacity(label.len());
    let mut token = String::new();
    let flush = |token: &mut String, out: &mut String| {
        if let Some(canon) = shifted_loop_token(token).and_then(|n| labels.get(&n)) {
            out.push_str(canon);
        } else {
            out.push_str(token);
        }
        token.clear();
    };
    for c in label.chars() {
        if c == '→' || c == '⇒' {
            flush(&mut token, &mut out);
            out.push(c);
        } else {
            token.push(c);
        }
    }
    flush(&mut token, &mut out);
    out
}

/// If `token` is `L<n>` with `n ≥ LOOP_TOKEN_BASE`, the original
/// (unshifted) loop id.
fn shifted_loop_token(token: &str) -> Option<u32> {
    let digits = token.strip_prefix('L')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let n: u32 = digits.parse().ok()?;
    n.checked_sub(LOOP_TOKEN_BASE)
}

/// Weighted Jaccard of two name-sorted attribute lists by merge-join:
/// `Σ min / Σ max` over the name union, accumulated in name order.
/// Matches [`fca::weighted_jaccard`] semantics (absent attribute =
/// weight 0; two empty sets are perfectly similar) while being a pure
/// function of the two lists — no shared interning order involved.
fn pair_jaccard(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut num, mut den) = (0.0f64, 0.0f64);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((ka, wa)), Some((kb, wb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Equal => {
                    num += wa.min(*wb);
                    den += wa.max(*wb);
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    den += *wa;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    den += *wb;
                    j += 1;
                }
            },
            (Some((_, wa)), None) => {
                den += *wa;
                i += 1;
            }
            (None, Some((_, wb))) => {
                den += *wb;
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn al(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, w)| (k.to_string(), *w)).collect()
    }

    #[test]
    fn pair_jaccard_matches_weighted_jaccard_semantics() {
        // Identical sets → 1, empty pair → 1, disjoint → 0.
        let a = al(&[("a", 2.0), ("b", 1.0)]);
        assert_eq!(pair_jaccard(&a, &a), 1.0);
        assert_eq!(pair_jaccard(&[], &[]), 1.0);
        assert_eq!(pair_jaccard(&a, &al(&[("c", 3.0)])), 0.0);
        // min/max over the union: (min(2,1)) / (max(2,1)+1) = 1/3.
        let b = al(&[("a", 1.0)]);
        assert!((pair_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        // Symmetric to the bit.
        assert_eq!(
            pair_jaccard(&a, &b).to_bits(),
            pair_jaccard(&b, &a).to_bits()
        );
    }

    #[test]
    fn loop_token_rewrite_handles_composites() {
        let mut labels = BTreeMap::new();
        labels.insert(0u32, "L#cafe".to_string());
        labels.insert(3u32, "L#beef".to_string());
        let base = LOOP_TOKEN_BASE;
        assert_eq!(
            rewrite_label(&format!("L{base}"), &labels),
            "L#cafe".to_string()
        );
        assert_eq!(
            rewrite_label(&format!("MPI_Send→L{}", base + 3), &labels),
            "MPI_Send→L#beef"
        );
        assert_eq!(rewrite_label(&format!("⊤⇒L{base}"), &labels), "⊤⇒L#cafe");
        // Un-shifted tokens are function names, left alone.
        assert_eq!(rewrite_label("L5", &labels), "L5");
        assert_eq!(rewrite_label("MPI_Send", &labels), "MPI_Send");
    }

    #[test]
    fn canonical_loop_labels_ignore_interning_order() {
        // Same loop body content under two different symbol numberings
        // must hash to the same label.
        let mut ta = LoopTable::new();
        let mut tb = LoopTable::new();
        let inner_a = ta.intern(vec![Element::Sym(1), Element::Sym(2)]);
        let outer_a = ta.intern(vec![
            Element::Sym(0),
            Element::Loop {
                body: inner_a,
                count: 3,
            },
        ]);
        let inner_b = tb.intern(vec![Element::Sym(7), Element::Sym(9)]);
        let outer_b = tb.intern(vec![
            Element::Sym(5),
            Element::Loop {
                body: inner_b,
                count: 3,
            },
        ]);
        let name_a = |s: u32| ["x", "send", "recv"][s as usize].to_string();
        let name_b = |s: u32| match s {
            5 => "x".to_string(),
            7 => "send".to_string(),
            _ => "recv".to_string(),
        };
        assert_eq!(
            canonical_loop_label(&ta, outer_a, &name_a),
            canonical_loop_label(&tb, outer_b, &name_b)
        );
        // A different trip count is a different label.
        let outer_c = ta.intern(vec![
            Element::Sym(0),
            Element::Loop {
                body: inner_a,
                count: 4,
            },
        ]);
        assert_ne!(
            canonical_loop_label(&ta, outer_a, &name_a),
            canonical_loop_label(&ta, outer_c, &name_a)
        );
    }

    #[test]
    fn misaligned_and_duplicate_are_diagnosed() {
        let err = FleetError::Misaligned {
            run: "b".into(),
            missing: vec![TraceId::master(2)],
            extra: vec![],
        };
        let msg = err.to_string();
        assert!(msg.contains("run `b`"), "{msg}");
        assert!(msg.contains("missing [2.0]"), "{msg}");
        let dup = FleetError::DuplicateRun("a".into()).to_string();
        assert!(dup.contains("duplicate run name `a`"), "{dup}");
    }
}
