//! The reqcheck pre-pass: MPI request-lifecycle and
//! collective-consistency analysis before any diffing.
//!
//! [`reqcheck_set`] runs the RQ001–RQ005 rule families (see the
//! `dt-reqcheck` crate) over one execution's recorded traces, with
//! **byte-identical diagnostics for every thread count and domain**:
//! per-trace request facts fan out through [`crate::sync::par_map`]
//! (whose output is input-ordered), the rule evaluation itself is a
//! pure function of those facts, and the report sorts canonically.
//!
//! [`crate::PipelineOptions::req`] threads the pass through the diff
//! pipeline: `Warn` attaches the reports to the [`crate::DiffRun`],
//! `Deny` makes [`crate::pipeline::try_diff_runs_hb_opts`] refuse to
//! diff when any error-severity diagnostic fires.

use crate::lint::{build_raw_nlrs, LintDomain, RawTrace};
use crate::sync::{effective_threads, par_map};
use dt_obs::Recorder;
use dt_reqcheck::compressed::Summarizer;
use dt_reqcheck::{analyze, expanded, ReqReport, ReqVocab, TraceReqFacts};
use dt_trace::{Trace, TraceSet};
use std::fmt;

/// Configuration for one reqcheck pass.
#[derive(Debug, Clone)]
pub struct ReqOptions {
    /// Worker threads (same convention as
    /// [`crate::PipelineOptions::threads`]: `1` sequential, `0` all
    /// cores).
    pub threads: usize,
    /// Implementation family for the per-trace request facts. Both
    /// produce the same facts (property-tested in `dt-reqcheck`); the
    /// compressed domain folds NLR terms without expansion, flat in
    /// loop repetition count.
    pub domain: LintDomain,
    /// NLR window size used by the compressed domain.
    pub nlr_k: usize,
}

impl Default for ReqOptions {
    fn default() -> ReqOptions {
        ReqOptions {
            threads: 1,
            domain: LintDomain::Expanded,
            nlr_k: 10,
        }
    }
}

/// Analyze one execution's traces for request-lifecycle and
/// collective-consistency defects. See the module docs for the
/// determinism guarantees.
pub fn reqcheck_set(set: &TraceSet, opts: &ReqOptions) -> ReqReport {
    reqcheck_set_rec(set, opts, &dt_obs::NOOP)
}

/// [`reqcheck_set`] reporting counters into `rec`: `reqcheck_folds`
/// counts compressed-domain term folds (the evidence that no expansion
/// happened). Instrumentation is observational only — the report is
/// byte-identical whatever recorder is passed.
pub fn reqcheck_set_rec(set: &TraceSet, opts: &ReqOptions, rec: &dyn Recorder) -> ReqReport {
    let vocab = ReqVocab::build(&set.registry);
    let traces: Vec<&Trace> = set.iter().collect();
    let threads = effective_threads(opts.threads, traces.len().max(1));
    let facts: Vec<TraceReqFacts> = match opts.domain {
        LintDomain::Expanded => par_map(&traces, threads, |_, t| {
            expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab)
        }),
        LintDomain::Compressed => {
            let raw: Vec<RawTrace> = traces
                .iter()
                .map(|t| RawTrace {
                    id: t.id,
                    symbols: t.to_symbols(),
                    truncated: t.truncated,
                })
                .collect();
            let (nlrs, table) = build_raw_nlrs(&raw, opts.nlr_k, threads);
            if rec.enabled() {
                rec.add("reqcheck_folds", traces.len() as u64);
            }
            par_map(&traces, threads, |_, t| {
                let term = nlrs.get(t.id).expect("term built for every trace");
                let mut s = Summarizer::new(&table, &vocab);
                s.summarize(t.id, term, t.truncated)
            })
        }
    };
    analyze(&facts)
}

/// The attached results of the reqcheck pre-pass, kept on the
/// [`crate::DiffRun`] when [`crate::PipelineOptions::req`] is `Warn`
/// (or a passing `Deny`).
#[derive(Debug, Clone)]
pub struct ReqPrePass {
    /// Report for the normal execution.
    pub normal: ReqReport,
    /// Report for the faulty execution.
    pub faulty: ReqReport,
}

impl ReqPrePass {
    /// Run the pass over both executions of a diff.
    pub fn run(normal: &TraceSet, faulty: &TraceSet, opts: &ReqOptions) -> ReqPrePass {
        ReqPrePass {
            normal: reqcheck_set(normal, opts),
            faulty: reqcheck_set(faulty, opts),
        }
    }
}

/// Req reports for both executions of a diff, returned when
/// [`crate::PipelineOptions::req`] is `Deny` and an error fired.
#[derive(Debug, Clone)]
pub struct ReqFailure {
    /// Report for the normal execution.
    pub normal: ReqReport,
    /// Report for the faulty execution.
    pub faulty: ReqReport,
}

impl fmt::Display for ReqFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reqcheck gate denied: {} error(s) in the normal run, {} in the faulty run",
            self.normal.error_count(),
            self.faulty.error_count()
        )
    }
}

impl std::error::Error for ReqFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::{FunctionRegistry, TraceCollector, TraceId};
    use std::sync::Arc;

    /// A two-process corpus whose rank `leaky` posts one request it
    /// never waits on.
    fn corpus(leaky: Option<u32>) -> TraceSet {
        let registry = Arc::new(FunctionRegistry::new());
        let collector = TraceCollector::shared(registry);
        for p in 0..2u32 {
            let tr = collector.tracer(TraceId::master(p));
            for _ in 0..20 {
                tr.leaf("MPI_Isend");
                tr.leaf("compute");
                tr.leaf("MPI_Wait");
            }
            if leaky == Some(p) {
                tr.leaf("MPI_Isend");
                tr.leaf("mpi_req_pending@MPI_Isend:dst=1,tag=7");
            }
            tr.leaf("MPI_Finalize");
            tr.finish();
        }
        collector.into_trace_set()
    }

    #[test]
    fn both_domains_agree_byte_for_byte() {
        let set = corpus(Some(0));
        let e = reqcheck_set(&set, &ReqOptions::default());
        let c = reqcheck_set(
            &set,
            &ReqOptions {
                domain: LintDomain::Compressed,
                ..ReqOptions::default()
            },
        );
        assert!(!e.is_clean());
        assert_eq!(e.render_text(), c.render_text());
        assert_eq!(e.render_json(), c.render_json());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let set = corpus(Some(1));
        for domain in [LintDomain::Expanded, LintDomain::Compressed] {
            let base = reqcheck_set(
                &set,
                &ReqOptions {
                    threads: 1,
                    domain,
                    ..ReqOptions::default()
                },
            );
            for threads in [2usize, 0] {
                let got = reqcheck_set(
                    &set,
                    &ReqOptions {
                        threads,
                        domain,
                        ..ReqOptions::default()
                    },
                );
                assert_eq!(
                    base.render_text(),
                    got.render_text(),
                    "{domain:?}/{threads}"
                );
                assert_eq!(
                    base.render_json(),
                    got.render_json(),
                    "{domain:?}/{threads}"
                );
            }
        }
    }

    #[test]
    fn prepass_pairs_both_executions() {
        let pre = ReqPrePass::run(&corpus(None), &corpus(Some(0)), &ReqOptions::default());
        assert!(pre.normal.is_clean(), "{}", pre.normal.render_text());
        assert!(!pre.faulty.is_clean());
        let failure = ReqFailure {
            normal: pre.normal,
            faulty: pre.faulty,
        };
        let msg = failure.to_string();
        assert!(
            msg.starts_with("reqcheck gate denied: 0 error(s) in the normal run,"),
            "{msg}"
        );
    }

    #[test]
    fn compressed_domain_records_fold_counter() {
        let set = corpus(Some(0));
        let rec = dt_obs::MetricsRecorder::new();
        let _ = reqcheck_set_rec(
            &set,
            &ReqOptions {
                domain: LintDomain::Compressed,
                ..ReqOptions::default()
            },
            &rec,
        );
        let m = rec.finish("reqcheck", 1);
        assert!(
            m.counters
                .iter()
                .any(|(k, v)| k == "reqcheck_folds" && *v == 2),
            "{:?}",
            m.counters
        );
    }
}
