//! Single-execution outlier analysis — the paper's §II-A remark that
//! "many types of faults may be apparent just by analyzing JSM_faulty:
//! for instance, processes whose execution got truncated will look
//! highly dissimilar to those that terminated normally. In those use
//! cases … the B-score based ranking can then be made on JSM_faulty
//! directly."
//!
//! [`analyze_single`] clusters one execution's traces and reports the
//! *outlier clusters*: the smallest flat clusters, which in a mostly
//! homogeneous SPMD job are the aberrant threads. No reference
//! execution is needed — this is the entry point when no "last known
//! good" run exists.

use crate::pipeline::{analyze_aligned_rec, AnalysisRun, Params, PipelineOptions};
use cluster::fcluster_maxclust;
use dt_obs::{stage, Recorder};
use dt_trace::{TraceId, TraceSet};
use nlr::LoopTable;

/// The result of single-run outlier analysis.
#[derive(Debug)]
pub struct SingleRunReport {
    /// The underlying analysis (lattice, JSM, dendrogram).
    pub run: AnalysisRun,
    /// Flat clusters at the chosen granularity, largest first; each is
    /// a set of trace IDs.
    pub clusters: Vec<Vec<TraceId>>,
    /// Members of the smallest cluster(s) — the outliers.
    pub outliers: Vec<TraceId>,
}

/// Cluster one execution's traces into `k` flat clusters and surface
/// the outliers. `k = 0` picks the granularity automatically: the
/// largest `k ≤ 4` whose smallest cluster is a strict minority
/// (falling back to 2).
pub fn analyze_single(set: &TraceSet, params: &Params, k: usize) -> SingleRunReport {
    analyze_single_rec(set, params, k, &dt_obs::NOOP)
}

/// [`analyze_single`] reporting stage spans and counters into `rec`.
/// Observational only — the report is identical whatever recorder is
/// passed.
pub fn analyze_single_rec(
    set: &TraceSet,
    params: &Params,
    k: usize,
    rec: &dyn Recorder,
) -> SingleRunReport {
    analyze_single_opts_rec(set, params, k, &PipelineOptions::default(), rec)
}

/// [`analyze_single_rec`] with explicit execution options (threads,
/// analysis cache). Like every `_opts` entry point, options change how
/// fast the report is computed, never what it says.
pub fn analyze_single_opts_rec(
    set: &TraceSet,
    params: &Params,
    k: usize,
    opts: &PipelineOptions,
    rec: &dyn Recorder,
) -> SingleRunReport {
    let mut table = LoopTable::new();
    let ids = set.ids();
    let run = analyze_aligned_rec(set, params, &mut table, &ids, opts, rec);
    if rec.enabled() {
        rec.add("loops_interned", table.len() as u64);
    }
    let _s = stage(rec, "cluster");
    let n = run.ids.len();
    let k = if k == 0 {
        pick_k(&run, n)
    } else {
        k.clamp(1, n.max(1))
    };
    let labels = fcluster_maxclust(&run.dendrogram, k);
    let mut clusters: Vec<Vec<TraceId>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        clusters[l].push(run.ids[i]);
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let min_len = clusters.last().map(|c| c.len()).unwrap_or(0);
    let outliers: Vec<TraceId> = clusters
        .iter()
        .filter(|c| c.len() == min_len && c.len() < n)
        .flatten()
        .copied()
        .collect();
    SingleRunReport {
        run,
        clusters,
        outliers,
    }
}

fn pick_k(run: &AnalysisRun, n: usize) -> usize {
    if n < 2 {
        return 1;
    }
    // Smallest granularity whose minority cluster is strict — coarser
    // cuts keep homogeneous majorities together (zero-distance merges
    // split arbitrarily at finer cuts).
    for k in 2..=4.min(n) {
        let labels = fcluster_maxclust(&run.dendrogram, k);
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l] += 1;
        }
        let min = *sizes.iter().min().unwrap();
        if min * 2 < n {
            return k;
        }
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrConfig, AttrKind, FreqMode};
    use crate::filter::FilterConfig;
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;

    fn params() -> Params {
        Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        )
    }

    /// 7 healthy ranks reach Finalize; one truncated rank does not.
    fn truncated_run() -> TraceSet {
        let registry = Arc::new(FunctionRegistry::new());
        crate::record_masters(&registry, 8, |p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..4 {
                tr.leaf("MPI_Send");
                tr.leaf("MPI_Recv");
            }
            if p != 5 {
                tr.leaf("MPI_Finalize");
            } else {
                // Rank 5 hung in an extra recv and was killed.
                let f = tr.intern("MPI_Recv");
                tr.call(f);
                tr.poison();
            }
        })
    }

    #[test]
    fn truncated_rank_is_the_outlier() {
        let report = analyze_single(&truncated_run(), &params(), 0);
        assert_eq!(report.outliers, vec![TraceId::master(5)]);
        assert_eq!(report.clusters[0].len(), 7);
    }

    #[test]
    fn homogeneous_run_yields_no_strict_outlier_majority() {
        // All identical traces: any cut splits arbitrarily; outliers
        // may exist but clusters sizes are as even as possible — and
        // with k forced to 1 there are none.
        let registry = Arc::new(FunctionRegistry::new());
        let set = crate::record_masters(&registry, 4, |_p, tr| {
            tr.leaf("MPI_Init");
            tr.leaf("MPI_Finalize");
        });
        let report = analyze_single(&set, &params(), 1);
        assert!(report.outliers.is_empty());
        assert_eq!(report.clusters.len(), 1);
    }

    #[test]
    fn explicit_k_is_respected() {
        let report = analyze_single(&truncated_run(), &params(), 3);
        assert_eq!(report.clusters.len(), 3);
        let total: usize = report.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 8);
    }
}
