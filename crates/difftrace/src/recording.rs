//! Shared recording boilerplate.
//!
//! Almost every synthetic workload in this workspace records one
//! master trace per MPI rank: make a collector, hand each rank a
//! tracer, drive it, finish it, collect. [`record_masters`] is that
//! loop, written once.

use dt_trace::{FunctionRegistry, TraceCollector, TraceId, TraceSet, Tracer};
use std::sync::Arc;

/// Record one master trace per rank in `0..ranks` and collect them
/// into a [`TraceSet`].
///
/// `body` receives the rank number and its [`Tracer`]; the helper owns
/// the collector, calls [`Tracer::finish`] after each rank, and
/// returns the finished set. Ranks sharing `registry` across calls
/// produce comparable symbol streams (the usual normal/faulty pairing).
pub fn record_masters<F>(registry: &Arc<FunctionRegistry>, ranks: u32, mut body: F) -> TraceSet
where
    F: FnMut(u32, &Tracer),
{
    let collector = TraceCollector::shared(registry.clone());
    for p in 0..ranks {
        let tr = collector.tracer(TraceId::master(p));
        body(p, &tr);
        tr.finish();
    }
    collector.into_trace_set()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_one_master_trace_per_rank() {
        let registry = Arc::new(FunctionRegistry::new());
        let set = record_masters(&registry, 3, |p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..p {
                tr.leaf("MPI_Send");
            }
        });
        assert_eq!(set.iter().count(), 3);
        for (p, t) in set.iter().enumerate() {
            assert_eq!(t.id, TraceId::master(p as u32));
            // Each event pairs with a return: (1 + p) calls → 2(1+p).
            assert_eq!(t.events.len(), 2 * (1 + p));
        }
    }
}
