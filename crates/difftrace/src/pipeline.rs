//! The end-to-end DiffTrace pipeline for one parameter combination.
//!
//! # Parallel execution
//!
//! Every stage of an iteration can run on multiple threads via the
//! `_opts` entry points ([`analyze_aligned_opts`], [`analyze_opts`],
//! [`diff_runs_opts`]) and a [`PipelineOptions::threads`] knob — with
//! **byte-identical output** for every thread count. The only stage
//! whose naive parallelization would change output is NLR construction
//! (loop IDs are assigned in fold order, and IDs leak into attribute
//! names and rendered summaries); see [`nlr::SharedLoopTable`] for the
//! provisional-then-canonical renumbering that removes the schedule
//! from the result. All other stages (mining, JSM rows, JSM diff, row
//! scores) are pure per-item functions whose outputs are merged in a
//! fixed order. `threads == 1` short-circuits to the plain sequential
//! code path.

use crate::attributes::{mine, AttrConfig};
use crate::filter::{symbol_name, FilterConfig, FilteredSet, FilteredTrace};
use crate::hbcheck::{HbFailure, HbOptions, HbPrePass};
use crate::jsm::JsmMatrix;
use crate::lint::{lint_set, LintFailure, LintGate, LintOptions};
use crate::nlr_stage::NlrSet;
use crate::racecheck::{RaceFailure, RaceOptions, RacePrePass};
use crate::reqcheck::{ReqFailure, ReqOptions, ReqPrePass};
use crate::sync::{effective_threads, join};
use cluster::{bscore, linkage, CondensedMatrix, Dendrogram, Method};
use dt_cache::Cache;
use dt_obs::{stage, Recorder};
use dt_trace::{TraceId, TraceSet};
use fca::{ConceptLattice, FormalContext};
use nlr::{LoopTable, SharedLoopTable};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Execution options orthogonal to the analysis [`Params`]: they may
/// change how fast an answer is computed, never which answer.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads for the parallel stages. `1` (the default) is the
    /// exact sequential path; `0` means all available parallelism; any
    /// other value is taken literally.
    pub threads: usize,
    /// Whether the tracelint pre-pass runs before diffing, and whether
    /// its findings stop the pipeline (see [`crate::lint::LintGate`]).
    /// Applies to [`diff_runs_opts`] / [`try_diff_runs_opts`]; the
    /// single-execution entry points never lint.
    pub lint: LintGate,
    /// Whether the hbcheck pre-pass (wait-for-graph deadlock detection,
    /// race pairs, hang triage — see [`crate::hbcheck`]) runs before
    /// diffing. It needs the executions' happens-before logs, so it
    /// only applies to [`try_diff_runs_hb_opts`]; entry points without
    /// logs ignore this gate.
    pub hb: LintGate,
    /// Whether the racecheck pre-pass (shared-memory data races and
    /// lock-order inversions over the `omp_*@` marker vocabulary — see
    /// [`crate::racecheck`]) runs before diffing. Unlike `hb` it needs
    /// no happens-before log, so it applies to every diff entry point.
    pub race: LintGate,
    /// Whether the reqcheck pre-pass (MPI request-lifecycle balance and
    /// collective-consistency checks — see [`crate::reqcheck`]) runs
    /// before diffing. Like `race` it needs no happens-before log, so
    /// it applies to every diff entry point.
    pub req: LintGate,
    /// Content-addressed analysis cache ([`dt_cache::Cache`]), shared
    /// across pipeline runs (e.g. every cell of a sweep). Like the
    /// other options it is observational: a cached analysis is
    /// byte-identical to a cold one at any thread count (enforced by
    /// the cache-equivalence harness).
    pub cache: Option<Arc<Cache>>,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            threads: 1,
            lint: LintGate::Off,
            hb: LintGate::Off,
            race: LintGate::Off,
            req: LintGate::Off,
            cache: None,
        }
    }
}

impl PipelineOptions {
    /// Options with the given thread count.
    pub fn with_threads(threads: usize) -> PipelineOptions {
        PipelineOptions {
            threads,
            ..PipelineOptions::default()
        }
    }
}

/// One point of the parameter space (the dashed box in Figure 1): the
/// front-end filter (with its NLR K), the FCA attributes, and the
/// linkage method.
#[derive(Debug, Clone)]
pub struct Params {
    /// Front-end filter.
    pub filter: FilterConfig,
    /// Attribute mining configuration.
    pub attrs: AttrConfig,
    /// Linkage for hierarchical clustering ("ward" in all the paper's
    /// reported tables).
    pub linkage: Method,
}

impl Params {
    /// Ward-linkage params.
    pub fn new(filter: FilterConfig, attrs: AttrConfig) -> Params {
        Params {
            filter,
            attrs,
            linkage: Method::Ward,
        }
    }
}

/// The analysis artifacts of a single execution.
#[derive(Debug)]
pub struct AnalysisRun {
    /// The function-name table of the analyzed execution.
    pub registry: std::sync::Arc<dt_trace::FunctionRegistry>,
    /// Trace IDs in matrix/object order.
    pub ids: Vec<TraceId>,
    /// NLR summaries.
    pub nlrs: NlrSet,
    /// The mined formal context.
    pub context: FormalContext,
    /// Incrementally built concept lattice.
    pub lattice: ConceptLattice,
    /// Pairwise Jaccard similarity matrix.
    pub jsm: JsmMatrix,
    /// The dendrogram of `1 − JSM` under the configured linkage.
    pub dendrogram: Dendrogram,
}

/// Analyze one execution under `params`, interning loops into the
/// shared `table`. `id_universe` fixes the object set (pass the union
/// of normal+faulty IDs when analyzing a pair so the matrices align;
/// traces missing from `set` become empty objects — e.g. threads a
/// fault prevented from spawning).
pub fn analyze_aligned(
    set: &TraceSet,
    params: &Params,
    table: &mut LoopTable,
    id_universe: &[TraceId],
) -> AnalysisRun {
    analyze_aligned_opts(set, params, table, id_universe, &PipelineOptions::default())
}

/// [`analyze_aligned`] with explicit execution options. Output is
/// byte-identical for every `opts.threads` value (see the module docs).
pub fn analyze_aligned_opts(
    set: &TraceSet,
    params: &Params,
    table: &mut LoopTable,
    id_universe: &[TraceId],
    opts: &PipelineOptions,
) -> AnalysisRun {
    analyze_aligned_rec(set, params, table, id_universe, opts, &dt_obs::NOOP)
}

/// [`analyze_aligned_opts`] reporting stage spans and counters into
/// `rec`. Instrumentation is observational only: the analysis result
/// is byte-identical whatever recorder is passed (asserted by the
/// parallel-equivalence harness).
pub fn analyze_aligned_rec(
    set: &TraceSet,
    params: &Params,
    table: &mut LoopTable,
    id_universe: &[TraceId],
    opts: &PipelineOptions,
    rec: &dyn Recorder,
) -> AnalysisRun {
    let threads = effective_threads(opts.threads, id_universe.len());
    let aligned = {
        let _s = stage(rec, "filter");
        align_filtered(set, params, id_universe)
    };
    record_filter_counters(rec, set, &aligned, id_universe);
    let keys: Option<Vec<u128>> = opts
        .cache
        .as_ref()
        .map(|_| nlr_cache_keys(set, &aligned, params.filter.nlr_k));
    let (nlrs, folds) = {
        let _s = stage(rec, "nlr");
        build_nlrs(
            &aligned,
            params.filter.nlr_k,
            table,
            threads,
            opts.cache.as_deref(),
            keys.as_deref(),
        )
    };
    record_nlr_counters(rec, &nlrs, id_universe, folds);
    let cache_keys = opts.cache.as_deref().zip(keys.as_deref());
    finish_run(
        set,
        params,
        &aligned,
        nlrs,
        id_universe,
        threads,
        rec,
        cache_keys,
    )
}

/// Build the NLR summaries for `aligned`, dispatching over thread count
/// and cache availability. Returns the summaries plus the number of
/// actual NLR-builder invocations (`folds` — lower than the trace count
/// when the cache is warm). Shared by the pairwise pipeline and the
/// N-way fleet fold; every arm produces byte-identical summaries.
pub(crate) fn build_nlrs(
    aligned: &FilteredSet,
    k: usize,
    table: &mut LoopTable,
    threads: usize,
    cache: Option<&Cache>,
    keys: Option<&[u128]>,
) -> (NlrSet, u64) {
    match (cache, keys, threads) {
        (Some(cache), Some(keys), ..=1) => NlrSet::build_cached(aligned, k, table, cache, keys),
        (Some(cache), Some(keys), _) => {
            let shared = SharedLoopTable::from_table(table);
            let (prov, orders, folds) =
                NlrSet::build_shared_cached(aligned, k, &shared, threads, cache, keys);
            let map = shared.canonicalize_into(orders.into_iter().flatten(), table);
            (prov.remap(&map), folds)
        }
        (_, _, ..=1) => (
            NlrSet::build(aligned, k, table),
            aligned.traces.len() as u64,
        ),
        _ => {
            // Parallel NLR build: provisional IDs into a concurrent table,
            // then a sequential replay of the recorded fold orders to
            // restore the exact sequential numbering (see nlr::shared).
            let shared = SharedLoopTable::from_table(table);
            let (prov, orders) = NlrSet::build_shared(aligned, k, &shared, threads);
            let map = shared.canonicalize_into(orders.into_iter().flatten(), table);
            (prov.remap(&map), aligned.traces.len() as u64)
        }
    }
}

/// The per-trace NLR cache keys for `aligned`, in its trace order
/// (which is the `id_universe` order — see [`align_filtered`]).
pub(crate) fn nlr_cache_keys(set: &TraceSet, aligned: &FilteredSet, k: usize) -> Vec<u128> {
    aligned
        .traces
        .iter()
        .map(|t| dt_cache::nlr_key(k, &t.symbols, |s| symbol_name(&set.registry, s)))
        .collect()
}

/// Tally the front-end filter's work into `rec` (no-op when disabled).
fn record_filter_counters(
    rec: &dyn Recorder,
    set: &TraceSet,
    aligned: &FilteredSet,
    id_universe: &[TraceId],
) {
    if !rec.enabled() {
        return;
    }
    rec.add("traces", id_universe.len() as u64);
    rec.add(
        "events_total",
        set.iter().map(|t| t.events.len() as u64).sum(),
    );
    rec.add(
        "events_kept",
        aligned.traces.iter().map(|t| t.symbols.len() as u64).sum(),
    );
}

/// Tally NLR sizes into `rec` (no-op when disabled). `folds` counts
/// actual NLR-builder invocations — with a warm cache it is lower than
/// the trace count, which is how the bench and CI assert that caching
/// skipped work without comparing wall-clock.
fn record_nlr_counters(rec: &dyn Recorder, nlrs: &NlrSet, id_universe: &[TraceId], folds: u64) {
    if !rec.enabled() {
        return;
    }
    rec.add("nlr_folds", folds);
    rec.add(
        "nlr_terms",
        id_universe
            .iter()
            .filter_map(|id| nlrs.get(*id))
            .map(|n| n.elements().len() as u64)
            .sum(),
    );
}

/// Per-trace content fingerprints of one execution under `filter`: for
/// each trace (in [`TraceSet::ids`] order) the dt-cache NLR content
/// key of its filtered symbol stream, computed over a *name-canonical*
/// renumbering of the symbols. Registry ids are an artifact of
/// interning order — mpisim ranks are real threads, so two executions
/// of the identical program intern the same names under permuted ids.
/// Renumbering by sorted distinct name before keying makes the
/// fingerprint a pure function of what the trace *says*, so a
/// re-recorded identical workload fingerprints identically while any
/// behavioural change (different calls, different loop content) still
/// changes the key. `difftrace baseline` persists these as the
/// canonical identity of a recorded run.
pub fn content_fingerprints(set: &TraceSet, filter: &FilterConfig) -> Vec<(TraceId, u128)> {
    let filtered = filter.apply(set);
    filtered
        .traces
        .iter()
        .map(|t| {
            let mut names: std::collections::BTreeMap<u32, String> =
                std::collections::BTreeMap::new();
            for &s in &t.symbols {
                names
                    .entry(s)
                    .or_insert_with(|| symbol_name(&set.registry, s));
            }
            let mut sorted: Vec<&String> = names.values().collect();
            sorted.sort();
            sorted.dedup();
            let canon_of = |s: u32| {
                let name = &names[&s];
                sorted.binary_search(&name).expect("name present") as u32
            };
            let canon: Vec<u32> = t.symbols.iter().map(|&s| canon_of(s)).collect();
            let key = dt_cache::nlr_key(filter.nlr_k, &canon, |c| sorted[c as usize].clone());
            (t.id, key)
        })
        .collect()
}

/// Filter `set` and align the result to `id_universe` order; traces
/// missing from `set` become empty objects.
pub(crate) fn align_filtered(
    set: &TraceSet,
    params: &Params,
    id_universe: &[TraceId],
) -> FilteredSet {
    let filtered = params.filter.apply(set);
    let by_id: BTreeMap<TraceId, FilteredTrace> =
        filtered.traces.into_iter().map(|t| (t.id, t)).collect();
    FilteredSet {
        traces: id_universe
            .iter()
            .map(|&id| {
                by_id.get(&id).cloned().unwrap_or(FilteredTrace {
                    id,
                    symbols: Vec::new(),
                    truncated: false,
                })
            })
            .collect(),
    }
}

/// The back half of an analysis — attribute mining, formal context,
/// lattice, JSM, dendrogram — given the (already canonical) summaries.
/// Mining and JSM rows are pure per-trace/per-row functions and fan out
/// across `threads`; the context is assembled sequentially in
/// `id_universe` order so object/attribute numbering never depends on
/// the schedule. `cache_keys` (the per-trace NLR keys, in `id_universe`
/// order) enables attribute-set memoization: mined labels embed global
/// loop IDs, so the attr key covers the summary's element sequence too
/// (see [`dt_cache::attr_key`]).
#[allow(clippy::too_many_arguments)]
fn finish_run(
    set: &TraceSet,
    params: &Params,
    aligned: &FilteredSet,
    nlrs: NlrSet,
    id_universe: &[TraceId],
    threads: usize,
    rec: &dyn Recorder,
    cache_keys: Option<(&Cache, &[u128])>,
) -> AnalysisRun {
    let name = |s: u32| symbol_name(&set.registry, s);
    let attr_code = params.attrs.to_string();
    let mined: Vec<Vec<(String, f64)>> = {
        let _s = stage(rec, "mine");
        crate::sync::par_map_obs(id_universe, threads, rec, "mine", |i, id| {
            let nlr = nlrs.get(*id).expect("aligned");
            let symbols: &[u32] = aligned
                .traces
                .iter()
                .find(|t| t.id == *id)
                .map(|t| t.symbols.as_slice())
                .unwrap_or(&[]);
            if let Some((cache, keys)) = cache_keys {
                let akey = dt_cache::attr_key(keys[i], &attr_code, nlr.elements());
                if let Some(v) = cache.get_attrs(akey) {
                    return (*v).clone();
                }
                let fresh = mine(symbols, nlr, params.attrs, &name);
                cache.put_attrs(akey, Arc::new(fresh.clone()));
                return fresh;
            }
            mine(symbols, nlr, params.attrs, &name)
        })
    };
    if rec.enabled() {
        rec.add(
            "attributes_mined",
            mined.iter().map(|v| v.len() as u64).sum(),
        );
    }
    let (context, lattice) = {
        let _s = stage(rec, "lattice");
        let mut context = FormalContext::new();
        for (id, attrs) in id_universe.iter().zip(&mined) {
            context.add_object(&id.to_string(), attrs.iter().map(|(k, w)| (k.as_str(), *w)));
        }
        let lattice = ConceptLattice::from_context(&context);
        (context, lattice)
    };
    if rec.enabled() {
        rec.add("concepts", lattice.concepts().len() as u64);
    }
    let jsm = {
        let _s = stage(rec, "jsm");
        JsmMatrix::from_context_opts(&context, id_universe.to_vec(), threads)
    };
    if rec.enabled() {
        rec.add("jsm_cells", (jsm.len() * jsm.len()) as u64);
    }
    let dendrogram = {
        let _s = stage(rec, "linkage");
        linkage(&CondensedMatrix::from_similarity(&jsm.m), params.linkage)
    };
    AnalysisRun {
        registry: set.registry.clone(),
        ids: id_universe.to_vec(),
        nlrs,
        context,
        lattice,
        jsm,
        dendrogram,
    }
}

/// Analyze a single execution (object set = its own traces).
pub fn analyze(set: &TraceSet, params: &Params, table: &mut LoopTable) -> AnalysisRun {
    analyze_opts(set, params, table, &PipelineOptions::default())
}

/// [`analyze`] with explicit execution options.
pub fn analyze_opts(
    set: &TraceSet,
    params: &Params,
    table: &mut LoopTable,
    opts: &PipelineOptions,
) -> AnalysisRun {
    let ids = set.ids();
    analyze_aligned_opts(set, params, table, &ids, opts)
}

/// The result of diffing a normal and a faulty execution.
#[derive(Debug)]
pub struct DiffRun {
    /// The parameter combination used.
    pub params: Params,
    /// Analysis of the fault-free execution.
    pub normal: AnalysisRun,
    /// Analysis of the faulty execution.
    pub faulty: AnalysisRun,
    /// `|JSM_faulty − JSM_normal|`.
    pub jsm_d: JsmMatrix,
    /// B-score of the two hierarchical clusterings (see DESIGN.md).
    pub bscore: f64,
    /// Suspicious processes, most-affected first.
    pub suspicious_processes: Vec<u32>,
    /// Suspicious threads (`p.t`), most-affected first.
    pub suspicious_threads: Vec<TraceId>,
    /// The shared loop table (normal + faulty).
    pub table: LoopTable,
    /// Lint reports of the pre-pass (normal, faulty) when it ran
    /// ([`LintGate::Warn`], or a passing [`LintGate::Deny`]).
    pub lint: Option<(tracelint::LintReport, tracelint::LintReport)>,
    /// Happens-before reports when the hbcheck pre-pass ran
    /// ([`PipelineOptions::hb`] with logs passed to
    /// [`try_diff_runs_hb_opts`]). The faulty run's deadlock cycles
    /// annotate `diffNLR` views as the divergence cause.
    pub hb: Option<HbPrePass>,
    /// Race reports of the racecheck pre-pass (normal, faulty) when it
    /// ran ([`PipelineOptions::race`] at `Warn`, or a passing `Deny`).
    pub race: Option<RacePrePass>,
    /// Req reports of the reqcheck pre-pass (normal, faulty) when it
    /// ran ([`PipelineOptions::req`] at `Warn`, or a passing `Deny`).
    pub req: Option<ReqPrePass>,
}

/// Fraction of the maximum change score a process/thread must reach to
/// be listed as suspicious.
const SUSPECT_THRESHOLD: f64 = 0.3;
/// Maximum threads listed (the paper's tables show ≈6).
const MAX_THREADS_LISTED: usize = 6;

/// Run the full DiffTrace iteration on a (normal, faulty) pair.
pub fn diff_runs(normal: &TraceSet, faulty: &TraceSet, params: &Params) -> DiffRun {
    diff_runs_opts(normal, faulty, params, &PipelineOptions::default())
}

/// [`diff_runs`] with explicit execution options. With more than one
/// thread the normal and faulty analyses run **concurrently** against
/// one shared provisional loop table, then a single canonical replay
/// (normal's fold orders first, faulty's second — the sequential
/// interleaving) renumbers both; output is byte-identical to
/// `threads == 1`.
///
/// # Panics
///
/// Panics if `opts.lint` is [`LintGate::Deny`] and the pre-pass finds
/// an error; use [`try_diff_runs_opts`] to handle that case.
pub fn diff_runs_opts(
    normal: &TraceSet,
    faulty: &TraceSet,
    params: &Params,
    opts: &PipelineOptions,
) -> DiffRun {
    match try_diff_runs_opts(normal, faulty, params, opts) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// [`diff_runs_opts`], returning the denying pre-pass reports instead
/// of panicking when a [`LintGate::Deny`] gate refuses the inputs.
/// Without HB logs the hbcheck gate never runs, but the lint and
/// racecheck gates do.
pub fn try_diff_runs_opts(
    normal: &TraceSet,
    faulty: &TraceSet,
    params: &Params,
    opts: &PipelineOptions,
) -> Result<DiffRun, DiffDenied> {
    try_diff_runs_hb_opts(normal, faulty, None, params, opts)
}

/// A gated pre-pass refused to diff.
#[derive(Debug)]
pub enum DiffDenied {
    /// The tracelint gate tripped.
    Lint(LintFailure),
    /// The hbcheck gate tripped.
    Hb(HbFailure),
    /// The racecheck gate tripped.
    Race(RaceFailure),
    /// The reqcheck gate tripped.
    Req(ReqFailure),
}

impl std::fmt::Display for DiffDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffDenied::Lint(e) => e.fmt(f),
            DiffDenied::Hb(e) => e.fmt(f),
            DiffDenied::Race(e) => e.fmt(f),
            DiffDenied::Req(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DiffDenied {}

/// [`try_diff_runs_opts`] with the executions' happens-before logs:
/// when `hb_logs` is `Some` and [`PipelineOptions::hb`] is not `Off`,
/// the hbcheck pre-pass (deadlock cycles, orphan operations, races,
/// hang triage) runs over both runs before any diffing, its reports
/// attach to [`DiffRun::hb`], and `Deny` refuses to diff on any
/// error-severity finding.
pub fn try_diff_runs_hb_opts(
    normal: &TraceSet,
    faulty: &TraceSet,
    hb_logs: Option<(&dt_trace::hb::HbLog, &dt_trace::hb::HbLog)>,
    params: &Params,
    opts: &PipelineOptions,
) -> Result<DiffRun, DiffDenied> {
    try_diff_runs_hb_rec(normal, faulty, hb_logs, params, opts, &dt_obs::NOOP)
}

/// [`try_diff_runs_hb_opts`] reporting stage spans (pre-passes, filter,
/// NLR, mining, lattice, JSM, linkage, B-score, ranking) and counters
/// into `rec`. Instrumentation is observational only: the diff is
/// byte-identical whatever recorder is passed, at any thread count.
pub fn try_diff_runs_hb_rec(
    normal: &TraceSet,
    faulty: &TraceSet,
    hb_logs: Option<(&dt_trace::hb::HbLog, &dt_trace::hb::HbLog)>,
    params: &Params,
    opts: &PipelineOptions,
    rec: &dyn Recorder,
) -> Result<DiffRun, DiffDenied> {
    // The tracelint pre-pass, if gated on: broken traces produce
    // confusing diffs, so surface structural defects *before* spending
    // time on NLR/FCA/JSM.
    let lint = match opts.lint {
        LintGate::Off => None,
        LintGate::Warn | LintGate::Deny => {
            let _s = stage(rec, "pre/lint");
            let lopts = LintOptions::for_pipeline(params, opts.threads);
            let n = lint_set(normal, &lopts);
            let f = lint_set(faulty, &lopts);
            if opts.lint == LintGate::Deny && (n.has_errors() || f.has_errors()) {
                return Err(DiffDenied::Lint(LintFailure {
                    normal: n,
                    faulty: f,
                }));
            }
            Some((n, f))
        }
    };

    // The hbcheck pre-pass: a deadlocked or racy run diffs confusingly
    // (truncated traces everywhere), so name the semantic cause first.
    let hb = match (opts.hb, hb_logs) {
        (LintGate::Off, _) | (_, None) => None,
        (gate, Some((nhb, fhb))) => {
            let _s = stage(rec, "pre/hb");
            let hopts = HbOptions {
                threads: opts.threads,
                ..HbOptions::default()
            };
            let pre = HbPrePass::run((normal, nhb), (faulty, fhb), &hopts);
            if gate == LintGate::Deny && (pre.normal.has_errors() || pre.faulty.has_errors()) {
                return Err(DiffDenied::Hb(HbFailure {
                    normal: pre.normal,
                    faulty: pre.faulty,
                }));
            }
            Some(pre)
        }
    };

    // The racecheck pre-pass: shared-memory races corrupt the very
    // state whose divergence the diff is meant to localize, so name
    // them before any structural comparison. Needs no HB log.
    let race = match opts.race {
        LintGate::Off => None,
        gate @ (LintGate::Warn | LintGate::Deny) => {
            let _s = stage(rec, "pre/race");
            let ropts = RaceOptions {
                threads: opts.threads,
                ..RaceOptions::default()
            };
            let pre = RacePrePass::run(normal, faulty, &ropts);
            if gate == LintGate::Deny && (pre.normal.has_errors() || pre.faulty.has_errors()) {
                return Err(DiffDenied::Race(RaceFailure {
                    normal: pre.normal,
                    faulty: pre.faulty,
                }));
            }
            Some(pre)
        }
    };

    // The reqcheck pre-pass: a leaked request or divergent collective
    // signature means the executions were not even well-formed MPI, so
    // name that before attributing their divergence to the fault.
    let req = match opts.req {
        LintGate::Off => None,
        gate @ (LintGate::Warn | LintGate::Deny) => {
            let _s = stage(rec, "pre/req");
            let ropts = ReqOptions {
                threads: opts.threads,
                ..ReqOptions::default()
            };
            let pre = ReqPrePass::run(normal, faulty, &ropts);
            if gate == LintGate::Deny && (pre.normal.has_errors() || pre.faulty.has_errors()) {
                return Err(DiffDenied::Req(ReqFailure {
                    normal: pre.normal,
                    faulty: pre.faulty,
                }));
            }
            Some(pre)
        }
    };

    // Union of trace IDs: a fault may have killed threads before they
    // traced anything, or spawned extra ones.
    let mut ids: Vec<TraceId> = normal.ids();
    for id in faulty.ids() {
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids.sort();

    let threads = effective_threads(opts.threads, 2 * ids.len().max(1));
    let mut table = LoopTable::new();
    let (normal_run, faulty_run) = if threads <= 1 {
        let seq_opts = PipelineOptions {
            threads: 1,
            lint: LintGate::Off,
            hb: LintGate::Off,
            race: LintGate::Off,
            req: LintGate::Off,
            cache: opts.cache.clone(),
        };
        let n = analyze_aligned_rec(normal, params, &mut table, &ids, &seq_opts, rec);
        let f = analyze_aligned_rec(faulty, params, &mut table, &ids, &seq_opts, rec);
        (n, f)
    } else {
        // Each side gets half the workers; both interleave on the same
        // shared table, so every distinct loop body is interned once.
        let half = (threads / 2).max(1);
        let cache = opts.cache.as_deref();
        let (n_aligned, f_aligned) = {
            let _s = stage(rec, "filter");
            (
                align_filtered(normal, params, &ids),
                align_filtered(faulty, params, &ids),
            )
        };
        record_filter_counters(rec, normal, &n_aligned, &ids);
        record_filter_counters(rec, faulty, &f_aligned, &ids);
        let (n_keys, f_keys) = match cache {
            Some(_) => (
                Some(nlr_cache_keys(normal, &n_aligned, params.filter.nlr_k)),
                Some(nlr_cache_keys(faulty, &f_aligned, params.filter.nlr_k)),
            ),
            None => (None, None),
        };
        let (n_nlrs, f_nlrs) = {
            let _s = stage(rec, "nlr");
            let shared = SharedLoopTable::new();
            let k = params.filter.nlr_k;
            let build = |aligned: &FilteredSet, keys: &Option<Vec<u128>>| match (cache, keys) {
                (Some(c), Some(keys)) => {
                    NlrSet::build_shared_cached(aligned, k, &shared, half, c, keys)
                }
                _ => {
                    let (prov, orders) = NlrSet::build_shared(aligned, k, &shared, half);
                    let folds = aligned.traces.len() as u64;
                    (prov, orders, folds)
                }
            };
            let ((n_prov, n_orders, n_folds), (f_prov, f_orders, f_folds)) = join(
                true,
                || build(&n_aligned, &n_keys),
                || build(&f_aligned, &f_keys),
            );
            let map = shared.canonicalize_into(
                n_orders
                    .into_iter()
                    .flatten()
                    .chain(f_orders.into_iter().flatten()),
                &mut table,
            );
            let (n_nlrs, f_nlrs) = (n_prov.remap(&map), f_prov.remap(&map));
            record_nlr_counters(rec, &n_nlrs, &ids, n_folds);
            record_nlr_counters(rec, &f_nlrs, &ids, f_folds);
            (n_nlrs, f_nlrs)
        };
        join(
            true,
            || {
                let ck = cache.zip(n_keys.as_deref());
                finish_run(normal, params, &n_aligned, n_nlrs, &ids, half, rec, ck)
            },
            || {
                let ck = cache.zip(f_keys.as_deref());
                finish_run(faulty, params, &f_aligned, f_nlrs, &ids, half, rec, ck)
            },
        )
    };
    if rec.enabled() {
        rec.add("loops_interned", table.len() as u64);
    }
    let jsm_d = {
        let _s = stage(rec, "jsm_diff");
        faulty_run
            .jsm
            .diff_opts(&normal_run.jsm, threads)
            .expect("both analyses share one aligned id universe")
    };
    let b = {
        let _s = stage(rec, "bscore");
        bscore(&normal_run.dendrogram, &faulty_run.dendrogram)
    };

    let _rank = stage(rec, "rank");
    // Thread-level suspects: row sums of JSM_D.
    let mut thread_scores = jsm_d.row_scores_opts(threads);
    thread_scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let tmax = thread_scores.first().map(|x| x.1).unwrap_or(0.0);
    let suspicious_threads: Vec<TraceId> = thread_scores
        .iter()
        .filter(|(_, s)| tmax > 0.0 && *s >= SUSPECT_THRESHOLD * tmax)
        .take(MAX_THREADS_LISTED)
        .map(|(id, _)| *id)
        .collect();

    // Process-level: aggregate thread scores per rank.
    let mut proc_scores: BTreeMap<u32, f64> = BTreeMap::new();
    for (id, s) in &thread_scores {
        *proc_scores.entry(id.process).or_insert(0.0) += s;
    }
    let mut proc_scores: Vec<(u32, f64)> = proc_scores.into_iter().collect();
    proc_scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let pmax = proc_scores.first().map(|x| x.1).unwrap_or(0.0);
    let suspicious_processes: Vec<u32> = proc_scores
        .iter()
        .filter(|(_, s)| pmax > 0.0 && *s >= SUSPECT_THRESHOLD * pmax)
        .map(|(p, _)| *p)
        .collect();
    drop(_rank);

    Ok(DiffRun {
        params: params.clone(),
        normal: normal_run,
        faulty: faulty_run,
        jsm_d,
        bscore: b,
        suspicious_processes,
        suspicious_threads,
        table,
        lint,
        hb,
        race,
        req,
    })
}

impl DiffRun {
    /// The diffNLR view of trace `id` (normal vs faulty), cf. §II-F-1:
    /// `diffNLR(x) ≡ diffNLR(T_x, T'_x)`.
    pub fn diff_nlr(&self, id: TraceId) -> Option<crate::diffnlr::DiffNlr> {
        let n = self.normal.nlrs.get(id)?;
        let f = self.faulty.nlrs.get(id)?;
        // Render via the *normal* execution's registry-independent
        // labels: loop IDs come from the shared table, symbols from the
        // context attribute names (both analyses used the same naming).
        let view = crate::diffnlr::DiffNlr::from_blocks(
            id,
            self.element_blocks(n.elements(), f.elements()),
            *self.faulty.nlrs.truncated.get(&id).unwrap_or(&false),
        );
        // When the hbcheck pre-pass found this rank inside a wait-for
        // cycle, the cycle *is* why this trace diverged — annotate it.
        let cause = self
            .hb
            .as_ref()
            .and_then(|pre| pre.cause_for(id.process))
            .map(String::from);
        Some(view.with_cause(cause))
    }

    /// Myers-diff two element sequences into rendered blocks, drilling
    /// into loop bodies where the *structure* changed: when a single
    /// loop is replaced by a single loop with the same trip count but a
    /// different body, the interesting difference is inside the body
    /// (Figure 7a's vanished `GOMP_critical_*` pair), so the body
    /// sequences are diffed recursively under the two header lines.
    /// Count-only changes and all other shapes stay opaque `L<id> ^ n`
    /// references (Figures 5–6).
    fn element_blocks(
        &self,
        normal: &[nlr::Element],
        faulty: &[nlr::Element],
    ) -> Vec<diffalg::Block<String>> {
        use diffalg::{align_blocks, diff, Block, BlockKind};
        use nlr::Element;

        let label = |e: &Element| match e {
            // Both executions of a pair share one registry (one
            // workload, one interner), so either analysis resolves any
            // symbol.
            Element::Sym(s) => symbol_name(&self.normal.registry, *s),
            Element::Loop { body, count } => format!("{body} ^ {count}"),
        };
        let script = diff(normal, faulty);
        let blocks = align_blocks(&script, normal, faulty);
        let mut out: Vec<Block<String>> = Vec::new();
        let mut i = 0;
        while i < blocks.len() {
            let b = &blocks[i];
            if b.kind == BlockKind::LeftOnly && i + 1 < blocks.len() {
                let r = &blocks[i + 1];
                if r.kind == BlockKind::RightOnly {
                    if let (
                        &[Element::Loop {
                            body: lb,
                            count: lc,
                        }],
                        &[Element::Loop {
                            body: rb,
                            count: rc,
                        }],
                    ) = (b.items.as_slice(), r.items.as_slice())
                    {
                        if lc == rc && lb != rb {
                            out.push(Block {
                                kind: BlockKind::LeftOnly,
                                items: vec![label(&b.items[0])],
                            });
                            out.push(Block {
                                kind: BlockKind::RightOnly,
                                items: vec![label(&r.items[0])],
                            });
                            out.extend(
                                self.element_blocks(self.table.body(lb), self.table.body(rb)),
                            );
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            out.push(Block {
                kind: b.kind,
                items: b.items.iter().map(label).collect(),
            });
            i += 1;
        }
        out
    }

    /// Explain *why* trace `id` is suspicious: its attributes whose
    /// weights moved between the normal and faulty context, sorted by
    /// |Δ| descending. `(attribute, normal weight, faulty weight)`.
    pub fn explain(&self, id: TraceId) -> Vec<(String, f64, f64)> {
        let pos = self.normal.ids.iter().position(|&t| t == id);
        let Some(g) = pos else { return Vec::new() };
        let weights = |run: &AnalysisRun| -> BTreeMap<String, f64> {
            run.context
                .object_attrs(g)
                .iter()
                .map(|m| {
                    let a = fca::AttrId(m as u32);
                    (
                        run.context.attr_name(a).to_string(),
                        run.context.weight(g, a),
                    )
                })
                .collect()
        };
        let n = weights(&self.normal);
        let f = weights(&self.faulty);
        let keys: std::collections::BTreeSet<&String> = n.keys().chain(f.keys()).collect();
        let mut out: Vec<(String, f64, f64)> = keys
            .into_iter()
            .map(|k| {
                (
                    k.clone(),
                    n.get(k).copied().unwrap_or(0.0),
                    f.get(k).copied().unwrap_or(0.0),
                )
            })
            .filter(|(_, a, b)| (a - b).abs() > 1e-12)
            .collect();
        out.sort_by(|x, y| {
            let dx = (x.1 - x.2).abs();
            let dy = (y.1 - y.2).abs();
            dy.total_cmp(&dx).then_with(|| x.0.cmp(&y.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrKind, FreqMode};
    use dt_trace::hb::HbLog;
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;

    fn two_runs() -> (TraceSet, TraceSet, Arc<FunctionRegistry>) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |loops: &[usize]| {
            crate::record_masters(&registry, loops.len() as u32, |p, tr| {
                let n = loops[p as usize];
                let _m = tr.enter("main");
                tr.leaf("MPI_Init");
                for _ in 0..n {
                    tr.leaf("MPI_Send");
                    tr.leaf("MPI_Recv");
                }
                tr.leaf("MPI_Finalize");
            })
        };
        // Normal: all ranks loop 8×; faulty: rank 2 loops only once.
        let normal = mk(&[8, 8, 8, 8]);
        let faulty = mk(&[8, 8, 1, 8]);
        (normal, faulty, registry)
    }

    fn params() -> Params {
        Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
        )
    }

    #[test]
    fn analyze_builds_all_artifacts() {
        let (normal, _, _) = two_runs();
        let mut table = LoopTable::new();
        let run = analyze(&normal, &params(), &mut table);
        assert_eq!(run.ids.len(), 4);
        assert_eq!(run.jsm.len(), 4);
        // All four traces share identical attribute sets, so the
        // lattice degenerates to a single concept (top = bottom).
        assert_eq!(run.lattice.concepts().len(), 1);
        // All ranks identical ⇒ JSM all ones.
        for row in &run.jsm.m {
            for &v in row {
                assert!((v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diff_runs_flags_the_perturbed_rank() {
        let (normal, faulty, _) = two_runs();
        let d = diff_runs(&normal, &faulty, &params());
        assert_eq!(
            d.suspicious_threads.first(),
            Some(&TraceId::master(2)),
            "rank 2 changed the most: {:?}",
            d.suspicious_threads
        );
        assert_eq!(d.suspicious_processes.first(), Some(&2));
        assert!(d.bscore >= 0.0);
    }

    #[test]
    fn nofreq_hides_count_only_changes() {
        // Under noFreq a pure loop-count change is invisible: the loop
        // must still fold (count ≥ 2) so both runs mine the same
        // attribute set ⇒ JSM_D = 0 everywhere.
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |counts: &[usize]| {
            crate::record_masters(&registry, counts.len() as u32, |p, tr| {
                tr.leaf("MPI_Init");
                for _ in 0..counts[p as usize] {
                    tr.leaf("MPI_Send");
                    tr.leaf("MPI_Recv");
                }
                tr.leaf("MPI_Finalize");
            })
        };
        let normal = mk(&[8, 8, 8, 8]);
        let faulty = mk(&[8, 8, 3, 8]);
        let p = Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        );
        let d = diff_runs(&normal, &faulty, &p);
        assert!(d.suspicious_threads.is_empty());
        assert_eq!(d.bscore, 0.0);
    }

    #[test]
    fn explain_names_the_changed_attributes() {
        let (normal, faulty, _) = two_runs();
        let d = diff_runs(&normal, &faulty, &params());
        let explained = d.explain(TraceId::master(2));
        assert!(!explained.is_empty());
        // The loop attribute's weight dropped from 8 iterations to …
        // whatever the broken rank managed; it must top the list.
        let (attr, n, f) = &explained[0];
        assert!(attr.starts_with('L') || attr.starts_with("MPI_"), "{attr}");
        assert_ne!(n, f);
        // An unaffected trace explains to nothing.
        assert!(d.explain(TraceId::master(0)).is_empty());
        // Unknown traces explain to nothing rather than panicking.
        assert!(d.explain(TraceId::new(99, 9)).is_empty());
    }

    #[test]
    fn missing_traces_align_as_empty_objects() {
        let (normal, _, registry) = two_runs();
        // Faulty run lost rank 3 entirely.
        let faulty = crate::record_masters(&registry, 3, |_p, tr| {
            tr.leaf("MPI_Init");
        });
        let d = diff_runs(&normal, &faulty, &params());
        assert_eq!(d.normal.ids.len(), 4);
        assert_eq!(d.faulty.ids.len(), 4);
        // Rank 3 must be among the suspects (it vanished).
        assert!(d.suspicious_threads.contains(&TraceId::master(3)));
    }

    /// A clean normal run plus a faulty run whose HB log records a
    /// recv↔recv deadlock between ranks 0 and 1.
    fn deadlocked_pair() -> (TraceSet, HbLog, TraceSet, HbLog) {
        use dt_trace::hb::{BlockedOp, HbOp, VectorClock};
        let registry = Arc::new(FunctionRegistry::new());
        let normal = crate::record_masters(&registry, 2, |_p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..8 {
                tr.leaf("MPI_Send");
                tr.leaf("MPI_Recv");
            }
            tr.leaf("MPI_Finalize");
        });
        let faulty = crate::record_masters(&registry, 2, |_p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..3 {
                tr.leaf("MPI_Send");
                tr.leaf("MPI_Recv");
            }
            let open = Box::new(tr.enter("MPI_Recv"));
            std::mem::forget(open); // hung: the receive never returns
        });
        let normal_hb = HbLog::new(2);
        let mut faulty_hb = HbLog::new(2);
        for r in 0..2u32 {
            let mut c = VectorClock::zero(2);
            c.tick(r as usize);
            faulty_hb.push(TraceId::master(r), "MPI_Init", HbOp::Local, &c);
            faulty_hb.blocked.push(BlockedOp {
                rank: r,
                name: "MPI_Recv".into(),
                op: HbOp::Recv {
                    src: Some(1 - r),
                    tag: 0,
                },
            });
        }
        (normal, normal_hb, faulty, faulty_hb)
    }

    #[test]
    fn hb_warn_attaches_the_cycle_as_divergence_cause() {
        let (normal, nhb, faulty, fhb) = deadlocked_pair();
        let opts = PipelineOptions {
            hb: LintGate::Warn,
            ..PipelineOptions::default()
        };
        let d = try_diff_runs_hb_opts(&normal, &faulty, Some((&nhb, &fhb)), &params(), &opts)
            .expect("warn never denies");
        let pre = d.hb.as_ref().expect("reports attached");
        assert!(pre.normal.is_clean());
        assert!(!pre.faulty.is_clean());
        for r in 0..2 {
            let view = d.diff_nlr(TraceId::master(r)).unwrap();
            let cause = view
                .divergence_cause
                .as_deref()
                .expect("rank is in the cycle");
            assert!(
                cause.contains("rank 0 blocked in MPI_Recv(src=1, tag=0)"),
                "{cause}"
            );
            assert!(
                view.render().contains("! cause: deadlock"),
                "{}",
                view.render()
            );
        }
    }

    #[test]
    fn hb_deny_refuses_to_diff_a_deadlocked_run() {
        let (normal, nhb, faulty, fhb) = deadlocked_pair();
        let opts = PipelineOptions {
            hb: LintGate::Deny,
            ..PipelineOptions::default()
        };
        let err = try_diff_runs_hb_opts(&normal, &faulty, Some((&nhb, &fhb)), &params(), &opts)
            .expect_err("deadlock must deny");
        match err {
            DiffDenied::Hb(f) => {
                assert!(f.normal.is_clean());
                assert!(f.faulty.has_errors());
                assert!(f.to_string().contains("hbcheck gate denied"));
            }
            DiffDenied::Lint(_) | DiffDenied::Race(_) | DiffDenied::Req(_) => {
                panic!("wrong gate fired")
            }
        }
        // Without logs the gate is inert even at Deny.
        let d = try_diff_runs_hb_opts(&normal, &faulty, None, &params(), &opts).unwrap();
        assert!(d.hb.is_none());
        assert!(d
            .diff_nlr(TraceId::master(0))
            .unwrap()
            .divergence_cause
            .is_none());
    }

    /// Two two-thread executions: the normal one locks its counter
    /// updates, the faulty one races on them.
    fn racy_pair() -> (TraceSet, TraceSet) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |locked: bool| {
            let collector = dt_trace::TraceCollector::shared(registry.clone());
            for thread in 0..2 {
                let tr = collector.tracer(TraceId::new(0, thread));
                tr.leaf("MPI_Init");
                for _ in 0..8 {
                    if locked {
                        tr.leaf("omp_acquire@l");
                    }
                    tr.leaf("omp_write@counter");
                    if locked {
                        tr.leaf("omp_release@l");
                    }
                }
                tr.leaf("MPI_Finalize");
                tr.finish();
            }
            collector.into_trace_set()
        };
        (mk(true), mk(false))
    }

    #[test]
    fn race_warn_attaches_reports() {
        let (normal, faulty) = racy_pair();
        let opts = PipelineOptions {
            race: LintGate::Warn,
            ..PipelineOptions::default()
        };
        let d = try_diff_runs_opts(&normal, &faulty, &params(), &opts).unwrap();
        let pre = d.race.expect("warn attaches the reports");
        assert!(pre.normal.is_clean(), "{}", pre.normal.render_text());
        assert!(!pre.faulty.is_clean());
    }

    #[test]
    fn race_deny_refuses_to_diff_a_racy_run() {
        let (normal, faulty) = racy_pair();
        let opts = PipelineOptions {
            race: LintGate::Deny,
            ..PipelineOptions::default()
        };
        match try_diff_runs_opts(&normal, &faulty, &params(), &opts) {
            Err(DiffDenied::Race(f)) => {
                assert!(f.normal.is_clean());
                assert!(f.faulty.has_errors());
                assert!(f.to_string().contains("racecheck gate denied"));
            }
            other => panic!("expected the race gate to fire, got {other:?}"),
        }
    }

    /// Two two-process executions: the faulty one's rank 0 posts an
    /// `MPI_Isend` it never waits on.
    fn leaky_pair() -> (TraceSet, TraceSet) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |leak: bool| {
            let collector = dt_trace::TraceCollector::shared(registry.clone());
            for p in 0..2u32 {
                let tr = collector.tracer(TraceId::master(p));
                tr.leaf("MPI_Init");
                for _ in 0..8 {
                    tr.leaf("MPI_Isend");
                    tr.leaf("MPI_Wait");
                }
                if leak && p == 0 {
                    tr.leaf("MPI_Isend");
                    tr.leaf("mpi_req_pending@MPI_Isend:dst=1,tag=3");
                }
                tr.leaf("MPI_Finalize");
                tr.finish();
            }
            collector.into_trace_set()
        };
        (mk(false), mk(true))
    }

    #[test]
    fn req_warn_attaches_reports() {
        let (normal, faulty) = leaky_pair();
        let opts = PipelineOptions {
            req: LintGate::Warn,
            ..PipelineOptions::default()
        };
        let d = try_diff_runs_opts(&normal, &faulty, &params(), &opts).unwrap();
        let pre = d.req.expect("warn attaches the reports");
        assert!(pre.normal.is_clean(), "{}", pre.normal.render_text());
        assert!(!pre.faulty.is_clean());
    }

    #[test]
    fn req_deny_refuses_to_diff_a_leaky_run() {
        let (normal, faulty) = leaky_pair();
        let opts = PipelineOptions {
            req: LintGate::Deny,
            ..PipelineOptions::default()
        };
        match try_diff_runs_opts(&normal, &faulty, &params(), &opts) {
            Err(DiffDenied::Req(f)) => {
                assert!(f.normal.is_clean());
                assert!(f.faulty.has_errors());
                assert!(f.to_string().contains("reqcheck gate denied"));
            }
            other => panic!("expected the req gate to fire, got {other:?}"),
        }
    }
}
