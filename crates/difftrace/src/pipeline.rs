//! The end-to-end DiffTrace pipeline for one parameter combination.

use crate::attributes::{mine, AttrConfig};
use crate::filter::{symbol_name, FilterConfig, FilteredTrace};
use crate::jsm::JsmMatrix;
use crate::nlr_stage::NlrSet;
use cluster::{bscore, linkage, CondensedMatrix, Dendrogram, Method};
use dt_trace::{TraceId, TraceSet};
use fca::{ConceptLattice, FormalContext};
use nlr::LoopTable;
use std::collections::BTreeMap;

/// One point of the parameter space (the dashed box in Figure 1): the
/// front-end filter (with its NLR K), the FCA attributes, and the
/// linkage method.
#[derive(Debug, Clone)]
pub struct Params {
    /// Front-end filter.
    pub filter: FilterConfig,
    /// Attribute mining configuration.
    pub attrs: AttrConfig,
    /// Linkage for hierarchical clustering ("ward" in all the paper's
    /// reported tables).
    pub linkage: Method,
}

impl Params {
    /// Ward-linkage params.
    pub fn new(filter: FilterConfig, attrs: AttrConfig) -> Params {
        Params {
            filter,
            attrs,
            linkage: Method::Ward,
        }
    }
}

/// The analysis artifacts of a single execution.
#[derive(Debug)]
pub struct AnalysisRun {
    /// The function-name table of the analyzed execution.
    pub registry: std::sync::Arc<dt_trace::FunctionRegistry>,
    /// Trace IDs in matrix/object order.
    pub ids: Vec<TraceId>,
    /// NLR summaries.
    pub nlrs: NlrSet,
    /// The mined formal context.
    pub context: FormalContext,
    /// Incrementally built concept lattice.
    pub lattice: ConceptLattice,
    /// Pairwise Jaccard similarity matrix.
    pub jsm: JsmMatrix,
    /// The dendrogram of `1 − JSM` under the configured linkage.
    pub dendrogram: Dendrogram,
}

/// Analyze one execution under `params`, interning loops into the
/// shared `table`. `id_universe` fixes the object set (pass the union
/// of normal+faulty IDs when analyzing a pair so the matrices align;
/// traces missing from `set` become empty objects — e.g. threads a
/// fault prevented from spawning).
pub fn analyze_aligned(
    set: &TraceSet,
    params: &Params,
    table: &mut LoopTable,
    id_universe: &[TraceId],
) -> AnalysisRun {
    let filtered = params.filter.apply(set);
    let by_id: BTreeMap<TraceId, FilteredTrace> =
        filtered.traces.into_iter().map(|t| (t.id, t)).collect();
    let aligned = crate::filter::FilteredSet {
        traces: id_universe
            .iter()
            .map(|&id| {
                by_id.get(&id).cloned().unwrap_or(FilteredTrace {
                    id,
                    symbols: Vec::new(),
                    truncated: false,
                })
            })
            .collect(),
    };
    let nlrs = NlrSet::build(&aligned, params.filter.nlr_k, table);

    let mut context = FormalContext::new();
    let name = |s: u32| symbol_name(&set.registry, s);
    for id in id_universe {
        let nlr = nlrs.get(*id).expect("aligned");
        let symbols: &[u32] = aligned
            .traces
            .iter()
            .find(|t| t.id == *id)
            .map(|t| t.symbols.as_slice())
            .unwrap_or(&[]);
        let attrs = mine(symbols, nlr, params.attrs, &name);
        context.add_object(
            &id.to_string(),
            attrs.iter().map(|(k, w)| (k.as_str(), *w)),
        );
    }
    let lattice = ConceptLattice::from_context(&context);
    let jsm = JsmMatrix::from_context(&context, id_universe.to_vec());
    let dendrogram = linkage(&CondensedMatrix::from_similarity(&jsm.m), params.linkage);
    AnalysisRun {
        registry: set.registry.clone(),
        ids: id_universe.to_vec(),
        nlrs,
        context,
        lattice,
        jsm,
        dendrogram,
    }
}

/// Analyze a single execution (object set = its own traces).
pub fn analyze(set: &TraceSet, params: &Params, table: &mut LoopTable) -> AnalysisRun {
    let ids = set.ids();
    analyze_aligned(set, params, table, &ids)
}

/// The result of diffing a normal and a faulty execution.
#[derive(Debug)]
pub struct DiffRun {
    /// The parameter combination used.
    pub params: Params,
    /// Analysis of the fault-free execution.
    pub normal: AnalysisRun,
    /// Analysis of the faulty execution.
    pub faulty: AnalysisRun,
    /// `|JSM_faulty − JSM_normal|`.
    pub jsm_d: JsmMatrix,
    /// B-score of the two hierarchical clusterings (see DESIGN.md).
    pub bscore: f64,
    /// Suspicious processes, most-affected first.
    pub suspicious_processes: Vec<u32>,
    /// Suspicious threads (`p.t`), most-affected first.
    pub suspicious_threads: Vec<TraceId>,
    /// The shared loop table (normal + faulty).
    pub table: LoopTable,
}

/// Fraction of the maximum change score a process/thread must reach to
/// be listed as suspicious.
const SUSPECT_THRESHOLD: f64 = 0.3;
/// Maximum threads listed (the paper's tables show ≈6).
const MAX_THREADS_LISTED: usize = 6;

/// Run the full DiffTrace iteration on a (normal, faulty) pair.
pub fn diff_runs(normal: &TraceSet, faulty: &TraceSet, params: &Params) -> DiffRun {
    // Union of trace IDs: a fault may have killed threads before they
    // traced anything, or spawned extra ones.
    let mut ids: Vec<TraceId> = normal.ids();
    for id in faulty.ids() {
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids.sort();

    let mut table = LoopTable::new();
    let normal_run = analyze_aligned(normal, params, &mut table, &ids);
    let faulty_run = analyze_aligned(faulty, params, &mut table, &ids);
    let jsm_d = faulty_run.jsm.diff(&normal_run.jsm);
    let b = bscore(&normal_run.dendrogram, &faulty_run.dendrogram);

    // Thread-level suspects: row sums of JSM_D.
    let mut thread_scores = jsm_d.row_scores();
    thread_scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let tmax = thread_scores.first().map(|x| x.1).unwrap_or(0.0);
    let suspicious_threads: Vec<TraceId> = thread_scores
        .iter()
        .filter(|(_, s)| tmax > 0.0 && *s >= SUSPECT_THRESHOLD * tmax)
        .take(MAX_THREADS_LISTED)
        .map(|(id, _)| *id)
        .collect();

    // Process-level: aggregate thread scores per rank.
    let mut proc_scores: BTreeMap<u32, f64> = BTreeMap::new();
    for (id, s) in &thread_scores {
        *proc_scores.entry(id.process).or_insert(0.0) += s;
    }
    let mut proc_scores: Vec<(u32, f64)> = proc_scores.into_iter().collect();
    proc_scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let pmax = proc_scores.first().map(|x| x.1).unwrap_or(0.0);
    let suspicious_processes: Vec<u32> = proc_scores
        .iter()
        .filter(|(_, s)| pmax > 0.0 && *s >= SUSPECT_THRESHOLD * pmax)
        .map(|(p, _)| *p)
        .collect();

    DiffRun {
        params: params.clone(),
        normal: normal_run,
        faulty: faulty_run,
        jsm_d,
        bscore: b,
        suspicious_processes,
        suspicious_threads,
        table,
    }
}

impl DiffRun {
    /// The diffNLR view of trace `id` (normal vs faulty), cf. §II-F-1:
    /// `diffNLR(x) ≡ diffNLR(T_x, T'_x)`.
    pub fn diff_nlr(&self, id: TraceId) -> Option<crate::diffnlr::DiffNlr> {
        let n = self.normal.nlrs.get(id)?;
        let f = self.faulty.nlrs.get(id)?;
        // Render via the *normal* execution's registry-independent
        // labels: loop IDs come from the shared table, symbols from the
        // context attribute names (both analyses used the same naming).
        Some(crate::diffnlr::DiffNlr::new(
            id,
            self.render_nlr_labels(n),
            self.render_nlr_labels(f),
            *self.faulty.nlrs.truncated.get(&id).unwrap_or(&false),
        ))
    }

    fn render_nlr_labels(&self, nlr: &nlr::Nlr) -> Vec<String> {
        // Both executions of a pair share one registry (one workload,
        // one interner), so either analysis resolves any symbol.
        nlr.render(&|s| symbol_name(&self.normal.registry, s))
    }

    /// Explain *why* trace `id` is suspicious: its attributes whose
    /// weights moved between the normal and faulty context, sorted by
    /// |Δ| descending. `(attribute, normal weight, faulty weight)`.
    pub fn explain(&self, id: TraceId) -> Vec<(String, f64, f64)> {
        let pos = self.normal.ids.iter().position(|&t| t == id);
        let Some(g) = pos else { return Vec::new() };
        let weights = |run: &AnalysisRun| -> BTreeMap<String, f64> {
            run.context
                .object_attrs(g)
                .iter()
                .map(|m| {
                    let a = fca::AttrId(m as u32);
                    (run.context.attr_name(a).to_string(), run.context.weight(g, a))
                })
                .collect()
        };
        let n = weights(&self.normal);
        let f = weights(&self.faulty);
        let keys: std::collections::BTreeSet<&String> = n.keys().chain(f.keys()).collect();
        let mut out: Vec<(String, f64, f64)> = keys
            .into_iter()
            .map(|k| {
                (
                    k.clone(),
                    n.get(k).copied().unwrap_or(0.0),
                    f.get(k).copied().unwrap_or(0.0),
                )
            })
            .filter(|(_, a, b)| (a - b).abs() > 1e-12)
            .collect();
        out.sort_by(|x, y| {
            let dx = (x.1 - x.2).abs();
            let dy = (y.1 - y.2).abs();
            dy.partial_cmp(&dx).unwrap().then_with(|| x.0.cmp(&y.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrKind, FreqMode};
    use dt_trace::{FunctionRegistry, TraceCollector};
    use std::sync::Arc;

    fn two_runs() -> (TraceSet, TraceSet, Arc<FunctionRegistry>) {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |loops: &[usize]| {
            let collector = TraceCollector::shared(registry.clone());
            for (p, &n) in loops.iter().enumerate() {
                let tr = collector.tracer(TraceId::master(p as u32));
                let _m = tr.enter("main");
                tr.leaf("MPI_Init");
                for _ in 0..n {
                    tr.leaf("MPI_Send");
                    tr.leaf("MPI_Recv");
                }
                tr.leaf("MPI_Finalize");
                drop(_m);
                tr.finish();
            }
            collector.into_trace_set()
        };
        // Normal: all ranks loop 8×; faulty: rank 2 loops only once.
        let normal = mk(&[8, 8, 8, 8]);
        let faulty = mk(&[8, 8, 1, 8]);
        (normal, faulty, registry)
    }

    fn params() -> Params {
        Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
        )
    }

    #[test]
    fn analyze_builds_all_artifacts() {
        let (normal, _, _) = two_runs();
        let mut table = LoopTable::new();
        let run = analyze(&normal, &params(), &mut table);
        assert_eq!(run.ids.len(), 4);
        assert_eq!(run.jsm.len(), 4);
        // All four traces share identical attribute sets, so the
        // lattice degenerates to a single concept (top = bottom).
        assert_eq!(run.lattice.concepts().len(), 1);
        // All ranks identical ⇒ JSM all ones.
        for row in &run.jsm.m {
            for &v in row {
                assert!((v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diff_runs_flags_the_perturbed_rank() {
        let (normal, faulty, _) = two_runs();
        let d = diff_runs(&normal, &faulty, &params());
        assert_eq!(
            d.suspicious_threads.first(),
            Some(&TraceId::master(2)),
            "rank 2 changed the most: {:?}",
            d.suspicious_threads
        );
        assert_eq!(d.suspicious_processes.first(), Some(&2));
        assert!(d.bscore >= 0.0);
    }

    #[test]
    fn nofreq_hides_count_only_changes() {
        // Under noFreq a pure loop-count change is invisible: the loop
        // must still fold (count ≥ 2) so both runs mine the same
        // attribute set ⇒ JSM_D = 0 everywhere.
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |counts: &[usize]| {
            let collector = TraceCollector::shared(registry.clone());
            for (p, &n) in counts.iter().enumerate() {
                let tr = collector.tracer(TraceId::master(p as u32));
                tr.leaf("MPI_Init");
                for _ in 0..n {
                    tr.leaf("MPI_Send");
                    tr.leaf("MPI_Recv");
                }
                tr.leaf("MPI_Finalize");
                tr.finish();
            }
            collector.into_trace_set()
        };
        let normal = mk(&[8, 8, 8, 8]);
        let faulty = mk(&[8, 8, 3, 8]);
        let p = Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        );
        let d = diff_runs(&normal, &faulty, &p);
        assert!(d.suspicious_threads.is_empty());
        assert_eq!(d.bscore, 0.0);
    }

    #[test]
    fn explain_names_the_changed_attributes() {
        let (normal, faulty, _) = two_runs();
        let d = diff_runs(&normal, &faulty, &params());
        let explained = d.explain(TraceId::master(2));
        assert!(!explained.is_empty());
        // The loop attribute's weight dropped from 8 iterations to …
        // whatever the broken rank managed; it must top the list.
        let (attr, n, f) = &explained[0];
        assert!(attr.starts_with('L') || attr.starts_with("MPI_"), "{attr}");
        assert_ne!(n, f);
        // An unaffected trace explains to nothing.
        assert!(d.explain(TraceId::master(0)).is_empty());
        // Unknown traces explain to nothing rather than panicking.
        assert!(d.explain(TraceId::new(99, 9)).is_empty());
    }

    #[test]
    fn missing_traces_align_as_empty_objects() {
        let (normal, _, registry) = two_runs();
        // Faulty run lost rank 3 entirely.
        let collector = TraceCollector::shared(registry);
        for p in 0..3u32 {
            let tr = collector.tracer(TraceId::master(p));
            tr.leaf("MPI_Init");
            tr.finish();
        }
        let faulty = collector.into_trace_set();
        let d = diff_runs(&normal, &faulty, &params());
        assert_eq!(d.normal.ids.len(), 4);
        assert_eq!(d.faulty.ids.len(), 4);
        // Rank 3 must be among the suspects (it vanished).
        assert!(d.suspicious_threads.contains(&TraceId::master(3)));
    }
}
