//! Concurrency primitives shared by the parallel pipeline stages.
//!
//! Everything here is built on `std` only: scoped threads
//! (`std::thread::scope`), an atomic work-stealing index, and a
//! write-once [`Slot`] per output cell. The combination gives a small,
//! auditable `par_map` without pulling in an external thread pool.
//!
//! Determinism note: [`par_map`] assigns output cell `i` to input `i`,
//! so the result order is always the input order regardless of how the
//! OS schedules workers. Callers get byte-identical output for any
//! thread count as long as `f` itself is a pure function of its inputs.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Resolve a user-facing thread-count knob: `0` means "all available
/// parallelism", anything else is taken literally. The result is
/// additionally capped at `work_items` so we never spawn idle workers.
pub fn effective_threads(threads: usize, work_items: usize) -> usize {
    let n = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    n.min(work_items.max(1))
}

/// A write-once cell: many threads may hold `&Slot`, exactly one calls
/// [`Slot::set`], and ownership is recovered with [`Slot::take`] after
/// all writers are joined.
pub struct Slot<T> {
    claimed: AtomicBool,
    ready: AtomicBool,
    value: UnsafeCell<Option<T>>,
}

// Safety: `claimed` admits exactly one writer (checked with a swap);
// that single write is published by the Release store of `ready`, and
// readers Acquire `ready` before touching `value`. `take` additionally
// consumes the slot by value, so it has exclusive ownership.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    pub fn new() -> Slot<T> {
        Slot {
            claimed: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            value: UnsafeCell::new(None),
        }
    }

    /// Deposit the value. Must be called at most once per slot; callers
    /// guarantee this by claiming disjoint indices from an atomic
    /// counter, and the claim flag turns any violation into a panic
    /// instead of UB.
    pub fn set(&self, v: T) {
        let already = self.claimed.swap(true, Ordering::AcqRel);
        assert!(!already, "Slot::set called twice");
        // Safety: the swap above admits exactly one writer, and readers
        // only dereference `value` after observing `ready` (below).
        unsafe { *self.value.get() = Some(v) };
        self.ready.store(true, Ordering::Release);
    }

    /// True once a value has been deposited and published.
    pub fn is_set(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Recover the value. Panics if the slot was never written.
    pub fn take(self) -> T {
        assert!(self.ready.load(Ordering::Acquire), "slot never written");
        self.value.into_inner().expect("slot written once")
    }
}

impl<T> Default for Slot<T> {
    fn default() -> Slot<T> {
        Slot::new()
    }
}

/// Apply `f` to every index/item pair and collect the results in input
/// order.
///
/// * `threads == 1` runs inline on the caller's thread — no spawning,
///   no atomics on the hot path — so it is the *exact* sequential
///   execution, not a simulation of one.
/// * `threads == 0` uses the available parallelism.
/// * Work is distributed dynamically (atomic next-index counter), which
///   keeps long-tailed workloads balanced; output position is fixed by
///   input index, which keeps results deterministic.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<U>> = (0..items.len()).map(|_| Slot::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                slots[i].set(f(i, &items[i]));
            });
        }
    });
    slots.into_iter().map(|s| s.take()).collect()
}

/// [`par_map`] with per-worker busy-time observation: each worker's
/// total time spent inside `f` is reported to `rec` under `path` (the
/// raw material of the `--profile` imbalance report). With a disabled
/// recorder this *is* [`par_map`] — no clock is ever read — and the
/// results are identical either way: timing wraps each call, it never
/// reorders or drops one.
pub fn par_map_obs<T, U, F>(
    items: &[T],
    threads: usize,
    rec: &dyn dt_obs::Recorder,
    path: &str,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if !rec.enabled() {
        return par_map(items, threads, f);
    }
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        let t0 = std::time::Instant::now();
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        rec.worker_ns(path, 0, t0.elapsed().as_nanos() as u64);
        return out;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<U>> = (0..items.len()).map(|_| Slot::new()).collect();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (next, slots, f) = (&next, &slots, &f);
            s.spawn(move || {
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    slots[i].set(f(i, &items[i]));
                    busy += t0.elapsed().as_nanos() as u64;
                }
                rec.worker_ns(path, w, busy);
            });
        }
    });
    slots.into_iter().map(|s| s.take()).collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small persistent worker pool: N threads draining one shared job
/// queue. Unlike [`par_map`]'s scoped per-call workers, the threads
/// outlive any single request — the scheduling substrate a resident
/// server (`difftrace serve`) puts its queries on, so concurrent
/// requests share a bounded set of analysis workers instead of
/// spawning unboundedly.
///
/// [`Pool::run`] blocks the *calling* thread until its job finishes,
/// so per-request code reads sequentially; concurrency comes from many
/// callers. A panicking job is caught on the worker (which survives to
/// serve the next job) and re-raised on the caller.
pub struct Pool {
    tx: Option<std::sync::mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with the given thread knob (`0` = all available
    /// parallelism).
    pub fn new(threads: usize) -> Pool {
        let threads = effective_threads(threads, usize::MAX);
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only while *receiving*, never while
                    // running a job, so workers drain in parallel.
                    let job = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // pool dropped
                    }
                })
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run `f` on a pool worker and return its result, blocking the
    /// caller until it is done. If `f` panics, the panic crosses back
    /// to the caller; the worker survives.
    pub fn run<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        let job: Job = Box::new(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = tx.send(out);
        });
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(job)
            .expect("pool workers alive");
        match rx.recv().expect("worker delivers exactly one result") {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers see Err and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Run two closures, possibly on two threads, and return both results.
/// With `parallel == false` they run sequentially on the caller's
/// thread (left first), which is the exact sequential path.
pub fn join<A, B, RA, RB>(parallel: bool, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !parallel {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("join: right branch panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 7, 0] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i * i) as u64);
            }
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 0, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u32], 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn join_returns_both_sides() {
        for parallel in [false, true] {
            let (a, b) = join(parallel, || 1 + 1, || "two".len());
            assert_eq!(a, 2);
            assert_eq!(b, 3);
        }
    }

    #[test]
    fn pool_runs_jobs_and_returns_results() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.run(|| 6 * 7), 42);
        // Concurrent callers all get their own answers.
        let pool = std::sync::Arc::new(pool);
        std::thread::scope(|s| {
            for i in 0..16u64 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || assert_eq!(pool.run(move || i * i), i * i));
            }
        });
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = Pool::new(1);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|| panic!("job exploded"));
        }));
        assert!(boom.is_err());
        // The single worker is still alive and serving.
        assert_eq!(pool.run(|| "still here"), "still here");
    }

    #[test]
    fn pool_drop_joins_cleanly() {
        let pool = Pool::new(2);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&counter);
            pool.run(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    #[should_panic(expected = "slot never written")]
    fn take_unwritten_slot_panics() {
        let s: Slot<u8> = Slot::new();
        s.take();
    }

    #[test]
    #[should_panic(expected = "Slot::set called twice")]
    fn double_set_panics() {
        let s: Slot<u8> = Slot::new();
        s.set(1);
        s.set(2);
    }
}
