//! `difftrace` — whole-program trace analysis and diffing for debugging.
//!
//! The core pipeline of the DiffTrace paper (CLUSTER 2019), assembled
//! from the workspace's substrate crates:
//!
//! ```text
//!        ParLOT traces (dt-trace)          ParLOT traces (faulty)
//!                │                                 │
//!        [filter]  Table I front-end filters (rex)
//!                │                                 │
//!        [nlr_stage]  nested-loop summarization (nlr)
//!                │                                 │
//!        [attributes]  Table V attribute mining
//!                │                                 │
//!        [fca]  incremental concept lattices → [jsm]  JSM_normal / JSM_faulty
//!                                │
//!                     JSM_D = |JSM_faulty − JSM_normal|
//!                                │
//!        [pipeline] hierarchical clustering (cluster) + B-score
//!                                │
//!        [ranking]  suspicious-trace tables   [diffnlr]  diffNLR views
//! ```
//!
//! Entry points:
//!
//! * [`Params`] bundles one parameter combination (filter, attributes,
//!   linkage, NLR K) — the "dashed box" of the paper's Figure 1.
//! * [`analyze`] runs filter → NLR → FCA → JSM for one execution.
//! * [`diff_runs`] analyzes a (normal, faulty) pair, computes `JSM_D`,
//!   the B-score, and the suspicious-trace ranking.
//! * [`sweep`] iterates a parameter grid producing the paper's ranking
//!   tables (Tables VI–IX).
//! * [`DiffNlr`] renders the diffNLR visualization (Figures 5–7).
//! * [`analyze_single`] is the no-reference mode of §II-A.
//!
//! # Example
//!
//! ```
//! use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
//! use dt_trace::{FunctionRegistry, TraceCollector, TraceId};
//! use std::sync::Arc;
//!
//! // Two executions sharing one function registry. Rank 1's loop runs
//! // 2 iterations in the "faulty" run instead of 8.
//! let registry = Arc::new(FunctionRegistry::new());
//! let record = |iters_for_rank1: usize| {
//!     let collector = TraceCollector::shared(registry.clone());
//!     for p in 0..4u32 {
//!         let tr = collector.tracer(TraceId::master(p));
//!         tr.leaf("MPI_Init");
//!         let n = if p == 1 { iters_for_rank1 } else { 8 };
//!         for _ in 0..n {
//!             tr.leaf("MPI_Send");
//!             tr.leaf("MPI_Recv");
//!         }
//!         tr.leaf("MPI_Finalize");
//!         tr.finish();
//!     }
//!     collector.into_trace_set()
//! };
//! let normal = record(8);
//! let faulty = record(2);
//!
//! let params = Params::new(
//!     FilterConfig::mpi_all(10),
//!     AttrConfig { kind: AttrKind::Single, freq: FreqMode::Actual },
//! );
//! let d = diff_runs(&normal, &faulty, &params);
//! assert_eq!(d.suspicious_processes.first(), Some(&1));
//! let view = d.diff_nlr(TraceId::master(1)).unwrap();
//! assert!(view.normal_only()[0].contains("^ 8"));
//! assert!(view.faulty_only()[0].contains("^ 2"));
//! ```

pub mod attributes;
pub mod classify;
pub mod diffnlr;
pub mod filter;
pub mod fleet;
pub mod hbcheck;
pub mod jsm;
pub mod lint;
pub mod nlr_stage;
pub mod pipeline;
pub mod racecheck;
pub mod ranking;
pub mod recording;
pub mod report;
pub mod reqcheck;
pub mod single_run;
pub mod sync;

pub use attributes::{AttrConfig, AttrKind, FreqMode};
pub use classify::{extract_features, leave_one_out, FeatureVector, NearestCentroid, Sample};
pub use diffnlr::DiffNlr;
pub use filter::{ClassProbe, FilterConfig, FilteredSet, FilteredTrace, KeepClass};
pub use fleet::{FleetError, FleetOptions, FleetReport, FleetRun, RunScore};
pub use hbcheck::{hbcheck_set, HbFailure, HbOptions, HbPrePass};
pub use jsm::{JsmMatrix, Misaligned};
pub use lint::{lint_set, LintDomain, LintFailure, LintGate, LintOptions};
pub use nlr_stage::NlrSet;
pub use racecheck::{racecheck_set, RaceFailure, RaceOptions, RacePrePass};
pub use reqcheck::{reqcheck_set, reqcheck_set_rec, ReqFailure, ReqOptions, ReqPrePass};

pub use pipeline::{
    analyze, analyze_aligned, analyze_aligned_opts, analyze_aligned_rec, analyze_opts,
    content_fingerprints, diff_runs, diff_runs_opts, try_diff_runs_hb_opts, try_diff_runs_hb_rec,
    try_diff_runs_opts, AnalysisRun, DiffDenied, DiffRun, Params, PipelineOptions,
};
pub use ranking::{
    render_ranking, sweep, sweep_cached, sweep_parallel, sweep_parallel_cached_rec,
    sweep_parallel_rec, RankingRow,
};
pub use recording::record_masters;
pub use report::{generate as generate_report, ReportOptions};
pub use single_run::{
    analyze_single, analyze_single_opts_rec, analyze_single_rec, SingleRunReport,
};
