//! The tracelint pre-pass: static trace analysis before any diffing.
//!
//! [`lint_set`] runs the TL001–TL006 rule families (see the
//! `tracelint` crate) over one execution's raw traces, in parallel per
//! trace, with **byte-identical diagnostics for every thread count**:
//! per-trace checks fan out through [`crate::sync::par_map`] (whose
//! output is input-ordered), cross-trace checks run sequentially, and
//! [`LintReport::new`] sorts canonically.
//!
//! [`LintGate`] threads the pass through [`crate::PipelineOptions`]:
//! `Warn` attaches the reports to the [`crate::DiffRun`], `Deny` makes
//! [`crate::try_diff_runs_opts`] refuse to diff when any error-severity
//! diagnostic fires.

use crate::attributes::{AttrConfig, AttrKind, FreqMode};
use crate::filter::{table_i_catalog, ClassProbe, FilterConfig};
use crate::nlr_stage::NlrSet;
use crate::pipeline::{analyze_opts, Params, PipelineOptions};
use crate::sync::{effective_threads, par_map};
use dt_trace::{Trace, TraceId, TraceSet};
use nlr::{LoopTable, Nlr, SharedLoopTable};
use std::fmt;
use tracelint::compressed::{
    check_collective_order_compressed, check_stack_discipline_compressed, rank_streams,
    CollProjector, EffectChecker,
};
use tracelint::rules;
use tracelint::{Diagnostic, LintReport, RuleCode, Span};

/// When lint findings stop the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Skip the lint pass entirely (the default).
    #[default]
    Off,
    /// Run the pass and attach its reports, but never stop.
    Warn,
    /// Refuse to run the pipeline if any **error**-severity diagnostic
    /// fires (warnings pass).
    Deny,
}

impl LintGate {
    /// Parse a CLI-style gate name.
    pub fn parse(s: &str) -> Result<LintGate, String> {
        match s {
            "off" => Ok(LintGate::Off),
            "warn" => Ok(LintGate::Warn),
            "deny" => Ok(LintGate::Deny),
            other => Err(format!("unknown lint gate `{other}` (off|warn|deny)")),
        }
    }
}

/// Which implementation family checks the per-trace rules TL001–TL003.
///
/// Both produce the same *verdicts* (that equivalence is
/// property-tested in `tracelint`); the expanded domain adds precise
/// event-offset spans, the compressed domain never expands the NLR
/// terms and is the one to measure for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintDomain {
    /// Scan the expanded event streams.
    #[default]
    Expanded,
    /// Check the NLR terms directly.
    Compressed,
}

impl LintDomain {
    /// Parse a CLI-style domain name.
    pub fn parse(s: &str) -> Result<LintDomain, String> {
        match s {
            "expanded" => Ok(LintDomain::Expanded),
            "compressed" => Ok(LintDomain::Compressed),
            other => Err(format!(
                "unknown lint domain `{other}` (expanded|compressed)"
            )),
        }
    }
}

/// Configuration for one lint pass.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads (same convention as
    /// [`PipelineOptions::threads`]: `1` sequential, `0` all cores).
    pub threads: usize,
    /// Implementation family for TL001–TL003.
    pub domain: LintDomain,
    /// Also run the expensive TL006 lattice postconditions.
    pub deep: bool,
    /// Filter whose keep classes TL004 probes (and whose `K` sizes the
    /// NLR terms). `None` probes the Table I presets instead.
    pub filter: Option<FilterConfig>,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            threads: 1,
            domain: LintDomain::Expanded,
            deep: false,
            filter: None,
        }
    }
}

impl LintOptions {
    /// Options for the pipeline pre-pass: probe the pipeline's own
    /// filter, expanded domain for precise spans, no deep pass.
    pub fn for_pipeline(params: &Params, threads: usize) -> LintOptions {
        LintOptions {
            threads,
            domain: LintDomain::Expanded,
            deep: false,
            filter: Some(params.filter.clone()),
        }
    }
}

/// Lint one execution. See the module docs for the determinism
/// guarantees.
pub fn lint_set(set: &TraceSet, opts: &LintOptions) -> LintReport {
    let traces: Vec<&Trace> = set.iter().collect();
    let threads = effective_threads(opts.threads, traces.len().max(1));
    let k = opts.filter.as_ref().map_or(10, |f| f.nlr_k);

    // NLR terms over the *raw* symbol streams (no filtering — lint
    // checks the traces as recorded). TL005 needs them always; the
    // compressed domain checks TL001–TL003 on them too.
    let raw: Vec<RawTrace> = traces
        .iter()
        .map(|t| RawTrace {
            id: t.id,
            symbols: t.events.iter().map(|e| e.to_symbol()).collect(),
            truncated: t.truncated,
        })
        .collect();
    let (nlrs, table) = build_raw_nlrs(&raw, k, threads);

    // Per-trace rules, fanned out; output order is input order.
    let registry = &set.registry;
    let per_trace: Vec<Vec<Diagnostic>> = par_map(&raw, threads, |i, rt| {
        let term = nlrs.get(rt.id).expect("term built for every trace");
        let mut out = Vec::new();
        match opts.domain {
            LintDomain::Expanded => {
                out.extend(rules::check_stack_discipline(traces[i], registry));
            }
            LintDomain::Compressed => {
                let mut checker = EffectChecker::new(&table);
                out.extend(check_stack_discipline_compressed(
                    &mut checker,
                    rt.id,
                    term,
                    rt.truncated,
                    registry,
                ));
            }
        }
        out.extend(rules::check_roundtrip(rt.id, &rt.symbols, term, &table));
        out
    });
    let mut diags: Vec<Diagnostic> = per_trace.into_iter().flatten().collect();

    // Cross-trace and corpus-level rules, sequential.
    match opts.domain {
        LintDomain::Expanded => diags.extend(rules::check_collective_order(set)),
        LintDomain::Compressed => {
            let coll = rules::collective_fn_ids(registry);
            let mut projector = CollProjector::new(&table, &coll);
            let terms: Vec<(TraceId, &Nlr, bool)> = nlrs
                .nlrs
                .iter()
                .map(|(&id, n)| (id, n, *nlrs.truncated.get(&id).unwrap_or(&false)))
                .collect();
            let ranks = rank_streams(&terms, &mut projector);
            diags.extend(check_collective_order_compressed(
                &ranks, &projector, registry,
            ));
        }
    }
    diags.extend(dead_filter_diags(
        opts.filter.as_ref(),
        &registry.names(),
        k,
    ));
    if opts.deep {
        diags.extend(deep_lattice_diags(set, opts, k));
    }
    LintReport::new(diags)
}

/// A raw (unfiltered) symbol stream.
pub(crate) struct RawTrace {
    pub(crate) id: TraceId,
    pub(crate) symbols: Vec<u32>,
    pub(crate) truncated: bool,
}

/// Build NLR terms for the raw streams — sequentially under one table,
/// or in parallel through a shared provisional table followed by the
/// canonical renumbering replay (identical output either way; see
/// `nlr::shared`).
pub(crate) fn build_raw_nlrs(raw: &[RawTrace], k: usize, threads: usize) -> (NlrSet, LoopTable) {
    let as_filtered = crate::filter::FilteredSet {
        traces: raw
            .iter()
            .map(|rt| crate::filter::FilteredTrace {
                id: rt.id,
                symbols: rt.symbols.clone(),
                truncated: rt.truncated,
            })
            .collect(),
    };
    let mut table = LoopTable::new();
    let nlrs = if threads <= 1 {
        NlrSet::build(&as_filtered, k, &mut table)
    } else {
        let shared = SharedLoopTable::new();
        let (prov, orders) = NlrSet::build_shared(&as_filtered, k, &shared, threads);
        let map = shared.canonicalize_into(orders.into_iter().flatten(), &mut table);
        prov.remap(&map)
    };
    (nlrs, table)
}

/// TL004: dead-filter analysis. With a filter, probe its keep classes;
/// without one, probe every Table I preset against the corpus's
/// distinct function names.
fn dead_filter_diags(filter: Option<&FilterConfig>, names: &[String], k: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match filter {
        Some(cfg) => {
            for probe in cfg.probe_classes(names) {
                out.extend(probe_diag(&probe, names.len()));
            }
        }
        None => {
            for (label, cfg) in table_i_catalog(k) {
                if cfg.keep.is_empty() {
                    continue; // "Everything" keeps all — never dead.
                }
                let dead = cfg.probe_classes(names).iter().all(|p| p.matched == 0);
                if dead {
                    out.push(
                        Diagnostic::warning(
                            RuleCode::DeadFilter,
                            format!(
                                "Table I filter `{label}` matches none of the {} distinct \
                                 function name(s) in this corpus",
                                names.len()
                            ),
                        )
                        .with_hint("running the pipeline under this filter would diff empty NLRs"),
                    );
                }
            }
        }
    }
    out
}

/// One keep class's probe result, as diagnostics.
fn probe_diag(probe: &ClassProbe, corpus: usize) -> Vec<Diagnostic> {
    let describe = |p: &ClassProbe| match &p.pattern {
        Some(pat) => format!("custom pattern `{pat}`"),
        None => format!("filter class `{}`", p.code),
    };
    if let Some((at, msg)) = &probe.parse_error {
        return vec![Diagnostic::error(
            RuleCode::DeadFilter,
            format!("{} fails to parse at byte {at}: {msg}", describe(probe)),
        )
        .with_span(Span::at(*at))
        .with_hint("the span is a byte offset into the pattern string")];
    }
    if !probe.satisfiable {
        return vec![Diagnostic::error(
            RuleCode::DeadFilter,
            format!(
                "{} cannot match any string (contradictory anchors)",
                describe(probe)
            ),
        )
        .with_hint("remove the unreachable `^`/`$` assertion")];
    }
    if probe.matched == 0 {
        return vec![Diagnostic::warning(
            RuleCode::DeadFilter,
            format!(
                "{} matches none of the {corpus} distinct function name(s) in this corpus",
                describe(probe)
            ),
        )
        .with_hint("a filter that keeps nothing makes every downstream stage vacuous")];
    }
    Vec::new()
}

/// TL006 (deep): run the front half of the pipeline and check the
/// Godin postconditions of the resulting concept lattice.
fn deep_lattice_diags(set: &TraceSet, opts: &LintOptions, k: usize) -> Vec<Diagnostic> {
    let filter = opts
        .filter
        .clone()
        .unwrap_or_else(|| FilterConfig::everything(k));
    let params = Params::new(
        filter,
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let mut table = LoopTable::new();
    let run = analyze_opts(
        set,
        &params,
        &mut table,
        &PipelineOptions {
            threads: opts.threads,
            ..PipelineOptions::default()
        },
    );
    rules::check_lattice(&run.lattice, &run.context)
}

/// Lint reports for both executions of a diff, returned by
/// [`crate::try_diff_runs_opts`] when [`LintGate::Deny`] trips.
#[derive(Debug, Clone)]
pub struct LintFailure {
    /// Report for the normal execution.
    pub normal: LintReport,
    /// Report for the faulty execution.
    pub faulty: LintReport,
}

impl fmt::Display for LintFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint gate denied: {} error(s) in the normal run, {} in the faulty run",
            self.normal.error_count(),
            self.faulty.error_count()
        )
    }
}

impl std::error::Error for LintFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_masters;
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;
    use tracelint::Severity;

    fn clean_run() -> TraceSet {
        let registry = Arc::new(FunctionRegistry::new());
        record_masters(&registry, 4, |_p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..6 {
                tr.leaf("MPI_Allreduce");
                tr.leaf("compute");
            }
            tr.leaf("MPI_Finalize");
        })
    }

    fn run_with_divergent_rank() -> TraceSet {
        let registry = Arc::new(FunctionRegistry::new());
        record_masters(&registry, 4, |p, tr| {
            tr.leaf("MPI_Init");
            if p == 2 {
                tr.leaf("MPI_Reduce");
            } else {
                tr.leaf("MPI_Allreduce");
            }
            tr.leaf("MPI_Finalize");
        })
    }

    #[test]
    fn clean_run_lints_clean() {
        // With the pipeline's own (live) filter, nothing fires.
        let report = lint_set(
            &clean_run(),
            &LintOptions {
                filter: Some(FilterConfig::mpi_all(10)),
                ..LintOptions::default()
            },
        );
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn divergent_rank_trips_tl002_in_both_domains() {
        let set = run_with_divergent_rank();
        for domain in [LintDomain::Expanded, LintDomain::Compressed] {
            let report = lint_set(
                &set,
                &LintOptions {
                    domain,
                    ..LintOptions::default()
                },
            );
            assert!(
                report.codes().contains(&RuleCode::CollectiveOrder),
                "{domain:?}: {}",
                report.render_text()
            );
            assert!(report.has_errors());
        }
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let set = run_with_divergent_rank();
        for domain in [LintDomain::Expanded, LintDomain::Compressed] {
            let base = lint_set(
                &set,
                &LintOptions {
                    threads: 1,
                    domain,
                    ..LintOptions::default()
                },
            );
            for threads in [2usize, 0] {
                let got = lint_set(
                    &set,
                    &LintOptions {
                        threads,
                        domain,
                        ..LintOptions::default()
                    },
                );
                assert_eq!(
                    base.render_text(),
                    got.render_text(),
                    "{domain:?}/{threads}"
                );
                assert_eq!(
                    base.render_json(),
                    got.render_json(),
                    "{domain:?}/{threads}"
                );
            }
        }
    }

    #[test]
    fn dead_and_broken_custom_filters_trip_tl004() {
        let set = clean_run();
        // Dead (valid but matches nothing) → warning.
        let dead = lint_set(
            &set,
            &LintOptions {
                filter: Some(FilterConfig::parse_lenient("11.cust:^CUDA_.K10").unwrap()),
                ..LintOptions::default()
            },
        );
        assert!(dead.codes().contains(&RuleCode::DeadFilter));
        assert_eq!(dead.error_count(), 0);
        assert_eq!(dead.warning_count(), 1);

        // Unparsable → error, span at the offending byte (the `*`
        // at byte 0 has nothing to repeat).
        let broken = lint_set(
            &set,
            &LintOptions {
                filter: Some(FilterConfig::parse_lenient("11.cust:*oops.K10").unwrap()),
                ..LintOptions::default()
            },
        );
        let d = broken
            .diagnostics()
            .iter()
            .find(|d| d.code == RuleCode::DeadFilter)
            .expect("TL004 fired");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span, Some(Span::at(0)));

        // Unsatisfiable anchors → error.
        let unsat = lint_set(
            &set,
            &LintOptions {
                filter: Some(FilterConfig::parse_lenient("11.cust:a$b.K10").unwrap()),
                ..LintOptions::default()
            },
        );
        assert!(unsat.has_errors());
        assert!(unsat.render_text().contains("cannot match any string"));
    }

    #[test]
    fn preset_probe_flags_dead_table_i_rows() {
        // Without a filter the pass audits the Table I presets. A
        // pure-MPI corpus leaves the OMP preset (among others) dead —
        // warnings only, never errors.
        let report = lint_set(&clean_run(), &LintOptions::default());
        assert!(!report.has_errors(), "{}", report.render_text());
        let text = report.render_text();
        assert!(text.contains("OMP All"), "{text}");
        assert!(!text.contains("`MPI All`"), "{text}");
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.code == RuleCode::DeadFilter));
    }

    #[test]
    fn deep_pass_checks_the_lattice() {
        let report = lint_set(
            &clean_run(),
            &LintOptions {
                deep: true,
                filter: Some(FilterConfig::mpi_all(10)),
                ..LintOptions::default()
            },
        );
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
