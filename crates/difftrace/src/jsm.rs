//! Jaccard Similarity Matrices and their diffs.
//!
//! `JSM[i][j]` is the (weighted) Jaccard similarity of traces `i` and
//! `j`; `JSM_D = |JSM_faulty − JSM_normal|` quantifies how much the
//! fault changed each pairwise relation — the paper's "sky subtraction"
//! (§II, footnote): asymmetries exist even in healthy runs (master vs
//! worker), so it is the *change* of the similarity structure that
//! matters, not the similarity itself.

use dt_trace::TraceId;
use fca::FormalContext;
use std::fmt;

/// Two matrices cover different trace sets, so their cells cannot be
/// subtracted. Carries the offending ids so the caller can print a
/// diagnosis instead of aborting — ragged corpora are an input error,
/// not a programming error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misaligned {
    /// Traces in the left matrix that the right one lacks.
    pub missing: Vec<TraceId>,
    /// Traces in the right matrix that the left one lacks.
    pub extra: Vec<TraceId>,
}

impl fmt::Display for Misaligned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = |ids: &[TraceId]| {
            ids.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        if self.missing.is_empty() && self.extra.is_empty() {
            return write!(f, "JSMs cover the same traces in different orders");
        }
        write!(f, "JSMs cover different trace sets:")?;
        if !self.missing.is_empty() {
            write!(f, " missing [{}]", list(&self.missing))?;
        }
        if !self.extra.is_empty() {
            write!(f, " extra [{}]", list(&self.extra))?;
        }
        Ok(())
    }
}

impl std::error::Error for Misaligned {}

/// A labelled pairwise similarity (or similarity-difference) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct JsmMatrix {
    /// Trace labels, in matrix order.
    pub ids: Vec<TraceId>,
    /// Symmetric matrix, `m[i][j] ∈ [0, 1]`.
    pub m: Vec<Vec<f64>>,
}

impl JsmMatrix {
    /// Compute from a formal context whose objects are the traces in
    /// `ids` order.
    pub fn from_context(ctx: &FormalContext, ids: Vec<TraceId>) -> JsmMatrix {
        JsmMatrix::from_context_opts(ctx, ids, 1)
    }

    /// Like [`JsmMatrix::from_context`], computing the O(n²) rows on up
    /// to `threads` threads (0 = available parallelism, ≤1 = inline).
    /// `weighted_jaccard` is bitwise symmetric, so per-row computation
    /// produces the exact same floats as the sequential
    /// mirrored-triangle fill.
    pub fn from_context_opts(ctx: &FormalContext, ids: Vec<TraceId>, threads: usize) -> JsmMatrix {
        assert_eq!(ctx.num_objects(), ids.len());
        let threads = crate::sync::effective_threads(threads, ids.len());
        if threads <= 1 {
            return JsmMatrix {
                ids,
                m: fca::jaccard_matrix(ctx),
            };
        }
        let rows: Vec<usize> = (0..ids.len()).collect();
        let m = crate::sync::par_map(&rows, threads, |_, &i| fca::jaccard_row(ctx, i));
        JsmMatrix { ids, m }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// `JSM_D = |self − other|`, elementwise. Returns [`Misaligned`]
    /// (naming the offending trace ids) when the two matrices cover
    /// different trace sets — analyses of a pair must be aligned first
    /// (see `pipeline`), but ragged inputs reached from the CLI must be
    /// diagnosed, never abort the process.
    pub fn diff(&self, other: &JsmMatrix) -> Result<JsmMatrix, Misaligned> {
        self.diff_opts(other, 1)
    }

    /// [`JsmMatrix::diff`] computed row-by-row on up to `threads`
    /// threads. `|a − b|` is computed per cell, so the split cannot
    /// change any float.
    pub fn diff_opts(&self, other: &JsmMatrix, threads: usize) -> Result<JsmMatrix, Misaligned> {
        if self.ids != other.ids {
            let missing = self
                .ids
                .iter()
                .filter(|t| !other.ids.contains(t))
                .copied()
                .collect();
            let extra = other
                .ids
                .iter()
                .filter(|t| !self.ids.contains(t))
                .copied()
                .collect();
            return Err(Misaligned { missing, extra });
        }
        let threads = crate::sync::effective_threads(threads, self.len());
        let rows: Vec<usize> = (0..self.len()).collect();
        let m = crate::sync::par_map(&rows, threads, |_, &i| {
            self.m[i]
                .iter()
                .zip(&other.m[i])
                .map(|(a, b)| (a - b).abs())
                .collect::<Vec<f64>>()
        });
        Ok(JsmMatrix {
            ids: self.ids.clone(),
            m,
        })
    }

    /// Per-trace change score: the row sum (how much this trace's
    /// relations to everyone else changed). Used to rank suspects.
    pub fn row_scores(&self) -> Vec<(TraceId, f64)> {
        self.row_scores_opts(1)
    }

    /// [`JsmMatrix::row_scores`] with the row sums computed on up to
    /// `threads` threads. Each row is summed left-to-right by one
    /// thread, so the result is bitwise identical to the sequential
    /// path.
    pub fn row_scores_opts(&self, threads: usize) -> Vec<(TraceId, f64)> {
        let threads = crate::sync::effective_threads(threads, self.len());
        crate::sync::par_map(&self.ids, threads, |i, &id| {
            (id, self.m[i].iter().sum::<f64>())
        })
    }

    /// Render as CSV (header row + one line per trace).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("trace");
        for id in &self.ids {
            out.push_str(&format!(",{id}"));
        }
        out.push('\n');
        for (i, id) in self.ids.iter().enumerate() {
            out.push_str(&id.to_string());
            for v in &self.m[i] {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// ASCII heatmap (Figure 4): darker glyph = higher value.
    pub fn render_heatmap(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        out.push_str("      ");
        for id in &self.ids {
            out.push_str(&format!("{:>5}", id.to_string()));
        }
        out.push('\n');
        for (i, id) in self.ids.iter().enumerate() {
            out.push_str(&format!("{:>5} ", id.to_string()));
            for &v in &self.m[i] {
                let idx = ((v.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64).round() as usize;
                let c = SHADES[idx] as char;
                out.push_str(&format!("  {c}{c} "));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for JsmMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_heatmap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(ids: Vec<TraceId>, m: Vec<Vec<f64>>) -> JsmMatrix {
        JsmMatrix { ids, m }
    }

    fn ids(n: u32) -> Vec<TraceId> {
        (0..n).map(TraceId::master).collect()
    }

    #[test]
    fn from_context_matches_fca() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("0.0", ["a", "b"]);
        ctx.add_object_unweighted("1.0", ["b", "c"]);
        let j = JsmMatrix::from_context(&ctx, ids(2));
        assert!((j.m[0][1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(j.m[0][0], 1.0);
    }

    #[test]
    fn diff_is_elementwise_abs() {
        let a = mk(ids(2), vec![vec![1.0, 0.8], vec![0.8, 1.0]]);
        let b = mk(ids(2), vec![vec![1.0, 0.3], vec![0.3, 1.0]]);
        let d = a.diff(&b).unwrap();
        assert!((d.m[0][1] - 0.5).abs() < 1e-12);
        assert_eq!(d.m[0][0], 0.0);
    }

    #[test]
    fn diff_diagnoses_misalignment_instead_of_panicking() {
        let a = mk(ids(2), vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = mk(
            vec![TraceId::master(0), TraceId::master(5)],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        );
        let err = a.diff(&b).unwrap_err();
        assert_eq!(err.missing, vec![TraceId::master(1)]);
        assert_eq!(err.extra, vec![TraceId::master(5)]);
        let msg = err.to_string();
        assert!(msg.contains("different trace sets"), "{msg}");
        assert!(msg.contains("missing [1.0]"), "{msg}");
        assert!(msg.contains("extra [5.0]"), "{msg}");
        // Same sets, different order: still diagnosed, differently.
        let c = mk(
            vec![TraceId::master(1), TraceId::master(0)],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        );
        let err = a.diff(&c).unwrap_err();
        assert!(err.missing.is_empty() && err.extra.is_empty());
        assert!(err.to_string().contains("different orders"), "{err}");
    }

    #[test]
    fn row_scores_rank_changed_traces() {
        let d = mk(
            ids(3),
            vec![
                vec![0.0, 0.1, 0.0],
                vec![0.1, 0.0, 0.9],
                vec![0.0, 0.9, 0.0],
            ],
        );
        let scores = d.row_scores();
        let max = scores.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(max.0, TraceId::master(1));
    }

    #[test]
    fn renders() {
        let j = mk(ids(2), vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        let csv = j.to_csv();
        assert!(csv.starts_with("trace,0.0,1.0"));
        assert!(csv.contains("0.5000"));
        let hm = j.render_heatmap();
        assert!(hm.contains('@'), "diagonal should be darkest: {hm}");
    }
}
