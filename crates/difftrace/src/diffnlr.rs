//! diffNLR — the paper's visual diff of loop-summarized traces
//! (§II-F-1, Figures 5–7).
//!
//! `diffNLR(x) ≡ diffNLR(T_x, T'_x)`: the Myers diff of the NLR of
//! thread `x`'s normal trace against its faulty trace, grouped into a
//! *main stem* of common blocks plus normal-only and faulty-only
//! blocks. The text rendering uses `=` for the stem, `-` for
//! normal-only (blue in the paper), `+` for faulty-only (red).

use diffalg::{align_blocks, diff, Block, BlockKind};
use dt_trace::TraceId;
use std::fmt;

/// A rendered diffNLR view of one thread.
#[derive(Debug, Clone)]
pub struct DiffNlr {
    /// Which thread is being compared.
    pub id: TraceId,
    /// Aligned blocks over the rendered NLR entries.
    pub blocks: Vec<Block<String>>,
    /// Was the faulty trace truncated (thread killed mid-call)?
    pub faulty_truncated: bool,
    /// Why the faulty trace diverged, when a pre-pass established it
    /// (e.g. the hbcheck wait-for cycle this thread participates in).
    pub divergence_cause: Option<String>,
}

impl DiffNlr {
    /// Diff two rendered NLR sequences (e.g. `["MPI_Init", "L1 ^ 16",
    /// "MPI_Finalize"]`).
    pub fn new(
        id: TraceId,
        normal: &[String],
        faulty: &[String],
        faulty_truncated: bool,
    ) -> DiffNlr {
        let script = diff(normal, faulty);
        DiffNlr {
            id,
            blocks: align_blocks(&script, normal, faulty),
            faulty_truncated,
            divergence_cause: None,
        }
    }

    /// Build a view from already-aligned blocks (used by
    /// [`crate::pipeline::DiffRun::diff_nlr`], which drills into
    /// changed loop bodies before rendering).
    pub fn from_blocks(id: TraceId, blocks: Vec<Block<String>>, faulty_truncated: bool) -> DiffNlr {
        DiffNlr {
            id,
            blocks,
            faulty_truncated,
            divergence_cause: None,
        }
    }

    /// Attach (or clear) the established divergence cause.
    pub fn with_cause(mut self, cause: Option<String>) -> DiffNlr {
        self.divergence_cause = cause;
        self
    }

    /// True when normal and faulty are identical.
    pub fn is_identical(&self) -> bool {
        self.blocks.iter().all(|b| b.kind == BlockKind::Common)
    }

    /// Entries present only in the normal run.
    pub fn normal_only(&self) -> Vec<&str> {
        self.side(BlockKind::LeftOnly)
    }

    /// Entries present only in the faulty run.
    pub fn faulty_only(&self) -> Vec<&str> {
        self.side(BlockKind::RightOnly)
    }

    fn side(&self, kind: BlockKind) -> Vec<&str> {
        self.blocks
            .iter()
            .filter(|b| b.kind == kind)
            .flat_map(|b| b.items.iter().map(|s| s.as_str()))
            .collect()
    }

    /// Render side-by-side (normal | faulty) like the paper's Figures
    /// 5–7: the common stem spans both columns, one-sided blocks leave
    /// the other column blank.
    pub fn render_side_by_side(&self) -> String {
        let width = self
            .blocks
            .iter()
            .flat_map(|b| b.items.iter().map(|s| s.chars().count()))
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = format!(
            "diffNLR({})\n{:<width$} | {:<width$}\n{}\n",
            self.id,
            "normal",
            "faulty",
            "-".repeat(width * 2 + 3),
        );
        for b in &self.blocks {
            for item in &b.items {
                let line = match b.kind {
                    BlockKind::Common => format!("{item:<width$} | {item:<width$}"),
                    BlockKind::LeftOnly => format!("{item:<width$} | {:<width$}", ""),
                    BlockKind::RightOnly => format!("{:<width$} | {item:<width$}", ""),
                };
                out.push_str(line.trim_end());
                out.push('\n');
            }
        }
        if self.faulty_truncated {
            out.push_str(&format!(
                "{:<width$} | <truncated: last call never returned>\n",
                ""
            ));
        }
        if let Some(cause) = &self.divergence_cause {
            out.push_str(&format!("cause: {cause}\n"));
        }
        out
    }

    /// Render the two-column text view.
    pub fn render(&self) -> String {
        let mut out = format!(
            "diffNLR({})  [= common | - normal only | + faulty only]\n",
            self.id
        );
        for b in &self.blocks {
            let mark = match b.kind {
                BlockKind::Common => '=',
                BlockKind::LeftOnly => '-',
                BlockKind::RightOnly => '+',
            };
            for item in &b.items {
                out.push_str(&format!("  {mark} {item}\n"));
            }
        }
        if self.faulty_truncated {
            out.push_str("  ! faulty trace truncated: the last call above never returned\n");
        }
        if let Some(cause) = &self.divergence_cause {
            out.push_str(&format!("  ! cause: {cause}\n"));
        }
        out
    }
}

impl fmt::Display for DiffNlr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn swap_bug_figure_5b() {
        // T5: L1^16; T'5: L1^7 L0^9 — both reach MPI_Finalize.
        let d = DiffNlr::new(
            TraceId::master(5),
            &v(&["MPI_Init", "L1 ^ 16", "MPI_Finalize"]),
            &v(&["MPI_Init", "L1 ^ 7", "L0 ^ 9", "MPI_Finalize"]),
            false,
        );
        assert!(!d.is_identical());
        assert_eq!(d.normal_only(), vec!["L1 ^ 16"]);
        assert_eq!(d.faulty_only(), vec!["L1 ^ 7", "L0 ^ 9"]);
        let r = d.render();
        assert!(r.contains("= MPI_Init"));
        assert!(r.contains("- L1 ^ 16"));
        assert!(r.contains("+ L0 ^ 9"));
        assert!(r.contains("= MPI_Finalize"));
        assert!(!r.contains('!'));
    }

    #[test]
    fn dl_bug_figure_6_truncation() {
        // T'5 never reaches MPI_Finalize.
        let d = DiffNlr::new(
            TraceId::master(5),
            &v(&["MPI_Init", "L1 ^ 16", "MPI_Finalize"]),
            &v(&["MPI_Init", "L1 ^ 7", "MPI_Recv"]),
            true,
        );
        assert!(d.normal_only().contains(&"MPI_Finalize"));
        assert!(d.render().contains("truncated"));
    }

    #[test]
    fn side_by_side_layout() {
        let d = DiffNlr::new(
            TraceId::master(5),
            &v(&["MPI_Init", "L1 ^ 16", "MPI_Finalize"]),
            &v(&["MPI_Init", "L1 ^ 7", "L0 ^ 9", "MPI_Finalize"]),
            false,
        );
        let s = d.render_side_by_side();
        // Common rows have the item in both columns.
        let init_row = s.lines().find(|l| l.contains("MPI_Init")).unwrap();
        assert_eq!(init_row.matches("MPI_Init").count(), 2);
        // Left-only rows have an empty right column.
        let left = s.lines().find(|l| l.contains("L1 ^ 16")).unwrap();
        assert!(left.trim_end().ends_with('|'), "{left:?}");
        // Right-only rows start blank.
        let right = s.lines().find(|l| l.contains("L0 ^ 9")).unwrap();
        assert!(right.starts_with(' '), "{right:?}");
        assert!(!s.contains("truncated"));
        // Truncation note appears when flagged.
        let d2 = DiffNlr::new(TraceId::master(5), &v(&["a"]), &v(&["b"]), true);
        assert!(d2.render_side_by_side().contains("truncated"));
    }

    #[test]
    fn identical_traces() {
        let d = DiffNlr::new(TraceId::new(1, 2), &v(&["a", "b"]), &v(&["a", "b"]), false);
        assert!(d.is_identical());
        assert!(d.normal_only().is_empty());
        assert!(d.faulty_only().is_empty());
        assert!(d.render().starts_with("diffNLR(1.2)"));
    }
}
