//! `tracelint` — static analysis for whole-program traces.
//!
//! DiffTrace's diffing pipeline (filter → NLR → FCA → JSM → ranking)
//! silently trusts its inputs: an unbalanced call/return stream, a
//! rank-divergent collective order, or a dead filter pattern flows
//! straight into the summarization stages and corrupts the ranking
//! downstream. `tracelint` checks traces and pipeline configuration
//! *before* diffing and emits structured diagnostics with stable rule
//! codes, so problems are reported at the input where they originate
//! instead of as a mysterious B-score three stages later.
//!
//! # Rule catalog
//!
//! | code  | checks                                             | compressed-domain |
//! |-------|----------------------------------------------------|-------------------|
//! | TL001 | call/return balance and stack discipline           | yes ([`compressed::StackEffect`]) |
//! | TL002 | cross-rank collective-sequence consistency         | yes (projected compressed streams) |
//! | TL003 | truncated/poisoned/empty-trace detection           | yes (shares TL001's stack effects) |
//! | TL004 | dead-filter analysis (patterns matching nothing)   | n/a (configuration rule) |
//! | TL005 | NLR lossless-roundtrip verification                | n/a (relates both domains) |
//! | TL006 | FCA lattice postconditions (Godin invariants)      | n/a (`--deep` only) |
//!
//! Rules TL001–TL003 have two implementations: the *expanded* rules in
//! [`rules`] walk raw event streams and report precise event offsets;
//! the *compressed* rules in [`compressed`] run directly on the
//! NLR-compressed term without expansion — O(compressed size) instead
//! of O(trace), in the spirit of Kini et al.'s compressed-trace race
//! detection. A property test asserts the two always agree on the
//! verdict.
//!
//! The diagnostic/report machinery (severities, spans, canonical
//! ordering, text+JSON renderers) lives in the shared [`dt_diag`]
//! crate, generic over the rule-code enum; this crate instantiates it
//! with [`RuleCode`] and re-exports the concrete types under their
//! original names, so the output format is unchanged byte for byte.
//!
//! This crate is pure analysis: it depends on the substrate crates
//! (`dt-trace`, `dt-diag`, `nlr`, `fca`, `mpisim`, `rex`) but not on
//! the pipeline. The `difftrace` crate wires it into `PipelineOptions`
//! gating and the `difftrace lint` CLI subcommand.

pub mod compressed;
pub mod rules;

pub use dt_diag::{Severity, Span};
use std::fmt;

/// A lint finding, anchored by a [`RuleCode`].
pub type Diagnostic = dt_diag::Diagnostic<RuleCode>;

/// The result of a lint pass: diagnostics in canonical order.
pub type LintReport = dt_diag::Report<RuleCode>;

/// Stable rule identifiers. The numeric codes are part of the output
/// format contract (scripts grep for them); never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    /// TL001 — call/return balance and stack discipline.
    StackDiscipline,
    /// TL002 — cross-rank collective-sequence consistency.
    CollectiveOrder,
    /// TL003 — truncated / poisoned / empty trace.
    Truncation,
    /// TL004 — filter pattern that selects nothing (or cannot).
    DeadFilter,
    /// TL005 — NLR expansion does not reproduce the original stream.
    NlrRoundtrip,
    /// TL006 — FCA lattice postcondition (Godin invariant) violated.
    LatticeInvariant,
}

impl RuleCode {
    /// The stable `TL0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::StackDiscipline => "TL001",
            RuleCode::CollectiveOrder => "TL002",
            RuleCode::Truncation => "TL003",
            RuleCode::DeadFilter => "TL004",
            RuleCode::NlrRoundtrip => "TL005",
            RuleCode::LatticeInvariant => "TL006",
        }
    }

    /// One-line description of what the rule checks.
    pub fn title(self) -> &'static str {
        match self {
            RuleCode::StackDiscipline => "call/return balance and stack discipline",
            RuleCode::CollectiveOrder => "cross-rank collective-sequence consistency",
            RuleCode::Truncation => "truncated or poisoned trace",
            RuleCode::DeadFilter => "dead filter pattern",
            RuleCode::NlrRoundtrip => "NLR lossless roundtrip",
            RuleCode::LatticeInvariant => "FCA lattice postconditions",
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl dt_diag::Code for RuleCode {
    fn as_str(self) -> &'static str {
        RuleCode::as_str(self)
    }

    fn title(self) -> &'static str {
        RuleCode::title(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::TraceId;

    #[test]
    fn codes_are_stable() {
        assert_eq!(RuleCode::StackDiscipline.to_string(), "TL001");
        assert_eq!(RuleCode::CollectiveOrder.to_string(), "TL002");
        assert_eq!(RuleCode::Truncation.to_string(), "TL003");
        assert_eq!(RuleCode::DeadFilter.to_string(), "TL004");
        assert_eq!(RuleCode::NlrRoundtrip.to_string(), "TL005");
        assert_eq!(RuleCode::LatticeInvariant.to_string(), "TL006");
    }

    #[test]
    fn report_sorts_canonically_and_counts() {
        let global = Diagnostic::warning(RuleCode::DeadFilter, "dead");
        let late = Diagnostic::error(RuleCode::StackDiscipline, "late")
            .with_trace(TraceId::master(1))
            .with_span(Span::at(9));
        let early = Diagnostic::error(RuleCode::Truncation, "early")
            .with_trace(TraceId::master(0))
            .with_span(Span::at(2));
        // Insertion order scrambled on purpose.
        let r = LintReport::new(vec![global.clone(), late.clone(), early.clone()]);
        assert_eq!(r.diagnostics(), &[early, late, global]);
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.codes().len(), 3);
    }

    #[test]
    fn text_rendering_shape() {
        let d = Diagnostic::error(RuleCode::StackDiscipline, "crossed return")
            .with_trace(TraceId::new(2, 1))
            .with_span(Span::new(4, 5))
            .with_hint("check instrumentation");
        let txt = LintReport::new(vec![d]).render_text();
        assert!(txt.contains("error[TL001] trace 2.1 @ [4, 5): crossed return"));
        assert!(txt.contains("  hint: check instrumentation"));
        assert!(txt.ends_with("1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn json_rendering_escapes_and_omits() {
        let d = Diagnostic::warning(RuleCode::DeadFilter, "pattern `a\"b\\` is dead");
        let js = LintReport::new(vec![d]).render_json();
        assert!(js.starts_with("{\"errors\":0,\"warnings\":1,"));
        assert!(js.contains(r#"pattern `a\"b\\` is dead"#));
        // No trace/span/hint keys when absent.
        assert!(!js.contains("\"trace\""));
        assert!(!js.contains("\"span\""));
        assert!(!js.contains("\"hint\""));
        let with_all = Diagnostic::error(RuleCode::NlrRoundtrip, "m")
            .with_trace(TraceId::master(7))
            .with_span(Span::at(3))
            .with_hint("h\nnewline");
        let js = LintReport::new(vec![with_all]).render_json();
        assert!(js.contains("\"trace\":\"7.0\""));
        assert!(js.contains("\"span\":{\"start\":3,\"end\":4}"));
        assert!(js.contains("\"hint\":\"h\\nnewline\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = LintReport::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(
            r.render_json(),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
    }
}
