//! `tracelint` — static analysis for whole-program traces.
//!
//! DiffTrace's diffing pipeline (filter → NLR → FCA → JSM → ranking)
//! silently trusts its inputs: an unbalanced call/return stream, a
//! rank-divergent collective order, or a dead filter pattern flows
//! straight into the summarization stages and corrupts the ranking
//! downstream. `tracelint` checks traces and pipeline configuration
//! *before* diffing and emits structured diagnostics with stable rule
//! codes, so problems are reported at the input where they originate
//! instead of as a mysterious B-score three stages later.
//!
//! # Rule catalog
//!
//! | code  | checks                                             | compressed-domain |
//! |-------|----------------------------------------------------|-------------------|
//! | TL001 | call/return balance and stack discipline           | yes ([`compressed::StackEffect`]) |
//! | TL002 | cross-rank collective-sequence consistency         | yes (projected compressed streams) |
//! | TL003 | truncated/poisoned/empty-trace detection           | yes (shares TL001's stack effects) |
//! | TL004 | dead-filter analysis (patterns matching nothing)   | n/a (configuration rule) |
//! | TL005 | NLR lossless-roundtrip verification                | n/a (relates both domains) |
//! | TL006 | FCA lattice postconditions (Godin invariants)      | n/a (`--deep` only) |
//!
//! Rules TL001–TL003 have two implementations: the *expanded* rules in
//! [`rules`] walk raw event streams and report precise event offsets;
//! the *compressed* rules in [`compressed`] run directly on the
//! NLR-compressed term without expansion — O(compressed size) instead
//! of O(trace), in the spirit of Kini et al.'s compressed-trace race
//! detection. A property test asserts the two always agree on the
//! verdict.
//!
//! This crate is pure analysis: it depends on the substrate crates
//! (`dt-trace`, `nlr`, `fca`, `mpisim`, `rex`) but not on the pipeline.
//! The `difftrace` crate wires it into `PipelineOptions` gating and the
//! `difftrace lint` CLI subcommand.

pub mod compressed;
pub mod rules;

use dt_trace::TraceId;
use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is.
///
/// `Error`s indicate inputs the pipeline cannot analyze meaningfully
/// (and fail a `LintGate::Deny` run); `Warning`s flag suspicious but
/// analyzable inputs — e.g. a truncated trace *is* the hang signature
/// the paper diffs against, so truncation alone is never an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but analyzable.
    Warning,
    /// The pipeline's assumptions are violated.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable rule identifiers. The numeric codes are part of the output
/// format contract (scripts grep for them); never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    /// TL001 — call/return balance and stack discipline.
    StackDiscipline,
    /// TL002 — cross-rank collective-sequence consistency.
    CollectiveOrder,
    /// TL003 — truncated / poisoned / empty trace.
    Truncation,
    /// TL004 — filter pattern that selects nothing (or cannot).
    DeadFilter,
    /// TL005 — NLR expansion does not reproduce the original stream.
    NlrRoundtrip,
    /// TL006 — FCA lattice postcondition (Godin invariant) violated.
    LatticeInvariant,
}

impl RuleCode {
    /// The stable `TL0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::StackDiscipline => "TL001",
            RuleCode::CollectiveOrder => "TL002",
            RuleCode::Truncation => "TL003",
            RuleCode::DeadFilter => "TL004",
            RuleCode::NlrRoundtrip => "TL005",
            RuleCode::LatticeInvariant => "TL006",
        }
    }

    /// One-line description of what the rule checks.
    pub fn title(self) -> &'static str {
        match self {
            RuleCode::StackDiscipline => "call/return balance and stack discipline",
            RuleCode::CollectiveOrder => "cross-rank collective-sequence consistency",
            RuleCode::Truncation => "truncated or poisoned trace",
            RuleCode::DeadFilter => "dead filter pattern",
            RuleCode::NlrRoundtrip => "NLR lossless roundtrip",
            RuleCode::LatticeInvariant => "FCA lattice postconditions",
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A half-open `[start, end)` range. For trace diagnostics the unit is
/// *event offsets* within the trace; for TL004 it is *byte offsets*
/// within the filter pattern string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// First offset covered.
    pub start: usize,
    /// One past the last offset covered.
    pub end: usize,
}

impl Span {
    /// `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A single offset, `[at, at+1)`.
    pub fn at(at: usize) -> Span {
        Span {
            start: at,
            end: at + 1,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// One finding: rule code, severity, optional trace/span anchor, a
/// human-readable message, and an optional fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: RuleCode,
    /// How bad it is.
    pub severity: Severity,
    /// The trace the finding anchors to; `None` for corpus-wide or
    /// configuration findings (TL004, TL006).
    pub trace: Option<TraceId>,
    /// Event-offset span (byte span for TL004); `None` when the
    /// finding has no precise location (e.g. compressed-domain checks).
    pub span: Option<Span>,
    /// What went wrong.
    pub message: String,
    /// How to fix it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A bare diagnostic; attach anchors with the `with_*` builders.
    pub fn new(code: RuleCode, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            trace: None,
            span: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Shorthand for an error.
    pub fn error(code: RuleCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// Shorthand for a warning.
    pub fn warning(code: RuleCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, message)
    }

    /// Anchor to a trace.
    pub fn with_trace(mut self, id: TraceId) -> Diagnostic {
        self.trace = Some(id);
        self
    }

    /// Anchor to a span within the trace (or pattern).
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }

    /// Canonical ordering key: per-trace findings first (by trace, then
    /// span start), then corpus-wide findings; ties broken by code,
    /// severity, and message so the full order is total. The report
    /// sorts by this, which is what makes output byte-identical
    /// regardless of how many threads produced the diagnostics.
    fn sort_key(&self) -> (bool, Option<TraceId>, usize, RuleCode, Severity, &str) {
        (
            self.trace.is_none(),
            self.trace,
            self.span.map_or(0, |s| s.start),
            self.code,
            self.severity,
            &self.message,
        )
    }
}

/// The result of a lint pass: diagnostics in canonical order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report, sorting `diagnostics` into canonical order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        LintReport { diagnostics }
    }

    /// The findings, canonically ordered.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True if nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any finding is an error (what `LintGate::Deny` trips on).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// The distinct rule codes that fired.
    pub fn codes(&self) -> BTreeSet<RuleCode> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// The `(code, severity)` verdict set for one trace — the unit the
    /// compressed/expanded agreement property is stated over.
    pub fn verdicts_for(&self, id: TraceId) -> BTreeSet<(RuleCode, Severity)> {
        self.diagnostics
            .iter()
            .filter(|d| d.trace == Some(id))
            .map(|d| (d.code, d.severity))
            .collect()
    }

    /// Human-readable rendering, one finding per line (plus indented
    /// hint lines), ending with a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(d.severity.label());
            out.push('[');
            out.push_str(d.code.as_str());
            out.push(']');
            if let Some(t) = d.trace {
                out.push_str(&format!(" trace {t}"));
            }
            if let Some(s) = d.span {
                out.push_str(&format!(" @ {s}"));
            }
            out.push_str(": ");
            out.push_str(&d.message);
            out.push('\n');
            if let Some(h) = &d.hint {
                out.push_str("  hint: ");
                out.push_str(h);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// JSON rendering (hand-rolled; the workspace has no serde). The
    /// schema is stable:
    ///
    /// ```json
    /// {"errors":1,"warnings":0,"diagnostics":[
    ///   {"code":"TL001","severity":"error","trace":"3.0",
    ///    "span":{"start":5,"end":6},"message":"…","hint":"…"}]}
    /// ```
    ///
    /// `trace`, `span`, and `hint` are omitted when absent.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\"",
                d.code.as_str(),
                d.severity.label()
            ));
            if let Some(t) = d.trace {
                out.push_str(&format!(",\"trace\":\"{t}\""));
            }
            if let Some(s) = d.span {
                out.push_str(&format!(
                    ",\"span\":{{\"start\":{},\"end\":{}}}",
                    s.start, s.end
                ));
            }
            out.push_str(",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push('"');
            if let Some(h) = &d.hint {
                out.push_str(",\"hint\":\"");
                out.push_str(&json_escape(h));
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(RuleCode::StackDiscipline.to_string(), "TL001");
        assert_eq!(RuleCode::CollectiveOrder.to_string(), "TL002");
        assert_eq!(RuleCode::Truncation.to_string(), "TL003");
        assert_eq!(RuleCode::DeadFilter.to_string(), "TL004");
        assert_eq!(RuleCode::NlrRoundtrip.to_string(), "TL005");
        assert_eq!(RuleCode::LatticeInvariant.to_string(), "TL006");
    }

    #[test]
    fn report_sorts_canonically_and_counts() {
        let global = Diagnostic::warning(RuleCode::DeadFilter, "dead");
        let late = Diagnostic::error(RuleCode::StackDiscipline, "late")
            .with_trace(TraceId::master(1))
            .with_span(Span::at(9));
        let early = Diagnostic::error(RuleCode::Truncation, "early")
            .with_trace(TraceId::master(0))
            .with_span(Span::at(2));
        // Insertion order scrambled on purpose.
        let r = LintReport::new(vec![global.clone(), late.clone(), early.clone()]);
        assert_eq!(r.diagnostics(), &[early, late, global]);
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.codes().len(), 3);
    }

    #[test]
    fn text_rendering_shape() {
        let d = Diagnostic::error(RuleCode::StackDiscipline, "crossed return")
            .with_trace(TraceId::new(2, 1))
            .with_span(Span::new(4, 5))
            .with_hint("check instrumentation");
        let txt = LintReport::new(vec![d]).render_text();
        assert!(txt.contains("error[TL001] trace 2.1 @ [4, 5): crossed return"));
        assert!(txt.contains("  hint: check instrumentation"));
        assert!(txt.ends_with("1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn json_rendering_escapes_and_omits() {
        let d = Diagnostic::warning(RuleCode::DeadFilter, "pattern `a\"b\\` is dead");
        let js = LintReport::new(vec![d]).render_json();
        assert!(js.starts_with("{\"errors\":0,\"warnings\":1,"));
        assert!(js.contains(r#"pattern `a\"b\\` is dead"#));
        // No trace/span/hint keys when absent.
        assert!(!js.contains("\"trace\""));
        assert!(!js.contains("\"span\""));
        assert!(!js.contains("\"hint\""));
        let with_all = Diagnostic::error(RuleCode::NlrRoundtrip, "m")
            .with_trace(TraceId::master(7))
            .with_span(Span::at(3))
            .with_hint("h\nnewline");
        let js = LintReport::new(vec![with_all]).render_json();
        assert!(js.contains("\"trace\":\"7.0\""));
        assert!(js.contains("\"span\":{\"start\":3,\"end\":4}"));
        assert!(js.contains("\"hint\":\"h\\nnewline\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = LintReport::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(
            r.render_json(),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
    }
}
