//! Expanded-domain rules: walk raw event streams and report findings
//! with precise event-offset spans.
//!
//! Each rule is a pure function from trace data to diagnostics; the
//! pipeline glue (parallel dispatch, gating) lives in `difftrace`.

#[cfg(test)]
use crate::Severity;
use crate::{Diagnostic, RuleCode, Span};
use dt_trace::{FunctionRegistry, Trace, TraceEvent, TraceId, TraceSet};
use fca::{BitSet, ConceptLattice, FormalContext};
use mpisim::collective::CollKind;
use nlr::{LoopTable, Nlr};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// TL001 + TL003 — stack discipline and truncation (expanded).
// ---------------------------------------------------------------------

/// Walk one trace's call/return stream. Emits TL001 errors for every
/// stack-discipline violation (crossed returns, returns with nothing
/// open) at the exact event offset, and a single TL003 finding
/// describing the end state (open frames, truncation, emptiness).
pub fn check_stack_discipline(trace: &Trace, registry: &FunctionRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for (i, e) in trace.events.iter().enumerate() {
        match e {
            TraceEvent::Call(f) => stack.push((f.0, i)),
            TraceEvent::Return(f) => match stack.pop() {
                Some((open, _)) if open == f.0 => {}
                Some((open, opened_at)) => out.push(
                    Diagnostic::error(
                        RuleCode::StackDiscipline,
                        format!(
                            "return from `{}` while `{}` (entered at event {}) is innermost",
                            name_of(registry, f.0),
                            name_of(registry, open),
                            opened_at,
                        ),
                    )
                    .with_trace(trace.id)
                    .with_span(Span::at(i))
                    .with_hint("calls and returns must nest; the tracer likely missed an event"),
                ),
                None => out.push(
                    Diagnostic::error(
                        RuleCode::StackDiscipline,
                        format!("return from `{}` with no open call", name_of(registry, f.0)),
                    )
                    .with_trace(trace.id)
                    .with_span(Span::at(i)),
                ),
            },
        }
    }
    out.extend(end_state_diag(
        trace.id,
        trace.events.len(),
        trace.truncated,
        &stack,
        registry,
    ));
    out
}

/// The TL003 end-state finding shared by the expanded walk above.
/// `stack` holds the still-open `(fn_id, opened_at)` frames.
fn end_state_diag(
    id: TraceId,
    len: usize,
    truncated: bool,
    stack: &[(u32, usize)],
    registry: &FunctionRegistry,
) -> Option<Diagnostic> {
    if len == 0 {
        return Some(
            Diagnostic::warning(RuleCode::Truncation, "empty trace: no events were recorded")
                .with_trace(id)
                .with_hint("the thread may have been spawned but never instrumented"),
        );
    }
    if !stack.is_empty() {
        let (inner, opened_at) = *stack.last().expect("non-empty stack");
        return Some(if truncated {
            Diagnostic::warning(
                RuleCode::Truncation,
                format!(
                    "truncated trace: {} call(s) still open; innermost `{}` entered at event {} \
                     never returned (hang signature)",
                    stack.len(),
                    name_of(registry, inner),
                    opened_at,
                ),
            )
            .with_trace(id)
            .with_span(Span::new(opened_at, len))
        } else {
            let (_, first_open) = stack[0];
            Diagnostic::error(
                RuleCode::Truncation,
                format!(
                    "{} call(s) never returned in a trace not flagged truncated",
                    stack.len()
                ),
            )
            .with_trace(id)
            .with_span(Span::new(first_open, len))
            .with_hint("either the capture was cut short (flag it truncated) or events were lost")
        });
    }
    if truncated {
        return Some(
            Diagnostic::warning(
                RuleCode::Truncation,
                "trace flagged truncated but its call/return stream is balanced",
            )
            .with_trace(id),
        );
    }
    None
}

fn name_of(registry: &FunctionRegistry, fn_id: u32) -> String {
    registry.name(dt_trace::FnId(fn_id))
}

// ---------------------------------------------------------------------
// TL002 — cross-rank collective order (expanded).
// ---------------------------------------------------------------------

/// Is `name` an MPI collective? Delegates to the simulator's
/// [`CollKind`] catalog; `MPI_Alltoall` is traced by real applications
/// but not modelled by the simulator, so it is recognized by name.
pub fn is_collective_name(name: &str) -> bool {
    CollKind::from_mpi_name(name).is_some() || name == "MPI_Alltoall"
}

/// The function IDs in `registry` that are collectives.
pub fn collective_fn_ids(registry: &FunctionRegistry) -> HashSet<u32> {
    registry
        .names()
        .iter()
        .enumerate()
        .filter(|(_, n)| is_collective_name(n))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Where a rank's collective order first departs from the reference
/// rank's. Ordinals count collectives (0-based), not raw events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollDivergence {
    /// A different collective at ordinal `ordinal`.
    Mismatch {
        /// First divergent collective ordinal.
        ordinal: u64,
        /// What the reference rank issued there.
        want: u32,
        /// What this rank issued instead.
        got: u32,
    },
    /// The rank stopped issuing collectives early without being
    /// truncated (a truncated rank's shorter sequence is the expected
    /// hang signature, not an inconsistency).
    Shortfall {
        /// Ordinal of the first missing collective.
        ordinal: u64,
        /// The collective the reference issued there.
        want: u32,
    },
    /// The rank issued more collectives than the (non-truncated)
    /// reference.
    Excess {
        /// Ordinal of the first extra collective.
        ordinal: u64,
        /// The extra collective.
        got: u32,
    },
}

/// Compare one rank's collective sequence against the reference
/// rank's. Both implementations (expanded here, compressed in
/// [`crate::compressed`]) reduce to this verdict, which is what the
/// agreement property is stated over.
pub fn divergence(
    reference: &[u32],
    ref_truncated: bool,
    seq: &[u32],
    truncated: bool,
) -> Option<CollDivergence> {
    let common = reference.len().min(seq.len());
    for j in 0..common {
        if reference[j] != seq[j] {
            return Some(CollDivergence::Mismatch {
                ordinal: j as u64,
                want: reference[j],
                got: seq[j],
            });
        }
    }
    if seq.len() < reference.len() && !truncated {
        return Some(CollDivergence::Shortfall {
            ordinal: seq.len() as u64,
            want: reference[seq.len()],
        });
    }
    if seq.len() > reference.len() && !ref_truncated {
        return Some(CollDivergence::Excess {
            ordinal: reference.len() as u64,
            got: seq[reference.len()],
        });
    }
    None
}

/// One rank's collective-call sequence, with the trace/event site of
/// every collective so diagnostics can point at exact offsets.
#[derive(Debug, Clone)]
pub struct RankCollSeq {
    /// The rank.
    pub process: u32,
    /// Collective function IDs in issue order (threads concatenated in
    /// thread order; in practice collectives live on the master).
    pub seq: Vec<u32>,
    /// `(trace, event offset)` of each entry in `seq`.
    pub sites: Vec<(TraceId, usize)>,
    /// True if any of the rank's traces is truncated.
    pub truncated: bool,
}

/// Extract every rank's collective sequence from raw traces.
pub fn collective_sequences(set: &TraceSet) -> Vec<RankCollSeq> {
    let coll = collective_fn_ids(&set.registry);
    set.processes()
        .into_iter()
        .map(|p| {
            let mut seq = Vec::new();
            let mut sites = Vec::new();
            let mut truncated = false;
            for t in set.process_traces(p) {
                truncated |= t.truncated;
                for (i, e) in t.events.iter().enumerate() {
                    if let TraceEvent::Call(f) = e {
                        if coll.contains(&f.0) {
                            seq.push(f.0);
                            sites.push((t.id, i));
                        }
                    }
                }
            }
            RankCollSeq {
                process: p,
                seq,
                sites,
                truncated,
            }
        })
        .collect()
}

/// TL002 over a full trace set: every rank must issue the same
/// collective order as the lowest rank (MPI's matching rule — a rank
/// arriving at a different collective can never complete).
///
/// The diagnostic carries the happens-before frontier reconstructed
/// with `mpisim::hb`'s [`mpisim::hb::VectorClock`]: each consistently
/// ordered collective synchronizes all ranks, so the per-rank
/// collective counts, merged into one clock, summarize how far the
/// ranks got together before diverging.
pub fn check_collective_order(set: &TraceSet) -> Vec<Diagnostic> {
    let seqs = collective_sequences(set);
    diagnose_collective_order(&seqs, &set.registry)
}

/// Diagnostic construction shared with the engine: takes pre-extracted
/// sequences so the compressed path can reuse the messages via its own
/// extraction.
pub fn diagnose_collective_order(
    seqs: &[RankCollSeq],
    registry: &FunctionRegistry,
) -> Vec<Diagnostic> {
    if seqs.len() < 2 {
        return Vec::new();
    }
    let reference = &seqs[0];
    // Happens-before frontier: merge each rank's collective-count
    // clock. The consistent prefix is how many rounds *everyone*
    // completed in the same order.
    let mut frontier = mpisim::hb::VectorClock::zero(seqs.len());
    for (i, s) in seqs.iter().enumerate() {
        let mut clock = mpisim::hb::VectorClock::zero(seqs.len());
        clock.0[i] = s.seq.len() as u64;
        frontier.merge(&clock);
    }
    let mut diags = Vec::new();
    let mut consistent = reference.seq.len() as u64;
    let mut findings = Vec::new();
    for s in &seqs[1..] {
        let d = divergence(&reference.seq, reference.truncated, &s.seq, s.truncated);
        let agreed = match d {
            Some(
                CollDivergence::Mismatch { ordinal, .. }
                | CollDivergence::Shortfall { ordinal, .. }
                | CollDivergence::Excess { ordinal, .. },
            ) => ordinal,
            None => reference.seq.len().min(s.seq.len()) as u64,
        };
        consistent = consistent.min(agreed);
        if let Some(d) = d {
            findings.push((s, d));
        }
    }
    for (s, d) in findings {
        let (message, site) = match d {
            CollDivergence::Mismatch { ordinal, want, got } => (
                format!(
                    "rank {} diverges from rank {} at collective #{}: expected `{}`, found `{}`",
                    s.process,
                    reference.process,
                    ordinal,
                    name_of(registry, want),
                    name_of(registry, got),
                ),
                s.sites.get(ordinal as usize).copied(),
            ),
            CollDivergence::Shortfall { ordinal, want } => (
                format!(
                    "rank {} issued only {} collective(s) but rank {} continues with `{}` \
                     at collective #{}",
                    s.process,
                    s.seq.len(),
                    reference.process,
                    name_of(registry, want),
                    ordinal,
                ),
                s.sites.last().copied(),
            ),
            CollDivergence::Excess { ordinal, got } => (
                format!(
                    "rank {} issues an extra collective `{}` at #{} beyond rank {}'s {} \
                     collective(s)",
                    s.process,
                    name_of(registry, got),
                    ordinal,
                    reference.process,
                    reference.seq.len(),
                ),
                s.sites.get(ordinal as usize).copied(),
            ),
        };
        let message = format!(
            "{message}; collective frontier {frontier} (all ranks agree on the first {consistent} \
             collective(s))"
        );
        let mut diag = Diagnostic::error(RuleCode::CollectiveOrder, message).with_hint(
            "all ranks of a communicator must issue the same collective sequence; \
             diff the diverging rank's NLR against the reference rank's",
        );
        if let Some((trace, offset)) = site {
            diag = diag.with_trace(trace).with_span(Span::at(offset));
        } else {
            diag = diag.with_trace(TraceId::master(s.process));
        }
        diags.push(diag);
    }
    diags
}

// ---------------------------------------------------------------------
// TL005 — NLR lossless roundtrip.
// ---------------------------------------------------------------------

/// Verify that expanding `nlr` reproduces `symbols` exactly. The NLR
/// summarization is lossless by construction; a mismatch means the
/// loop table was corrupted (e.g. by a bad canonical remap).
pub fn check_roundtrip(
    id: TraceId,
    symbols: &[u32],
    nlr: &Nlr,
    table: &LoopTable,
) -> Vec<Diagnostic> {
    let expanded = nlr.expand(table);
    if expanded == symbols {
        return Vec::new();
    }
    let at = expanded
        .iter()
        .zip(symbols.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| expanded.len().min(symbols.len()));
    vec![Diagnostic::error(
        RuleCode::NlrRoundtrip,
        format!(
            "NLR expansion diverges from the original stream at event {at} \
             (expanded {} events, original {})",
            expanded.len(),
            symbols.len(),
        ),
    )
    .with_trace(id)
    .with_span(Span::at(at))
    .with_hint("the loop table no longer matches this term — check loop-ID remapping")]
}

// ---------------------------------------------------------------------
// TL006 — FCA lattice postconditions (Godin invariants).
// ---------------------------------------------------------------------

/// Check the Godin-style postconditions of an incrementally built
/// concept lattice against its formal context:
///
/// 1. every intent is *closed* (the intersection of its extent's
///    attribute rows),
/// 2. every extent is *maximal* (all objects whose attributes contain
///    the intent),
/// 3. intents are unique,
/// 4. a top concept (all objects) and a bottom concept (all attributes)
///    exist,
/// 5. intents are closed under pairwise intersection (the lattice is a
///    complete meet-semilattice).
///
/// Runs in O(concepts² · attrs/64): expensive, hence behind `--deep`.
pub fn check_lattice(lattice: &ConceptLattice, ctx: &FormalContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ctx.num_objects();
    let concepts = lattice.concepts();
    if n == 0 {
        return out;
    }
    if concepts.is_empty() {
        out.push(Diagnostic::error(
            RuleCode::LatticeInvariant,
            format!("lattice is empty for a context with {n} object(s)"),
        ));
        return out;
    }
    let rows: Vec<BitSet> = (0..n).map(|g| ctx.object_attrs(g).canonical()).collect();
    let mut all_attrs = BitSet::new();
    for r in &rows {
        all_attrs = all_attrs.union(r);
    }
    let all_attrs = all_attrs.canonical();

    let mut intents: HashMap<BitSet, usize> = HashMap::new();
    for (ci, c) in concepts.iter().enumerate() {
        let intent = c.intent.canonical();
        // (0) extents must reference objects of *this* context.
        if c.extent.iter().any(|g| g >= n) {
            out.push(Diagnostic::error(
                RuleCode::LatticeInvariant,
                format!(
                    "concept #{ci}: extent references an object outside the context \
                     ({n} object(s))"
                ),
            ));
            continue;
        }
        // (1) intent = closure of extent.
        let mut closure = all_attrs.clone();
        for g in c.extent.iter() {
            closure = closure.intersection(&rows[g]);
        }
        if closure.canonical() != intent {
            out.push(Diagnostic::error(
                RuleCode::LatticeInvariant,
                format!("concept #{ci}: intent is not the closure of its extent (Godin invariant)"),
            ));
        }
        // (2) extent = all objects carrying the intent.
        let extent: BitSet =
            BitSet::from_indices((0..n).filter(|&g| intent.is_subset(&rows[g]))).canonical();
        if extent != c.extent.canonical() {
            out.push(Diagnostic::error(
                RuleCode::LatticeInvariant,
                format!("concept #{ci}: extent is not maximal for its intent"),
            ));
        }
        // (3) intents unique.
        if let Some(prev) = intents.insert(intent, ci) {
            out.push(Diagnostic::error(
                RuleCode::LatticeInvariant,
                format!("concepts #{prev} and #{ci} share the same intent"),
            ));
        }
    }
    // (4) top and bottom.
    if !concepts.iter().any(|c| c.extent_len() == n) {
        out.push(Diagnostic::error(
            RuleCode::LatticeInvariant,
            "no top concept: no concept's extent covers every object",
        ));
    }
    if !concepts.iter().any(|c| c.intent.canonical() == all_attrs) {
        out.push(Diagnostic::error(
            RuleCode::LatticeInvariant,
            "no bottom concept: no concept's intent holds every attribute",
        ));
    }
    // (5) meet closure: pairwise intent intersections are intents.
    let keys: Vec<&BitSet> = intents.keys().collect();
    'outer: for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            let meet = keys[i].intersection(keys[j]).canonical();
            if !intents.contains_key(&meet) {
                out.push(Diagnostic::error(
                    RuleCode::LatticeInvariant,
                    "intents are not meet-closed: an intent intersection is missing \
                     from the lattice",
                ));
                break 'outer;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::FnId;
    use std::sync::Arc;

    fn reg() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn trace_of(reg: &FunctionRegistry, id: TraceId, script: &[(&str, bool)]) -> Trace {
        let mut t = Trace::new(id);
        for (name, is_ret) in script {
            let f = reg.intern(name);
            t.events.push(if *is_ret {
                TraceEvent::Return(f)
            } else {
                TraceEvent::Call(f)
            });
        }
        t
    }

    #[test]
    fn balanced_trace_is_clean() {
        let r = reg();
        let t = trace_of(
            &r,
            TraceId::master(0),
            &[("main", false), ("f", false), ("f", true), ("main", true)],
        );
        assert!(check_stack_discipline(&t, &r).is_empty());
    }

    #[test]
    fn crossed_return_is_tl001_with_offset() {
        let r = reg();
        let t = trace_of(
            &r,
            TraceId::master(0),
            &[("a", false), ("b", false), ("a", true)],
        );
        let ds = check_stack_discipline(&t, &r);
        let tl001: Vec<_> = ds
            .iter()
            .filter(|d| d.code == RuleCode::StackDiscipline)
            .collect();
        assert_eq!(tl001.len(), 1);
        assert_eq!(tl001[0].span, Some(Span::at(2)));
        assert_eq!(tl001[0].severity, Severity::Error);
        assert!(tl001[0].message.contains("`a`"));
        assert!(tl001[0].message.contains("`b`"));
    }

    #[test]
    fn return_with_no_open_call() {
        let r = reg();
        let t = trace_of(&r, TraceId::master(0), &[("x", true)]);
        let ds = check_stack_discipline(&t, &r);
        assert!(ds
            .iter()
            .any(|d| d.code == RuleCode::StackDiscipline && d.message.contains("no open call")));
    }

    #[test]
    fn truncation_severities() {
        let r = reg();
        // Open frame, not truncated → TL003 error.
        let t = trace_of(&r, TraceId::master(0), &[("main", false)]);
        let ds = check_stack_discipline(&t, &r);
        assert!(ds
            .iter()
            .any(|d| d.code == RuleCode::Truncation && d.severity == Severity::Error));
        // Same stream flagged truncated → warning with hang span.
        let mut t2 = t.clone();
        t2.truncated = true;
        let ds = check_stack_discipline(&t2, &r);
        let tl003 = ds
            .iter()
            .find(|d| d.code == RuleCode::Truncation)
            .expect("TL003");
        assert_eq!(tl003.severity, Severity::Warning);
        assert_eq!(tl003.span, Some(Span::new(0, 1)));
        assert!(tl003.message.contains("hang signature"));
        // Empty trace → warning.
        let empty = Trace::new(TraceId::master(1));
        let ds = check_stack_discipline(&empty, &r);
        assert!(ds.iter().any(|d| d.code == RuleCode::Truncation
            && d.severity == Severity::Warning
            && d.message.contains("empty")));
    }

    #[test]
    fn divergence_cases() {
        // Mismatch beats length difference.
        assert_eq!(
            divergence(&[1, 2, 3], false, &[1, 9], false),
            Some(CollDivergence::Mismatch {
                ordinal: 1,
                want: 2,
                got: 9
            })
        );
        assert_eq!(
            divergence(&[1, 2, 3], false, &[1, 2], false),
            Some(CollDivergence::Shortfall {
                ordinal: 2,
                want: 3
            })
        );
        // Truncated shorter side is the hang signature, not divergence.
        assert_eq!(divergence(&[1, 2, 3], false, &[1, 2], true), None);
        assert_eq!(
            divergence(&[1], false, &[1, 2], false),
            Some(CollDivergence::Excess { ordinal: 1, got: 2 })
        );
        assert_eq!(divergence(&[1], true, &[1, 2], false), None);
        assert_eq!(divergence(&[1, 2], false, &[1, 2], false), None);
    }

    #[test]
    fn collective_order_across_ranks() {
        let r = reg();
        let mut set = TraceSet::new(r.clone());
        for p in 0..3u32 {
            let script: Vec<(&str, bool)> = if p == 2 {
                vec![
                    ("MPI_Barrier", false),
                    ("MPI_Barrier", true),
                    ("MPI_Reduce", false), // others do Allreduce here
                    ("MPI_Reduce", true),
                ]
            } else {
                vec![
                    ("MPI_Barrier", false),
                    ("MPI_Barrier", true),
                    ("MPI_Allreduce", false),
                    ("MPI_Allreduce", true),
                ]
            };
            set.insert(trace_of(&r, TraceId::master(p), &script));
        }
        let ds = check_collective_order(&set);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, RuleCode::CollectiveOrder);
        assert_eq!(d.trace, Some(TraceId::master(2)));
        // Collective #1 of rank 2 sits at event offset 2.
        assert_eq!(d.span, Some(Span::at(2)));
        assert!(d.message.contains("expected `MPI_Allreduce`"));
        assert!(d.message.contains("found `MPI_Reduce`"));
        assert!(d.message.contains("agree on the first 1"));
        // Frontier rendered via mpisim's vector clock Display.
        assert!(d.message.contains('⟨'));
    }

    #[test]
    fn roundtrip_detects_table_corruption() {
        let r = reg();
        let f = r.intern("f");
        let g = r.intern("g");
        let syms: Vec<u32> = std::iter::repeat_n([f, g], 6)
            .flatten()
            .flat_map(|x| {
                [
                    TraceEvent::Call(x).to_symbol(),
                    TraceEvent::Return(x).to_symbol(),
                ]
            })
            .collect();
        let mut table = LoopTable::new();
        let term = nlr::NlrBuilder::new(10).build(&syms, &mut table);
        assert!(check_roundtrip(TraceId::master(0), &syms, &term, &table).is_empty());
        // A table whose loop IDs resolve to different bodies breaks the
        // roundtrip.
        let mut wrong = LoopTable::new();
        for i in 0..8u32 {
            wrong.intern(vec![nlr::Element::Sym(1000 + i)]);
        }
        assert!(
            term.loop_count() > 0,
            "periodic input must compress to a loop"
        );
        let ds = check_roundtrip(TraceId::master(0), &syms, &term, &wrong);
        assert!(!ds.is_empty());
        assert_eq!(ds[0].code, RuleCode::NlrRoundtrip);
        let _ = FnId(0);
    }

    #[test]
    fn lattice_invariants_hold_for_real_lattice() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("g1", ["a", "b"]);
        ctx.add_object_unweighted("g2", ["b", "c"]);
        ctx.add_object_unweighted("g3", ["a", "b", "c"]);
        let lattice = ConceptLattice::from_context(&ctx);
        assert!(check_lattice(&lattice, &ctx).is_empty());
        // An unrelated context must violate the invariants.
        let mut other = FormalContext::new();
        other.add_object_unweighted("x", ["p"]);
        other.add_object_unweighted("y", ["q"]);
        assert!(!check_lattice(&lattice, &other).is_empty());
    }
}
