//! Compressed-domain rules: TL001–TL003 evaluated **directly on the
//! NLR term**, without expanding loops.
//!
//! Following Kini et al.'s compressed-trace analyses, both checks
//! exploit the algebraic structure of the term:
//!
//! * **Stack discipline** (TL001/TL003): every symbol has a *stack
//!   effect* (pop a frame / push a frame); effects compose, and the
//!   effect of `body^n` has a closed form, so a loop of a million
//!   iterations is checked in O(|body|) — see [`StackEffect::repeat`].
//! * **Collective order** (TL002): each term is projected onto its
//!   collective calls, keeping the loop structure ([`PTok`]); two
//!   projected streams are compared lazily, consuming identical
//!   `Loop(id, n)` tokens in O(1) — sound because all traces share one
//!   canonical loop table, so equal IDs mean equal expansions.
//!
//! The expanded rules in [`crate::rules`] are the reference semantics;
//! `tests/prop.rs` asserts the verdicts agree on random inputs.

use crate::rules::CollDivergence;
use crate::{Diagnostic, RuleCode};
use dt_trace::{FunctionRegistry, TraceId};
use nlr::{Element, LoopId, LoopTable, Nlr};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// Stack effects (TL001 + TL003).
// ---------------------------------------------------------------------

/// The net effect of a symbol sequence on the call stack, abstracted
/// from *which* events produced it: the frames it pops from its caller
/// (in pop order), the frames it leaves pushed (bottom to top), and
/// whether every interior return matched its innermost open call.
///
/// Effects form a monoid under [`StackEffect::compose`], mirroring the
/// expanded walk exactly: a mismatched return still pops (just like
/// `Trace::validate_nesting`), it only clears `ok`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEffect {
    /// False if some return crossed a different open call.
    pub ok: bool,
    /// Function IDs popped from the surrounding context, first first.
    pub pops: Vec<u32>,
    /// Function IDs left open, outermost first.
    pub pushes: Vec<u32>,
}

impl StackEffect {
    /// The empty sequence's effect.
    pub fn identity() -> StackEffect {
        StackEffect {
            ok: true,
            pops: Vec::new(),
            pushes: Vec::new(),
        }
    }

    /// The effect of one NLR symbol (`fn_id << 1 | is_return`).
    pub fn sym(sym: u32) -> StackEffect {
        let fn_id = sym >> 1;
        if sym & 1 == 1 {
            StackEffect {
                ok: true,
                pops: vec![fn_id],
                pushes: Vec::new(),
            }
        } else {
            StackEffect {
                ok: true,
                pops: Vec::new(),
                pushes: vec![fn_id],
            }
        }
    }

    /// Sequential composition: `self` then `next`. `next`'s pops match
    /// against `self`'s pushes top-down; a mismatch clears `ok` but
    /// still pops (the expanded semantics).
    pub fn compose(&self, next: &StackEffect) -> StackEffect {
        let mut ok = self.ok && next.ok;
        let mut pops = self.pops.clone();
        let mut pushes = self.pushes.clone();
        for &f in &next.pops {
            match pushes.pop() {
                Some(top) => {
                    if top != f {
                        ok = false;
                    }
                }
                None => pops.push(f),
            }
        }
        pushes.extend_from_slice(&next.pushes);
        StackEffect { ok, pops, pushes }
    }

    /// `self` composed with itself `count` times, in closed form.
    ///
    /// For `e = (ok, p, q)` with `|q| ≥ |p|`, each extra iteration
    /// consumes `p` from the top of `q` and re-deposits `q`, so the
    /// surviving prefix `grow = q[..|q|−|p|]` accumulates:
    /// `e^n = (ok₂, p, grow^{n−1} ++ q)`. Symmetrically for `|q| < |p|`
    /// the unmatched pop tail accumulates. All iteration boundaries are
    /// identical, so `ok` of `e∘e` already accounts for every boundary
    /// mismatch. Cost: O(|e| · n) output size but O(|e|) decision work —
    /// and for the common balanced loop body, O(1).
    pub fn repeat(&self, count: u64) -> StackEffect {
        match count {
            0 => return StackEffect::identity(),
            1 => return self.clone(),
            _ => {}
        }
        let boundary_ok = self.compose(self).ok;
        let p = &self.pops;
        let q = &self.pushes;
        let reps = usize::try_from(count - 1).expect("loop count exceeds usize");
        if q.len() >= p.len() {
            let grow = &q[..q.len() - p.len()];
            let mut pushes = Vec::with_capacity(grow.len() * reps + q.len());
            for _ in 0..reps {
                pushes.extend_from_slice(grow);
            }
            pushes.extend_from_slice(q);
            StackEffect {
                ok: boundary_ok,
                pops: p.clone(),
                pushes,
            }
        } else {
            let tail = &p[q.len()..];
            let mut pops = Vec::with_capacity(p.len() + tail.len() * reps);
            pops.extend_from_slice(p);
            for _ in 0..reps {
                pops.extend_from_slice(tail);
            }
            StackEffect {
                ok: boundary_ok,
                pops,
                pushes: q.clone(),
            }
        }
    }
}

/// Memoizes per-loop stack effects against a shared loop table.
pub struct EffectChecker<'t> {
    table: &'t LoopTable,
    memo: HashMap<LoopId, StackEffect>,
}

impl<'t> EffectChecker<'t> {
    /// A checker over `table`.
    pub fn new(table: &'t LoopTable) -> EffectChecker<'t> {
        EffectChecker {
            table,
            memo: HashMap::new(),
        }
    }

    /// Effect of a whole element sequence.
    pub fn effect_of(&mut self, elements: &[Element]) -> StackEffect {
        let mut acc = StackEffect::identity();
        for e in elements {
            let fe = match *e {
                Element::Sym(s) => StackEffect::sym(s),
                Element::Loop { body, count } => self.loop_effect(body).repeat(count),
            };
            acc = acc.compose(&fe);
        }
        acc
    }

    /// Effect of one iteration of `id`'s body (memoized).
    fn loop_effect(&mut self, id: LoopId) -> StackEffect {
        if let Some(e) = self.memo.get(&id) {
            return e.clone();
        }
        let body = self.table.body(id);
        let e = self.effect_of(body);
        self.memo.insert(id, e.clone());
        e
    }
}

/// Compressed TL001 + TL003 for one trace. Produces the same
/// `(code, severity)` verdicts as `rules::check_stack_discipline` on
/// the expanded stream — asserted by the crate's property test — but
/// without event offsets, which do not exist in the compressed domain.
pub fn check_stack_discipline_compressed(
    checker: &mut EffectChecker<'_>,
    id: TraceId,
    term: &Nlr,
    truncated: bool,
    registry: &FunctionRegistry,
) -> Vec<Diagnostic> {
    let eff = checker.effect_of(term.elements());
    let mut out = Vec::new();
    if !eff.ok {
        out.push(
            Diagnostic::error(
                RuleCode::StackDiscipline,
                "call/return stack discipline violated: a return crosses a different \
                 open call (compressed check)",
            )
            .with_trace(id)
            .with_hint("re-run in the expanded domain for exact event offsets"),
        );
    }
    if !eff.pops.is_empty() {
        out.push(
            Diagnostic::error(
                RuleCode::StackDiscipline,
                format!("{} return(s) with no open call", eff.pops.len()),
            )
            .with_trace(id),
        );
    }
    if term.input_len() == 0 {
        out.push(
            Diagnostic::warning(RuleCode::Truncation, "empty trace: no events were recorded")
                .with_trace(id)
                .with_hint("the thread may have been spawned but never instrumented"),
        );
    } else if !eff.pushes.is_empty() {
        let inner = *eff.pushes.last().expect("non-empty pushes");
        if truncated {
            out.push(
                Diagnostic::warning(
                    RuleCode::Truncation,
                    format!(
                        "truncated trace: {} call(s) still open; innermost `{}` never \
                         returned (hang signature)",
                        eff.pushes.len(),
                        registry.name(dt_trace::FnId(inner)),
                    ),
                )
                .with_trace(id),
            );
        } else {
            out.push(
                Diagnostic::error(
                    RuleCode::Truncation,
                    format!(
                        "{} call(s) never returned in a trace not flagged truncated",
                        eff.pushes.len()
                    ),
                )
                .with_trace(id)
                .with_hint(
                    "either the capture was cut short (flag it truncated) or events were lost",
                ),
            );
        }
    } else if truncated {
        out.push(
            Diagnostic::warning(
                RuleCode::Truncation,
                "trace flagged truncated but its call/return stream is balanced",
            )
            .with_trace(id),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Collective projection (TL002).
// ---------------------------------------------------------------------

/// A token of a term projected onto collective calls: either a run of
/// one collective, or a whole loop (whose body projects to more than a
/// single run) taken `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PTok {
    /// `count` consecutive occurrences of collective `fn_id`.
    Run {
        /// Collective function ID.
        fn_id: u32,
        /// Occurrences.
        count: u64,
    },
    /// `count` iterations of loop `id`'s (non-trivial) projection.
    Loop {
        /// Loop body ID in the shared table.
        id: LoopId,
        /// Iterations.
        count: u64,
    },
}

/// Projects terms onto their collective subsequence, memoizing per
/// loop body: the projected tokens and the number of collectives one
/// iteration contributes.
pub struct CollProjector<'t> {
    table: &'t LoopTable,
    collectives: &'t HashSet<u32>,
    memo: HashMap<LoopId, Vec<PTok>>,
    counts: HashMap<LoopId, u64>,
}

impl<'t> CollProjector<'t> {
    /// A projector over `table` keeping calls to `collectives`
    /// (function IDs).
    pub fn new(table: &'t LoopTable, collectives: &'t HashSet<u32>) -> CollProjector<'t> {
        CollProjector {
            table,
            collectives,
            memo: HashMap::new(),
            counts: HashMap::new(),
        }
    }

    /// Project an element sequence. Loops whose projection is empty
    /// vanish; loops projecting to a single run are flattened into a
    /// multiplied run; anything else stays a [`PTok::Loop`].
    pub fn project(&mut self, elements: &[Element]) -> Vec<PTok> {
        let mut out: Vec<PTok> = Vec::new();
        for e in elements {
            match *e {
                Element::Sym(s) => {
                    let fn_id = s >> 1;
                    if s & 1 == 0 && self.collectives.contains(&fn_id) {
                        push_run(&mut out, fn_id, 1);
                    }
                }
                Element::Loop { body, count } => {
                    self.ensure(body);
                    let per_iter = self.counts[&body];
                    if per_iter == 0 {
                        continue;
                    }
                    if let [PTok::Run { fn_id, count: c }] = self.memo[&body][..] {
                        push_run(&mut out, fn_id, c * count);
                    } else {
                        out.push(PTok::Loop { id: body, count });
                    }
                }
            }
        }
        out
    }

    /// Collectives contributed by one iteration of `id`.
    pub fn per_iteration(&self, id: LoopId) -> u64 {
        self.counts[&id]
    }

    fn ensure(&mut self, id: LoopId) {
        if self.memo.contains_key(&id) {
            return;
        }
        let toks = self.project(self.table.body(id));
        let count = toks
            .iter()
            .map(|t| match t {
                PTok::Run { count, .. } => *count,
                PTok::Loop { id, count } => self.counts[id] * count,
            })
            .sum();
        self.memo.insert(id, toks);
        self.counts.insert(id, count);
    }
}

/// Append a run, merging with a trailing run of the same collective.
fn push_run(out: &mut Vec<PTok>, fn_id: u32, count: u64) {
    if count == 0 {
        return;
    }
    if let Some(PTok::Run {
        fn_id: last,
        count: c,
    }) = out.last_mut()
    {
        if *last == fn_id {
            *c += count;
            return;
        }
    }
    out.push(PTok::Run { fn_id, count });
}

// ---------------------------------------------------------------------
// Lazy compressed-stream comparison.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Frame {
    /// `None` = the top-level token stream.
    id: Option<LoopId>,
    idx: usize,
    reps_left: u64,
}

/// A lazily expanding cursor over a projected stream. The head token
/// is materialized with its remaining count so runs and identical
/// loops can be partially consumed without expansion.
struct Cursor<'a> {
    top: &'a [PTok],
    memo: &'a HashMap<LoopId, Vec<PTok>>,
    frames: Vec<Frame>,
    head: Option<PTok>,
}

impl<'a> Cursor<'a> {
    fn new(top: &'a [PTok], memo: &'a HashMap<LoopId, Vec<PTok>>) -> Cursor<'a> {
        Cursor {
            top,
            memo,
            frames: vec![Frame {
                id: None,
                idx: 0,
                reps_left: 1,
            }],
            head: None,
        }
    }

    fn toks_of(&self, f: Frame) -> &'a [PTok] {
        match f.id {
            None => self.top,
            Some(id) => &self.memo[&id],
        }
    }

    /// Refill `head` from the frame stack.
    fn head(&mut self) -> Option<PTok> {
        while self.head.is_none() {
            let f = *self.frames.last()?;
            let toks = self.toks_of(f);
            let top = self.frames.last_mut().expect("frame");
            if f.idx < toks.len() {
                self.head = Some(toks[f.idx]);
                top.idx += 1;
            } else if f.reps_left > 1 {
                top.reps_left -= 1;
                top.idx = 0;
            } else {
                self.frames.pop();
            }
        }
        self.head
    }

    /// Replace a `Loop` head by a frame over its body.
    fn expand_head(&mut self) {
        if let Some(PTok::Loop { id, count }) = self.head.take() {
            self.frames.push(Frame {
                id: Some(id),
                idx: 0,
                reps_left: count,
            });
        }
    }

    /// Consume `k` collectives off a `Run` head.
    fn consume_run(&mut self, k: u64) {
        if let Some(PTok::Run { fn_id, count }) = self.head {
            self.head = (count > k).then_some(PTok::Run {
                fn_id,
                count: count - k,
            });
        }
    }

    /// Consume `k` whole iterations off a `Loop` head.
    fn consume_loops(&mut self, k: u64) {
        if let Some(PTok::Loop { id, count }) = self.head {
            self.head = (count > k).then_some(PTok::Loop {
                id,
                count: count - k,
            });
        }
    }

    /// The next collective's function ID (expanding loops as needed).
    fn peek_fn(&mut self) -> Option<u32> {
        loop {
            match self.head()? {
                PTok::Run { fn_id, .. } => return Some(fn_id),
                PTok::Loop { .. } => self.expand_head(),
            }
        }
    }
}

/// Outcome of comparing two projected streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamCmp {
    /// Identical collective sequences.
    Equal,
    /// First difference at collective `ordinal`; `None` on a side
    /// means that stream was exhausted.
    Diverged {
        /// 0-based collective ordinal of the first difference.
        ordinal: u64,
        /// Reference stream's collective there (`None` = exhausted).
        want: Option<u32>,
        /// Other stream's collective there (`None` = exhausted).
        got: Option<u32>,
    },
}

/// Compare two projected streams lazily. Identical `Loop(id, n)` heads
/// are consumed in O(1) (equal IDs in the shared table expand
/// identically); differing structure is peeled one level at a time, so
/// cost is proportional to the *structural* difference, not the
/// expanded length.
pub fn compare_streams(
    reference: &[PTok],
    other: &[PTok],
    projector: &CollProjector<'_>,
) -> StreamCmp {
    let mut a = Cursor::new(reference, &projector.memo);
    let mut b = Cursor::new(other, &projector.memo);
    let mut ordinal = 0u64;
    loop {
        match (a.head(), b.head()) {
            (None, None) => return StreamCmp::Equal,
            (None, Some(_)) => {
                return StreamCmp::Diverged {
                    ordinal,
                    want: None,
                    got: b.peek_fn(),
                }
            }
            (Some(_), None) => {
                return StreamCmp::Diverged {
                    ordinal,
                    want: a.peek_fn(),
                    got: None,
                }
            }
            (Some(PTok::Loop { id: ia, count: ca }), Some(PTok::Loop { id: ib, count: cb }))
                if ia == ib =>
            {
                let k = ca.min(cb);
                ordinal += projector.per_iteration(ia) * k;
                a.consume_loops(k);
                b.consume_loops(k);
            }
            (Some(PTok::Loop { .. }), _) => a.expand_head(),
            (_, Some(PTok::Loop { .. })) => b.expand_head(),
            (
                Some(PTok::Run {
                    fn_id: fa,
                    count: ca,
                }),
                Some(PTok::Run {
                    fn_id: fb,
                    count: cb,
                }),
            ) => {
                if fa != fb {
                    return StreamCmp::Diverged {
                        ordinal,
                        want: Some(fa),
                        got: Some(fb),
                    };
                }
                let k = ca.min(cb);
                ordinal += k;
                a.consume_run(k);
                b.consume_run(k);
            }
        }
    }
}

/// One rank's compressed collective stream: the per-trace terms are
/// projected and concatenated in thread order.
#[derive(Debug, Clone)]
pub struct RankCollStream {
    /// The rank.
    pub process: u32,
    /// Projected stream.
    pub stream: Vec<PTok>,
    /// True if any of the rank's traces is truncated.
    pub truncated: bool,
}

/// Build per-rank streams from `(trace id, term, truncated)` triples
/// (must be sorted by trace ID, as `NlrSet` iteration is).
pub fn rank_streams(
    terms: &[(TraceId, &Nlr, bool)],
    projector: &mut CollProjector<'_>,
) -> Vec<RankCollStream> {
    let mut out: Vec<RankCollStream> = Vec::new();
    for (id, term, truncated) in terms {
        let toks = projector.project(term.elements());
        match out.last_mut() {
            Some(r) if r.process == id.process => {
                r.truncated |= truncated;
                for t in toks {
                    match t {
                        PTok::Run { fn_id, count } => push_run(&mut r.stream, fn_id, count),
                        l => r.stream.push(l),
                    }
                }
            }
            _ => out.push(RankCollStream {
                process: id.process,
                stream: toks,
                truncated: *truncated,
            }),
        }
    }
    out
}

/// Compressed TL002 verdicts: for every non-reference rank, where (if
/// anywhere) its collective order departs from the lowest rank's.
/// Produces exactly the same [`CollDivergence`] values as
/// `rules::divergence` over the expanded sequences.
pub fn collective_divergences(
    ranks: &[RankCollStream],
    projector: &CollProjector<'_>,
) -> Vec<(u32, Option<CollDivergence>)> {
    if ranks.len() < 2 {
        return Vec::new();
    }
    let reference = &ranks[0];
    ranks[1..]
        .iter()
        .map(|r| {
            let verdict = match compare_streams(&reference.stream, &r.stream, projector) {
                StreamCmp::Equal => None,
                StreamCmp::Diverged {
                    ordinal,
                    want: Some(w),
                    got: Some(g),
                } => Some(CollDivergence::Mismatch {
                    ordinal,
                    want: w,
                    got: g,
                }),
                StreamCmp::Diverged {
                    ordinal,
                    want: Some(w),
                    got: None,
                } => (!r.truncated).then_some(CollDivergence::Shortfall { ordinal, want: w }),
                StreamCmp::Diverged {
                    ordinal,
                    want: None,
                    got: Some(g),
                } => (!reference.truncated).then_some(CollDivergence::Excess { ordinal, got: g }),
                StreamCmp::Diverged {
                    want: None,
                    got: None,
                    ..
                } => unreachable!("both streams exhausted is Equal"),
            };
            (r.process, verdict)
        })
        .collect()
}

/// Compressed TL002 diagnostics (no event spans — offsets do not exist
/// here; the divergence ordinal is in the message instead).
pub fn check_collective_order_compressed(
    ranks: &[RankCollStream],
    projector: &CollProjector<'_>,
    registry: &FunctionRegistry,
) -> Vec<Diagnostic> {
    let reference_process = match ranks.first() {
        Some(r) => r.process,
        None => return Vec::new(),
    };
    collective_divergences(ranks, projector)
        .into_iter()
        .filter_map(|(process, verdict)| verdict.map(|d| (process, d)))
        .map(|(process, d)| {
            let message = match d {
                CollDivergence::Mismatch { ordinal, want, got } => format!(
                    "rank {} diverges from rank {} at collective #{}: expected `{}`, found `{}` \
                     (compressed check)",
                    process,
                    reference_process,
                    ordinal,
                    registry.name(dt_trace::FnId(want)),
                    registry.name(dt_trace::FnId(got)),
                ),
                CollDivergence::Shortfall { ordinal, want } => format!(
                    "rank {} stops issuing collectives at #{} but rank {} continues with `{}` \
                     (compressed check)",
                    process,
                    ordinal,
                    reference_process,
                    registry.name(dt_trace::FnId(want)),
                ),
                CollDivergence::Excess { ordinal, got } => format!(
                    "rank {} issues an extra collective `{}` at #{} (compressed check)",
                    process,
                    registry.name(dt_trace::FnId(got)),
                    ordinal,
                ),
            };
            Diagnostic::error(RuleCode::CollectiveOrder, message)
                .with_trace(TraceId::master(process))
                .with_hint(
                    "all ranks of a communicator must issue the same collective sequence; \
                     diff the diverging rank's NLR against the reference rank's",
                )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;
    use crate::Severity;
    use dt_trace::Trace;
    use nlr::NlrBuilder;
    use std::sync::Arc;

    fn call(f: u32) -> u32 {
        f << 1
    }
    fn ret(f: u32) -> u32 {
        (f << 1) | 1
    }

    fn effect_of(syms: &[u32], k: usize) -> StackEffect {
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(k).build(syms, &mut table);
        let mut checker = EffectChecker::new(&table);
        checker.effect_of(term.elements())
    }

    #[test]
    fn balanced_loop_effect_is_identity() {
        let unit = [call(1), call(2), ret(2), ret(1)];
        let syms: Vec<u32> = unit.iter().copied().cycle().take(4 * 50).collect();
        let e = effect_of(&syms, 8);
        assert!(e.ok);
        assert!(e.pops.is_empty());
        assert!(e.pushes.is_empty());
    }

    #[test]
    fn repeat_closed_form_matches_iterated_compose() {
        // Effects with every shape: growing, shrinking, mixed, broken.
        let cases: Vec<Vec<u32>> = vec![
            vec![call(1)],                          // push
            vec![ret(1)],                           // pop
            vec![call(1), call(2)],                 // push×2
            vec![ret(2), call(2)],                  // pop then push
            vec![call(1), ret(2)],                  // crossed
            vec![ret(1), ret(2), call(3)],          // net pop
            vec![call(1), call(2), ret(2)],         // net push
            vec![call(7), ret(7), ret(7), call(7)], // balanced but popping
        ];
        for syms in cases {
            let base = syms.iter().fold(StackEffect::identity(), |acc, &s| {
                acc.compose(&StackEffect::sym(s))
            });
            for n in 0..7u64 {
                let mut iterated = StackEffect::identity();
                for _ in 0..n {
                    iterated = iterated.compose(&base);
                }
                assert_eq!(base.repeat(n), iterated, "syms={syms:?} n={n}");
            }
        }
    }

    #[test]
    fn crossed_returns_detected_inside_loops() {
        // (call a, ret b) repeated: every iteration crosses.
        let unit = [call(1), ret(2)];
        let syms: Vec<u32> = unit.iter().copied().cycle().take(2 * 40).collect();
        let e = effect_of(&syms, 8);
        assert!(!e.ok);
    }

    #[test]
    fn compressed_verdicts_match_expanded_on_examples() {
        let registry = Arc::new(dt_trace::FunctionRegistry::new());
        for n in ["a", "b", "c"] {
            registry.intern(n);
        }
        let streams: Vec<(Vec<u32>, bool)> = vec![
            (vec![], false),
            (vec![call(0), ret(0)], false),
            (vec![call(0), call(1), ret(0)], false), // crossed
            (vec![call(0), call(1)], true),          // truncated hang
            (vec![call(0), call(1)], false),         // poisoned
            (vec![ret(2)], false),                   // no open call
            (
                [call(0), call(1), ret(1), ret(0)]
                    .iter()
                    .copied()
                    .cycle()
                    .take(4 * 9)
                    .chain([call(2)])
                    .collect(),
                true,
            ),
        ];
        for (syms, truncated) in streams {
            let id = TraceId::master(0);
            let mut trace = Trace::from_symbols(id, &syms, truncated);
            trace.truncated = truncated;
            let expanded = rules::check_stack_discipline(&trace, &registry);
            let mut table = LoopTable::new();
            let term = NlrBuilder::new(4).build(&syms, &mut table);
            let mut checker = EffectChecker::new(&table);
            let compressed =
                check_stack_discipline_compressed(&mut checker, id, &term, truncated, &registry);
            let ev: std::collections::BTreeSet<(RuleCode, Severity)> =
                expanded.iter().map(|d| (d.code, d.severity)).collect();
            let cv: std::collections::BTreeSet<(RuleCode, Severity)> =
                compressed.iter().map(|d| (d.code, d.severity)).collect();
            assert_eq!(ev, cv, "syms={syms:?} truncated={truncated}");
        }
    }

    #[test]
    fn projection_flattens_and_compares() {
        let registry = Arc::new(dt_trace::FunctionRegistry::new());
        let barrier = registry.intern("MPI_Barrier").0;
        let reduce = registry.intern("MPI_Allreduce").0;
        let work = registry.intern("compute").0;
        let collectives: HashSet<u32> = [barrier, reduce].into_iter().collect();

        // Both ranks: 30× (work, barrier), then one allreduce — but
        // rank 1 swaps the final collective.
        let mk = |last: u32| -> Vec<u32> {
            let mut s = Vec::new();
            for _ in 0..30 {
                s.extend([call(work), ret(work), call(barrier), ret(barrier)]);
            }
            s.extend([call(last), ret(last)]);
            s
        };
        let mut table = LoopTable::new();
        let t0 = NlrBuilder::new(6).build(&mk(reduce), &mut table);
        let t1 = NlrBuilder::new(6).build(&mk(barrier), &mut table);
        let mut projector = CollProjector::new(&table, &collectives);
        let terms = [
            (TraceId::master(0), &t0, false),
            (TraceId::master(1), &t1, false),
        ];
        let ranks = rank_streams(&terms, &mut projector);
        assert_eq!(ranks.len(), 2);
        let div = collective_divergences(&ranks, &projector);
        assert_eq!(
            div,
            vec![(
                1,
                Some(CollDivergence::Mismatch {
                    ordinal: 30,
                    want: reduce,
                    got: barrier,
                })
            )]
        );
        // And identical ranks compare Equal without expansion.
        let t2 = NlrBuilder::new(6).build(&mk(reduce), &mut table);
        let mut projector = CollProjector::new(&table, &collectives);
        let terms = [
            (TraceId::master(0), &t0, false),
            (TraceId::master(1), &t2, false),
        ];
        let ranks = rank_streams(&terms, &mut projector);
        assert_eq!(collective_divergences(&ranks, &projector), vec![(1, None)]);
    }

    #[test]
    fn loop_count_mismatch_yields_correct_ordinal() {
        let registry = Arc::new(dt_trace::FunctionRegistry::new());
        let barrier = registry.intern("MPI_Barrier").0;
        let send = registry.intern("MPI_Send").0;
        let collectives: HashSet<u32> = [barrier].into_iter().collect();
        // Loops with *different* iteration counts: 20 barriers vs 15.
        let mk = |iters: usize| -> Vec<u32> {
            let mut s = Vec::new();
            for _ in 0..iters {
                s.extend([call(send), ret(send), call(barrier), ret(barrier)]);
            }
            s
        };
        let mut table = LoopTable::new();
        let t0 = NlrBuilder::new(6).build(&mk(20), &mut table);
        let t1 = NlrBuilder::new(6).build(&mk(15), &mut table);
        let mut projector = CollProjector::new(&table, &collectives);
        let terms = [
            (TraceId::master(0), &t0, false),
            (TraceId::master(1), &t1, false),
        ];
        let ranks = rank_streams(&terms, &mut projector);
        let div = collective_divergences(&ranks, &projector);
        assert_eq!(
            div,
            vec![(
                1,
                Some(CollDivergence::Shortfall {
                    ordinal: 15,
                    want: barrier,
                })
            )]
        );
    }
}
