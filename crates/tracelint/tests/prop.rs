//! The central compressed-domain soundness property: for rules
//! TL001–TL003, checking the NLR-compressed term yields the same
//! verdict as checking the expanded event stream.

use dt_trace::{FunctionRegistry, Trace, TraceId};
use nlr::{LoopTable, NlrBuilder};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use tracelint::compressed::{
    check_stack_discipline_compressed, collective_divergences, rank_streams, CollProjector,
    EffectChecker,
};
use tracelint::rules::{self, CollDivergence};
use tracelint::{RuleCode, Severity};

const FNS: usize = 6;

fn call(f: u32) -> u32 {
    f << 1
}
fn ret(f: u32) -> u32 {
    (f << 1) | 1
}

fn registry() -> Arc<FunctionRegistry> {
    let reg = Arc::new(FunctionRegistry::new());
    // First two functions are collectives, the rest ordinary.
    reg.intern("MPI_Barrier");
    reg.intern("MPI_Allreduce");
    for i in 2..FNS {
        reg.intern(&format!("fn{i}"));
    }
    reg
}

/// A *well-formed* stream: balanced, properly nested, loopy.
fn balanced_stream() -> impl Strategy<Value = Vec<u32>> {
    (
        proptest::collection::vec(0u32..FNS as u32, 1..5),
        1usize..20,
        proptest::collection::vec(0u32..FNS as u32, 0..4),
    )
        .prop_map(|(body, reps, tail)| {
            let unit: Vec<u32> = body
                .iter()
                .map(|&f| call(f))
                .chain(body.iter().rev().map(|&f| ret(f)))
                .collect();
            let mut v = Vec::new();
            for _ in 0..reps {
                v.extend(&unit);
            }
            for &f in &tail {
                v.push(call(f));
                v.push(ret(f));
            }
            v
        })
}

/// A random single defect to inject.
#[derive(Debug, Clone, Copy)]
enum Defect {
    None,
    DeleteEvent(usize),
    DuplicateEvent(usize),
    FlipDirection(usize),
    TruncateTail(usize),
}

fn defect() -> impl Strategy<Value = Defect> {
    prop_oneof![
        Just(Defect::None),
        (0usize..1000).prop_map(Defect::DeleteEvent),
        (0usize..1000).prop_map(Defect::DuplicateEvent),
        (0usize..1000).prop_map(Defect::FlipDirection),
        (1usize..1000).prop_map(Defect::TruncateTail),
    ]
}

/// Apply the defect; returns the stream and its `truncated` flag.
fn apply_defect(mut syms: Vec<u32>, d: Defect, truncated: bool) -> (Vec<u32>, bool) {
    if syms.is_empty() {
        return (syms, truncated);
    }
    match d {
        Defect::None => (syms, truncated),
        Defect::DeleteEvent(i) => {
            let i = i % syms.len();
            syms.remove(i);
            (syms, truncated)
        }
        Defect::DuplicateEvent(i) => {
            let i = i % syms.len();
            let s = syms[i];
            syms.insert(i, s);
            (syms, truncated)
        }
        Defect::FlipDirection(i) => {
            let i = i % syms.len();
            syms[i] ^= 1;
            (syms, truncated)
        }
        Defect::TruncateTail(n) => {
            let keep = syms.len().saturating_sub(1 + n % syms.len().max(1));
            syms.truncate(keep);
            // A cut-short capture is what the truncated flag models.
            (syms, true)
        }
    }
}

fn verdicts(diags: &[tracelint::Diagnostic]) -> BTreeSet<(RuleCode, Severity)> {
    diags.iter().map(|d| (d.code, d.severity)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TL001 + TL003: compressed and expanded verdicts agree for any
    /// (possibly defective) stream, any compression window K.
    #[test]
    fn stack_discipline_verdicts_agree(
        base in balanced_stream(),
        d in defect(),
        truncated in any::<bool>(),
        k in 2usize..16,
    ) {
        let reg = registry();
        let (syms, truncated) = apply_defect(base, d, truncated);
        let id = TraceId::master(0);

        let trace = Trace::from_symbols(id, &syms, truncated);
        let expanded = rules::check_stack_discipline(&trace, &reg);

        let mut table = LoopTable::new();
        let term = NlrBuilder::new(k).build(&syms, &mut table);
        let mut checker = EffectChecker::new(&table);
        let compressed =
            check_stack_discipline_compressed(&mut checker, id, &term, truncated, &reg);

        prop_assert_eq!(
            verdicts(&expanded),
            verdicts(&compressed),
            "syms={:?} truncated={} k={}",
            syms, truncated, k
        );
    }

    /// TL001 localization: injecting a defect into a well-formed trace
    /// makes tracelint flag it, and the expanded rule's span points at
    /// a real event of the trace.
    #[test]
    fn injected_defects_are_localized(
        base in balanced_stream(),
        i in 0usize..1000,
        flip in any::<bool>(),
    ) {
        let reg = registry();
        prop_assume!(!base.is_empty());
        let mut syms = base;
        let i = i % syms.len();
        if flip {
            syms[i] ^= 1; // call↔return at one site
        } else {
            syms.remove(i); // drop one event
        }
        let trace = Trace::from_symbols(TraceId::master(0), &syms, false);
        let diags = rules::check_stack_discipline(&trace, &reg);
        prop_assert!(!diags.is_empty(), "defect at {} not detected: {:?}", i, syms);
        for d in &diags {
            if let Some(span) = d.span {
                prop_assert!(span.start <= syms.len());
                prop_assert!(span.end <= syms.len() + 1);
            }
        }
    }

    /// TL002: the compressed stream comparison produces exactly the
    /// divergence verdict of the expanded sequence comparison, for
    /// ranks whose collective streams randomly agree or diverge.
    #[test]
    fn collective_verdicts_agree(
        bodies in proptest::collection::vec(
            (proptest::collection::vec(0u32..FNS as u32, 1..4), 1usize..25),
            2..5
        ),
        mutate_rank in any::<bool>(),
        trunc_mask in 0u32..8,
        k in 2usize..12,
    ) {
        let reg = registry();
        // Collectives are fn 0 and fn 1 (see `registry`).
        let coll: HashSet<u32> = rules::collective_fn_ids(&reg);
        prop_assert_eq!(coll.len(), 2);

        // Every rank runs the same program: the first (body, reps)
        // pattern repeated. Optionally the last rank gets the *second*
        // pattern instead — a divergence candidate (it may also be
        // collective-equivalent by accident; the property must hold
        // either way).
        let ranks = bodies.len() as u32;
        let stream_for = |pat: &(Vec<u32>, usize)| -> Vec<u32> {
            let (body, reps) = pat;
            let unit: Vec<u32> = body
                .iter()
                .map(|&f| call(f))
                .chain(body.iter().rev().map(|&f| ret(f)))
                .collect();
            let mut v = Vec::new();
            for _ in 0..*reps {
                v.extend(&unit);
            }
            v
        };
        let mut table = LoopTable::new();
        let builder = NlrBuilder::new(k);
        let mut expanded_seqs = Vec::new();
        let mut terms_store = Vec::new();
        for p in 0..ranks {
            let pat = if mutate_rank && p == ranks - 1 {
                &bodies[1]
            } else {
                &bodies[0]
            };
            let syms = stream_for(pat);
            let truncated = trunc_mask & (1 << p.min(7)) != 0;
            // Expanded collective sequence.
            let seq: Vec<u32> = syms
                .iter()
                .filter(|&&s| s & 1 == 0 && coll.contains(&(s >> 1)))
                .map(|&s| s >> 1)
                .collect();
            expanded_seqs.push((seq, truncated));
            let term = builder.build(&syms, &mut table);
            terms_store.push((TraceId::master(p), term, truncated));
        }

        // Expanded verdicts.
        let (ref_seq, ref_trunc) = &expanded_seqs[0];
        let expanded: Vec<(u32, Option<CollDivergence>)> = expanded_seqs[1..]
            .iter()
            .enumerate()
            .map(|(i, (seq, trunc))| {
                (i as u32 + 1, rules::divergence(ref_seq, *ref_trunc, seq, *trunc))
            })
            .collect();

        // Compressed verdicts over the shared table.
        let mut projector = CollProjector::new(&table, &coll);
        let term_refs: Vec<(TraceId, &nlr::Nlr, bool)> = terms_store
            .iter()
            .map(|(id, t, tr)| (*id, t, *tr))
            .collect();
        let streams = rank_streams(&term_refs, &mut projector);
        let compressed = collective_divergences(&streams, &projector);

        prop_assert_eq!(expanded, compressed);
    }
}
