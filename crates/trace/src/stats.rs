//! Trace statistics, reproducing the measurements of §V of the paper
//! (distinct functions per process, compressed bytes per thread,
//! decompressed calls per process).

use crate::compress::{self, CompressionStats};
use crate::trace::{TraceId, TraceSet};
use std::collections::HashSet;

/// Statistics of a single per-thread trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Which trace.
    pub id: TraceId,
    /// Total events (calls + returns).
    pub events: usize,
    /// Call events only.
    pub calls: usize,
    /// Distinct functions appearing in the trace.
    pub distinct_functions: usize,
    /// Compression of the event symbol stream.
    pub compression: CompressionStats,
}

/// Per-process aggregate (the paper reports per-process averages).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    /// The rank.
    pub process: u32,
    /// Number of threads traced for this rank.
    pub threads: usize,
    /// Total calls across the rank's threads.
    pub calls: usize,
    /// Distinct functions across the rank's threads.
    pub distinct_functions: usize,
    /// Total compressed bytes across the rank's threads.
    pub compressed_bytes: usize,
}

/// Whole-execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSetStats {
    /// Per-thread breakdown, in `TraceId` order.
    pub per_trace: Vec<TraceStats>,
    /// Per-process aggregates, in rank order.
    pub per_process: Vec<ProcessStats>,
}

impl TraceSetStats {
    /// Measure every trace in `set` (compresses each stream).
    pub fn measure(set: &TraceSet) -> TraceSetStats {
        let mut per_trace = Vec::new();
        for t in set.iter() {
            let symbols = t.to_symbols();
            let blob = compress::compress(&symbols);
            let distinct: HashSet<u32> = t.events.iter().map(|e| e.fn_id().0).collect();
            per_trace.push(TraceStats {
                id: t.id,
                events: t.events.len(),
                calls: t.calls().count(),
                distinct_functions: distinct.len(),
                compression: CompressionStats::measure(&symbols, &blob),
            });
        }

        let mut per_process: Vec<ProcessStats> = Vec::new();
        for p in set.processes() {
            let mut distinct: HashSet<u32> = HashSet::new();
            for t in set.process_traces(p) {
                distinct.extend(t.events.iter().map(|e| e.fn_id().0));
            }
            let traces: Vec<&TraceStats> = per_trace.iter().filter(|s| s.id.process == p).collect();
            per_process.push(ProcessStats {
                process: p,
                threads: traces.len(),
                calls: traces.iter().map(|s| s.calls).sum(),
                distinct_functions: distinct.len(),
                compressed_bytes: traces.iter().map(|s| s.compression.compressed_bytes).sum(),
            });
        }
        TraceSetStats {
            per_trace,
            per_process,
        }
    }

    /// Average calls per process (the paper's "421503 function calls on
    /// average per process").
    pub fn avg_calls_per_process(&self) -> f64 {
        if self.per_process.is_empty() {
            return 0.0;
        }
        self.per_process.iter().map(|p| p.calls as f64).sum::<f64>() / self.per_process.len() as f64
    }

    /// Average distinct functions per process (the paper's "410 distinct
    /// function calls on average per process").
    pub fn avg_distinct_per_process(&self) -> f64 {
        if self.per_process.is_empty() {
            return 0.0;
        }
        self.per_process
            .iter()
            .map(|p| p.distinct_functions as f64)
            .sum::<f64>()
            / self.per_process.len() as f64
    }

    /// Average compressed bytes per thread (the paper's "less than
    /// 2.8 KB on average per thread").
    pub fn avg_compressed_bytes_per_thread(&self) -> f64 {
        if self.per_trace.is_empty() {
            return 0.0;
        }
        self.per_trace
            .iter()
            .map(|t| t.compression.compressed_bytes as f64)
            .sum::<f64>()
            / self.per_trace.len() as f64
    }

    /// Overall compression ratio (Σ raw / Σ compressed).
    pub fn overall_ratio(&self) -> f64 {
        let raw: usize = self.per_trace.iter().map(|t| t.compression.raw_bytes).sum();
        let comp: usize = self
            .per_trace
            .iter()
            .map(|t| t.compression.compressed_bytes)
            .sum();
        if comp == 0 {
            0.0
        } else {
            raw as f64 / comp as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::registry::FunctionRegistry;
    use crate::trace::Trace;
    use std::sync::Arc;

    fn loopy_set() -> TraceSet {
        let reg = Arc::new(FunctionRegistry::new());
        let mut set = TraceSet::new(reg.clone());
        for p in 0..2u32 {
            for th in 0..2u32 {
                let mut t = Trace::new(TraceId::new(p, th));
                let a = reg.intern("kernelA");
                let b = reg.intern("kernelB");
                for _ in 0..1000 {
                    t.events.push(TraceEvent::Call(a));
                    t.events.push(TraceEvent::Return(a));
                    t.events.push(TraceEvent::Call(b));
                    t.events.push(TraceEvent::Return(b));
                }
                set.insert(t);
            }
        }
        set
    }

    #[test]
    fn per_trace_and_per_process_counts() {
        let stats = TraceSetStats::measure(&loopy_set());
        assert_eq!(stats.per_trace.len(), 4);
        assert_eq!(stats.per_process.len(), 2);
        for t in &stats.per_trace {
            assert_eq!(t.events, 4000);
            assert_eq!(t.calls, 2000);
            assert_eq!(t.distinct_functions, 2);
        }
        for p in &stats.per_process {
            assert_eq!(p.threads, 2);
            assert_eq!(p.calls, 4000);
            assert_eq!(p.distinct_functions, 2);
        }
        assert!((stats.avg_calls_per_process() - 4000.0).abs() < 1e-9);
        assert!((stats.avg_distinct_per_process() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loopy_traces_compress_well() {
        let stats = TraceSetStats::measure(&loopy_set());
        assert!(
            stats.overall_ratio() > 100.0,
            "ratio {} too low",
            stats.overall_ratio()
        );
        assert!(stats.avg_compressed_bytes_per_thread() < 200.0);
    }

    #[test]
    fn empty_set_is_all_zero() {
        let set = TraceSet::new(Arc::new(FunctionRegistry::new()));
        let stats = TraceSetStats::measure(&set);
        assert_eq!(stats.avg_calls_per_process(), 0.0);
        assert_eq!(stats.avg_distinct_per_process(), 0.0);
        assert_eq!(stats.avg_compressed_bytes_per_thread(), 0.0);
        assert_eq!(stats.overall_ratio(), 0.0);
    }
}
