//! Function-name interning.
//!
//! ParLOT assigns every instrumented function a dense integer ID and
//! stores the name table once per execution; trace files then contain
//! only IDs. [`FunctionRegistry`] plays that role here. It is shared
//! (behind an `Arc`) between all simulated processes/threads of one
//! execution so that the *same* function gets the *same* ID everywhere —
//! a property the FCA stage relies on when comparing traces.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Dense identifier of an instrumented function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(pub u32);

impl FnId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Default)]
struct Inner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

/// Thread-safe, append-only intern table of function names.
#[derive(Debug, Default)]
pub struct FunctionRegistry {
    inner: RwLock<Inner>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Intern `name`, returning its (possibly pre-existing) ID.
    pub fn intern(&self, name: &str) -> FnId {
        if let Some(id) = self.inner.read().by_name.get(name) {
            return FnId(*id);
        }
        let mut inner = self.inner.write();
        // Double-check: another thread may have interned it between the
        // read unlock and the write lock.
        if let Some(id) = inner.by_name.get(name) {
            return FnId(*id);
        }
        let id = inner.names.len() as u32;
        inner.names.push(name.to_string());
        inner.by_name.insert(name.to_string(), id);
        FnId(id)
    }

    /// Look up an existing ID without interning.
    pub fn resolve(&self, name: &str) -> Option<FnId> {
        self.inner.read().by_name.get(name).copied().map(FnId)
    }

    /// The name of `id`. Panics if the ID was not produced by this
    /// registry.
    pub fn name(&self, id: FnId) -> String {
        self.inner.read().names[id.index()].clone()
    }

    /// Number of interned functions.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all names, indexed by `FnId`.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().names.clone()
    }

    /// Rebuild a registry from an ordered name table (used by the trace
    /// store when loading from disk).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        {
            let mut inner = reg.inner.write();
            for (i, n) in names.into_iter().enumerate() {
                inner.by_name.insert(n.clone(), i as u32);
                inner.names.push(n);
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn intern_is_idempotent() {
        let r = FunctionRegistry::new();
        let a = r.intern("MPI_Send");
        let b = r.intern("MPI_Recv");
        let a2 = r.intern("MPI_Send");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), "MPI_Send");
        assert_eq!(r.resolve("MPI_Recv"), Some(b));
        assert_eq!(r.resolve("nope"), None);
    }

    #[test]
    fn from_names_round_trip() {
        let r = FunctionRegistry::new();
        r.intern("a");
        r.intern("b");
        r.intern("c");
        let r2 = FunctionRegistry::from_names(r.names());
        assert_eq!(r2.len(), 3);
        assert_eq!(r2.resolve("b"), Some(FnId(1)));
        assert_eq!(r2.name(FnId(2)), "c");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let r = Arc::new(FunctionRegistry::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..100 {
                    // Heavy collision across threads on the shared names.
                    ids.push(r.intern(&format!("fn_{}", i % 25)));
                    let _ = t;
                }
                ids
            }));
        }
        let all: Vec<Vec<FnId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must agree on every name's ID.
        for ids in &all[1..] {
            assert_eq!(ids, &all[0]);
        }
        assert_eq!(r.len(), 25);
    }
}
