//! MPI request-lifecycle and collective-signature vocabulary.
//!
//! `reqcheck` counts ordinary MPI call names that every trace already
//! contains: `MPI_Isend`/`MPI_Irecv` post a nonblocking request,
//! `MPI_Wait` completes one, `MPI_Finalize` closes the epoch, and the
//! collective calls ([`collective_kind`]) form the per-rank collective
//! *order*. Two extra marker families carry information the plain names
//! cannot:
//!
//! * `mpi_coll@<kind:count:root:op>` — the canonical argument signature
//!   of a collective call, traced as a leaf immediately inside the call
//!   so divergent arguments (RQ003) are visible even when every rank
//!   agrees on the collective *kind*.
//! * `mpi_req_pending@<origin>` — emitted at rank teardown for every
//!   request that was posted but never waited on, so an RQ001 witness
//!   names the leaking call site instead of inferring it from stream
//!   end.
//!
//! Like the `omp_*@` race vocabulary, both are ordinary interned
//! function names: persistence, NLR folding, and FCA mining handle them
//! with no special cases; only `reqcheck` parses them back with
//! [`ReqMarker::parse`].

use std::fmt;

/// Call names that post a nonblocking request.
pub const POST_MARKERS: [&str; 2] = ["MPI_Isend", "MPI_Irecv"];

/// Call name that completes a nonblocking request.
pub const WAIT_MARKER: &str = "MPI_Wait";

/// Call name that closes the MPI epoch.
pub const FINALIZE_MARKER: &str = "MPI_Finalize";

/// The MPI collective call names `reqcheck` orders ranks by. Mirrors
/// the simulator's collective surface but is deliberately a plain name
/// list so `dt-trace` (and `dt-reqcheck`) stay independent of `mpisim`.
pub const COLLECTIVE_MARKERS: [&str; 7] = [
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Allgather",
    "MPI_Gather",
    "MPI_Scatter",
];

/// Does `name` post a nonblocking request?
pub fn posts_request(name: &str) -> bool {
    POST_MARKERS.contains(&name)
}

/// The canonical collective kind for a plain MPI call name (the name
/// itself), or `None` if the name is not a collective.
pub fn collective_kind(name: &str) -> Option<&'static str> {
    COLLECTIVE_MARKERS.iter().find(|&&m| m == name).copied()
}

/// One reqcheck marker, as encoded in a leaf function name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReqMarker {
    /// Canonical collective argument signature
    /// (`mpi_coll@kind:count:root:op`); root and op are `-` where the
    /// collective has none.
    CollSig(String),
    /// A request posted but never waited on, exported at rank teardown
    /// (`mpi_req_pending@origin`).
    Pending(String),
}

impl ReqMarker {
    /// Build the signature marker for a collective call. `root` and
    /// `op` render as `-` when the collective has neither.
    pub fn coll_sig(kind: &str, count: usize, root: Option<u32>, op: Option<&str>) -> ReqMarker {
        let root = root.map_or_else(|| "-".to_string(), |r| r.to_string());
        let op = op.unwrap_or("-");
        ReqMarker::CollSig(format!("{kind}:{count}:{root}:{op}"))
    }

    /// The marker function name this traces as.
    pub fn marker_name(&self) -> String {
        match self {
            ReqMarker::CollSig(sig) => format!("mpi_coll@{sig}"),
            ReqMarker::Pending(origin) => format!("mpi_req_pending@{origin}"),
        }
    }

    /// Parse a function name back into the marker it encodes.
    /// Non-marker names return `None`.
    pub fn parse(name: &str) -> Option<ReqMarker> {
        let rest = name.strip_prefix("mpi_")?;
        let (verb, target) = rest.split_once('@')?;
        if target.is_empty() {
            return None;
        }
        match verb {
            "coll" => Some(ReqMarker::CollSig(target.to_string())),
            "req_pending" => Some(ReqMarker::Pending(target.to_string())),
            _ => None,
        }
    }

    /// The marker payload (signature or origin).
    pub fn target(&self) -> &str {
        match self {
            ReqMarker::CollSig(s) | ReqMarker::Pending(s) => s,
        }
    }
}

impl fmt::Display for ReqMarker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.marker_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_names_roundtrip() {
        for m in [
            ReqMarker::coll_sig("MPI_Allreduce", 4, None, Some("sum")),
            ReqMarker::coll_sig("MPI_Bcast", 1, Some(0), None),
            ReqMarker::coll_sig("MPI_Barrier", 0, None, None),
            ReqMarker::Pending("MPI_Isend:dst=1,tag=7".into()),
        ] {
            assert_eq!(ReqMarker::parse(&m.marker_name()), Some(m.clone()));
            assert_eq!(m.to_string(), m.marker_name());
        }
    }

    #[test]
    fn coll_sig_payload_is_canonical() {
        assert_eq!(
            ReqMarker::coll_sig("MPI_Allreduce", 4, None, Some("sum")).target(),
            "MPI_Allreduce:4:-:sum"
        );
        assert_eq!(
            ReqMarker::coll_sig("MPI_Reduce", 2, Some(3), Some("max")).target(),
            "MPI_Reduce:2:3:max"
        );
        assert_eq!(
            ReqMarker::coll_sig("MPI_Barrier", 0, None, None).target(),
            "MPI_Barrier:0:-:-"
        );
    }

    #[test]
    fn non_markers_do_not_parse() {
        for name in [
            "MPI_Send",
            "MPI_Isend",
            "MPI_Wait",
            "mpi_coll",
            "mpi_coll@",
            "mpi_frob@x",
            "coll@x",
            "omp_read@x",
            "compute",
        ] {
            assert_eq!(ReqMarker::parse(name), None, "{name}");
        }
    }

    #[test]
    fn plain_name_classifiers() {
        assert!(posts_request("MPI_Isend"));
        assert!(posts_request("MPI_Irecv"));
        assert!(!posts_request("MPI_Wait"));
        assert_eq!(collective_kind("MPI_Allreduce"), Some("MPI_Allreduce"));
        assert_eq!(collective_kind("MPI_Send"), None);
        assert_eq!(collective_kind("mpi_coll@x"), None);
    }

    #[test]
    fn markers_survive_the_dtts_roundtrip() {
        use crate::store;
        use crate::{FunctionRegistry, TraceCollector, TraceId};
        use std::sync::Arc;

        let registry = Arc::new(FunctionRegistry::new());
        let collector = TraceCollector::shared(registry.clone());
        let tracer = collector.tracer(TraceId::new(0, 0));
        tracer.leaf(&ReqMarker::coll_sig("MPI_Allreduce", 4, None, Some("sum")).marker_name());
        tracer.leaf(&ReqMarker::Pending("MPI_Irecv:src=2,tag=9".into()).marker_name());
        tracer.finish();
        let set = collector.into_trace_set();

        let dir = std::env::temp_dir().join(format!("dtts_req_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("req.dtts");
        store::save(&set, &path).unwrap();
        let loaded = store::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let t = loaded.get(TraceId::new(0, 0)).unwrap();
        let ops: Vec<Option<ReqMarker>> = t
            .calls()
            .map(|e| ReqMarker::parse(&loaded.registry.name(e.fn_id())))
            .collect();
        assert_eq!(
            ops,
            vec![
                Some(ReqMarker::CollSig("MPI_Allreduce:4:-:sum".into())),
                Some(ReqMarker::Pending("MPI_Irecv:src=2,tag=9".into())),
            ]
        );
    }
}
