//! Shared-memory race-event vocabulary.
//!
//! ParLOT records only function call/return events, so the simulated
//! OpenMP runtime encodes its shared-memory activity the same way the
//! GOMP markers already are: as specially-named leaf call/return pairs.
//! A thread that writes the shared variable `counter` traces a call to
//! `omp_write@counter` immediately followed by its return; a lock
//! acquisition of `lockA` traces `omp_acquire@lockA` (the call returns
//! once the lock is held), and so on. Because the markers are ordinary
//! interned function names, every downstream layer — `.dtts`
//! persistence, NLR summarization, FCA mining — handles them with no
//! special cases; only `racecheck` assigns them meaning, by parsing
//! the names back with [`RaceOp::parse`].

use std::fmt;

/// The barrier marker `racecheck` treats as a phase boundary — the
/// same `GOMP_barrier` the OpenMP runtime already traces.
pub const BARRIER_MARKER: &str = "GOMP_barrier";

/// One shared-memory operation, as encoded in a marker function name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceOp {
    /// Read of a named shared variable (`omp_read@var`).
    Read(String),
    /// Write of a named shared variable (`omp_write@var`).
    Write(String),
    /// Acquisition of a named lock (`omp_acquire@lock`); the marker
    /// call returns once the lock is held.
    Acquire(String),
    /// Release of a named lock (`omp_release@lock`).
    Release(String),
}

impl RaceOp {
    /// The marker function name this operation traces as.
    pub fn marker_name(&self) -> String {
        let (verb, name) = match self {
            RaceOp::Read(v) => ("read", v),
            RaceOp::Write(v) => ("write", v),
            RaceOp::Acquire(l) => ("acquire", l),
            RaceOp::Release(l) => ("release", l),
        };
        format!("omp_{verb}@{name}")
    }

    /// Parse a function name back into the operation it encodes.
    /// Non-marker names (anything without the `omp_<verb>@` shape)
    /// return `None`.
    pub fn parse(name: &str) -> Option<RaceOp> {
        let rest = name.strip_prefix("omp_")?;
        let (verb, target) = rest.split_once('@')?;
        if target.is_empty() {
            return None;
        }
        let target = target.to_string();
        match verb {
            "read" => Some(RaceOp::Read(target)),
            "write" => Some(RaceOp::Write(target)),
            "acquire" => Some(RaceOp::Acquire(target)),
            "release" => Some(RaceOp::Release(target)),
            _ => None,
        }
    }

    /// The named target (variable or lock).
    pub fn target(&self) -> &str {
        match self {
            RaceOp::Read(v) | RaceOp::Write(v) | RaceOp::Acquire(v) | RaceOp::Release(v) => v,
        }
    }
}

impl fmt::Display for RaceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.marker_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_names_roundtrip() {
        for op in [
            RaceOp::Read("counter".into()),
            RaceOp::Write("counter".into()),
            RaceOp::Acquire("lockA".into()),
            RaceOp::Release("lock_b".into()),
        ] {
            assert_eq!(RaceOp::parse(&op.marker_name()), Some(op.clone()));
            assert_eq!(op.to_string(), op.marker_name());
        }
    }

    #[test]
    fn non_markers_do_not_parse() {
        for name in [
            "MPI_Send",
            "GOMP_barrier",
            "GOMP_critical_start",
            "omp_read",
            "omp_read@",
            "omp_frob@x",
            "read@x",
            "compute",
        ] {
            assert_eq!(RaceOp::parse(name), None, "{name}");
        }
    }

    #[test]
    fn markers_survive_the_dtts_roundtrip() {
        use crate::store;
        use crate::{FunctionRegistry, TraceCollector, TraceId};
        use std::sync::Arc;

        let registry = Arc::new(FunctionRegistry::new());
        let collector = TraceCollector::shared(registry.clone());
        let tracer = collector.tracer(TraceId::new(0, 1));
        for op in [
            RaceOp::Acquire("l".into()),
            RaceOp::Read("x".into()),
            RaceOp::Write("x".into()),
            RaceOp::Release("l".into()),
        ] {
            tracer.leaf(&op.marker_name());
        }
        tracer.leaf(BARRIER_MARKER);
        tracer.finish();
        let set = collector.into_trace_set();

        let dir = std::env::temp_dir().join(format!("dtts_race_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("race.dtts");
        store::save(&set, &path).unwrap();
        let loaded = store::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let t = loaded.get(TraceId::new(0, 1)).unwrap();
        let ops: Vec<Option<RaceOp>> = t
            .calls()
            .map(|e| RaceOp::parse(&loaded.registry.name(e.fn_id())))
            .collect();
        assert_eq!(
            ops,
            vec![
                Some(RaceOp::Acquire("l".into())),
                Some(RaceOp::Read("x".into())),
                Some(RaceOp::Write("x".into())),
                Some(RaceOp::Release("l".into())),
                None, // the barrier is a plain GOMP marker
            ]
        );
    }
}
