//! On-disk trace-set format (ParLOT's trace files).
//!
//! One execution serialises to a single self-describing binary file:
//!
//! ```text
//! "DTTS" ∥ version:u8
//! registry: varint count ∥ (varint len ∥ utf8 bytes)*
//! traces:   varint count ∥ (process:varint ∥ thread:varint ∥
//!                           truncated:u8 ∥ varint blob_len ∥ blob)*
//! hb:       (v2 only) present:u8 ∥ HbLog section (see [`crate::hb`])
//! ```
//!
//! where each `blob` is the [`crate::compress`] encoding of the trace's
//! symbol stream — traces are stored *compressed*, exactly as ParLOT
//! writes them, and decompressed by DiffTrace's pre-processing stage.
//!
//! Version 2 appends the happens-before log (vector-clock-stamped MPI
//! events plus blocked-operation state) that `hbcheck` analyzes. V1
//! files still load — they simply carry an empty [`HbLog`].

use crate::compress::{self, read_varint, write_varint, CodecError};
use crate::hb::HbLog;
use crate::registry::FunctionRegistry;
use crate::trace::{Trace, TraceId, TraceSet};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DTTS";
const VERSION: u8 = 2;

/// Error reading a trace-set file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the file.
    Format(&'static str),
    /// A per-trace blob failed to decompress.
    Codec(CodecError),
    /// Embedded string was not UTF-8.
    Utf8,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "trace store format error: {m}"),
            StoreError::Codec(e) => write!(f, "trace store codec error: {e}"),
            StoreError::Utf8 => write!(f, "trace store contains invalid UTF-8"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        match e {
            CodecError::Truncated => StoreError::Format("truncated blob"),
            other => StoreError::Codec(other),
        }
    }
}

/// Serialise a trace set to bytes (traces stored compressed), with no
/// happens-before section.
pub fn to_bytes(set: &TraceSet) -> Vec<u8> {
    to_bytes_full(set, None)
}

/// Serialise a trace set plus its happens-before log. `None` writes a
/// v2 file whose HB section is marked absent.
pub fn to_bytes_full(set: &TraceSet, hb: Option<&HbLog>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    let names = set.registry.names();
    write_varint(&mut out, names.len() as u64);
    for n in &names {
        write_varint(&mut out, n.len() as u64);
        out.extend_from_slice(n.as_bytes());
    }

    write_varint(&mut out, set.len() as u64);
    for t in set.iter() {
        write_varint(&mut out, u64::from(t.id.process));
        write_varint(&mut out, u64::from(t.id.thread));
        out.push(u8::from(t.truncated));
        let blob = compress::compress(&t.to_symbols());
        write_varint(&mut out, blob.len() as u64);
        out.extend_from_slice(&blob);
    }
    match hb {
        Some(hb) => {
            out.push(1);
            hb.write_to(&mut out);
        }
        None => out.push(0),
    }
    out
}

/// Deserialise a trace set from bytes, discarding any HB section.
pub fn from_bytes(buf: &[u8]) -> Result<TraceSet, StoreError> {
    from_bytes_full(buf).map(|(set, _)| set)
}

/// Deserialise a trace set and its happens-before log. V1 files (and
/// v2 files saved without one) yield an empty log.
pub fn from_bytes_full(buf: &[u8]) -> Result<(TraceSet, HbLog), StoreError> {
    if buf.len() < 5 {
        return Err(StoreError::Format("file too short"));
    }
    if &buf[..4] != MAGIC {
        return Err(StoreError::Format("bad magic (not a DTTS file)"));
    }
    let version = buf[4];
    if version != 1 && version != VERSION {
        return Err(StoreError::Format("unsupported DTTS version"));
    }
    let mut at = 5usize;

    let n_names = read_varint(buf, &mut at)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = read_varint(buf, &mut at)? as usize;
        let bytes = buf
            .get(at..at + len)
            .ok_or(StoreError::Format("name overruns file"))?;
        at += len;
        names.push(String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Utf8)?);
    }
    let registry = Arc::new(FunctionRegistry::from_names(names));

    let n_traces = read_varint(buf, &mut at)? as usize;
    let mut set = TraceSet::new(registry);
    for _ in 0..n_traces {
        let process = read_varint(buf, &mut at)? as u32;
        let thread = read_varint(buf, &mut at)? as u32;
        let truncated = match buf.get(at) {
            Some(0) => false,
            Some(1) => true,
            Some(_) => return Err(StoreError::Format("bad truncated flag")),
            None => return Err(StoreError::Format("file ends mid-trace")),
        };
        at += 1;
        let blob_len = read_varint(buf, &mut at)? as usize;
        let blob = buf
            .get(at..at + blob_len)
            .ok_or(StoreError::Format("blob overruns file"))?;
        at += blob_len;
        let symbols = compress::decompress(blob)?;
        set.insert(Trace::from_symbols(
            TraceId::new(process, thread),
            &symbols,
            truncated,
        ));
    }
    let hb = if version >= 2 {
        match buf.get(at) {
            Some(0) => HbLog::default(),
            Some(1) => {
                at += 1;
                HbLog::read_from(buf, &mut at)
                    .ok_or(StoreError::Format("malformed happens-before section"))?
            }
            Some(_) => return Err(StoreError::Format("bad HB-presence flag")),
            None => return Err(StoreError::Format("file ends before HB section")),
        }
    } else {
        HbLog::default()
    };
    Ok((set, hb))
}

/// Write `bytes` to `path` atomically: write a uniquely-named temp file
/// in the same directory, then rename it over the destination. A crash
/// (or full disk) mid-write leaves any previous file at `path` intact
/// instead of a truncated one; the failed temp file is cleaned up.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or(StoreError::Format("save path has no file name"))?;
    let tmp_name = format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let done = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = done {
        std::fs::remove_file(&tmp).ok();
        return Err(StoreError::Io(e));
    }
    Ok(())
}

/// Write a trace set to `path` (no happens-before section). The write
/// is atomic: an interrupted save never clobbers an existing file.
pub fn save(set: &TraceSet, path: &Path) -> Result<(), StoreError> {
    write_atomic(path, &to_bytes(set))
}

/// Write a trace set and its happens-before log to `path`, atomically.
pub fn save_full(set: &TraceSet, hb: &HbLog, path: &Path) -> Result<(), StoreError> {
    write_atomic(path, &to_bytes_full(set, Some(hb)))
}

/// Read a trace set from `path`.
pub fn load(path: &Path) -> Result<TraceSet, StoreError> {
    let buf = std::fs::read(path)?;
    from_bytes(&buf)
}

/// Read a trace set and its happens-before log from `path` (empty log
/// for files saved without one).
pub fn load_full(path: &Path) -> Result<(TraceSet, HbLog), StoreError> {
    let buf = std::fs::read(path)?;
    from_bytes_full(&buf)
}

const THREAD_MAGIC: &[u8; 4] = b"DTT1";
const REGISTRY_FILE: &str = "functions.dtfn";

/// Write a trace set as a directory — ParLOT's actual on-disk layout:
/// one compressed file per thread (`<process>.<thread>.dtt`) plus a
/// shared function-name table.
pub fn save_dir(set: &TraceSet, dir: &Path) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir)?;
    // Name table.
    let mut reg = Vec::new();
    let names = set.registry.names();
    write_varint(&mut reg, names.len() as u64);
    for n in &names {
        write_varint(&mut reg, n.len() as u64);
        reg.extend_from_slice(n.as_bytes());
    }
    write_atomic(&dir.join(REGISTRY_FILE), &reg)?;
    // Per-thread files.
    for t in set.iter() {
        let mut buf = Vec::new();
        buf.extend_from_slice(THREAD_MAGIC);
        buf.push(u8::from(t.truncated));
        buf.extend_from_slice(&compress::compress(&t.to_symbols()));
        write_atomic(
            &dir.join(format!("{}.{}.dtt", t.id.process, t.id.thread)),
            &buf,
        )?;
    }
    Ok(())
}

/// Read a trace set back from a [`save_dir`] directory.
pub fn load_dir(dir: &Path) -> Result<TraceSet, StoreError> {
    let reg_buf = std::fs::read(dir.join(REGISTRY_FILE))?;
    let mut at = 0usize;
    let n_names = read_varint(&reg_buf, &mut at)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = read_varint(&reg_buf, &mut at)? as usize;
        let bytes = reg_buf
            .get(at..at + len)
            .ok_or(StoreError::Format("name overruns registry file"))?;
        at += len;
        names.push(String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Utf8)?);
    }
    let registry = Arc::new(FunctionRegistry::from_names(names));
    let mut set = TraceSet::new(registry);

    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            // A `.dtt` file we cannot decode is a trace we would
            // silently drop — fail loudly instead of analyzing a
            // partial run. Other undecodable names are none of ours.
            if name.as_encoded_bytes().ends_with(b".dtt") {
                return Err(StoreError::Format("undecodable trace file name"));
            }
            continue;
        };
        let Some(stem) = name.strip_suffix(".dtt") else {
            continue;
        };
        let Some((p, t)) = stem.split_once('.') else {
            return Err(StoreError::Format("trace file name is not <p>.<t>.dtt"));
        };
        let (process, thread) = (
            p.parse::<u32>()
                .map_err(|_| StoreError::Format("bad process id in file name"))?,
            t.parse::<u32>()
                .map_err(|_| StoreError::Format("bad thread id in file name"))?,
        );
        let buf = std::fs::read(entry.path())?;
        if buf.len() < 5 || &buf[..4] != THREAD_MAGIC {
            return Err(StoreError::Format("bad per-thread trace file header"));
        }
        let truncated = match buf[4] {
            0 => false,
            1 => true,
            _ => return Err(StoreError::Format("bad truncated flag")),
        };
        let symbols = compress::decompress(&buf[5..])?;
        set.insert(Trace::from_symbols(
            TraceId::new(process, thread),
            &symbols,
            truncated,
        ));
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample_set() -> TraceSet {
        let reg = Arc::new(FunctionRegistry::new());
        let mut set = TraceSet::new(reg.clone());
        for p in 0..3u32 {
            let mut t = Trace::new(TraceId::new(p, 0));
            let main = reg.intern("main");
            let send = reg.intern("MPI_Send");
            t.events.push(TraceEvent::Call(main));
            for _ in 0..100 {
                t.events.push(TraceEvent::Call(send));
                t.events.push(TraceEvent::Return(send));
            }
            if p == 2 {
                t.truncated = true; // simulate a killed rank
            } else {
                t.events.push(TraceEvent::Return(main));
            }
            set.insert(t);
        }
        set
    }

    #[test]
    fn byte_round_trip() {
        let set = sample_set();
        let bytes = to_bytes(&set);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(back.registry.names(), set.registry.names());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            assert_eq!(bt.events, t.events);
            assert_eq!(bt.truncated, t.truncated);
        }
    }

    #[test]
    fn file_round_trip() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exec.dtts");
        save(&set, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn directory_round_trip() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_test");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        // One file per thread plus the registry.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, set.len() + 1);
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(back.registry.names(), set.registry.names());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            assert_eq!(bt.events, t.events);
            assert_eq!(bt.truncated, t.truncated);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_rejects_garbage() {
        let dir = std::env::temp_dir().join("dt_trace_store_dir_bad");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Missing registry file.
        assert!(load_dir(&dir).is_err());
        std::fs::write(dir.join(REGISTRY_FILE), [0u8]).unwrap(); // 0 names
        std::fs::write(dir.join("0.0.dtt"), b"XXXX\x00junk").unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `.dtt` file whose name is not valid UTF-8 used to be skipped
    /// silently, yielding a partial trace set; it must be a hard error.
    #[cfg(unix)]
    #[test]
    fn load_dir_rejects_undecodable_dtt_name() {
        use std::os::unix::ffi::OsStringExt;
        let dir = std::env::temp_dir().join("dt_trace_store_dir_nonutf8");
        std::fs::remove_dir_all(&dir).ok();
        let set = sample_set();
        save_dir(&set, &dir).unwrap();

        // Undecodable but not a trace file: still ignored.
        let stray = std::ffi::OsString::from_vec(b"str\xFFay.tmp".to_vec());
        std::fs::write(dir.join(&stray), b"x").unwrap();
        assert_eq!(load_dir(&dir).unwrap().len(), set.len());
        std::fs::remove_file(dir.join(&stray)).unwrap();

        // Undecodable *trace* file: loading must fail loudly …
        let bad = std::ffi::OsString::from_vec(b"9.\xFF0.dtt".to_vec());
        std::fs::write(dir.join(&bad), b"x").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Format("undecodable trace file name")),
            "{err:?}"
        );
        // … not silently yield a partial set.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hb_section_round_trips() {
        use crate::hb::{BlockedOp, HbOp, VectorClock};
        let set = sample_set();
        let mut hb = HbLog::new(3);
        let mut vc = VectorClock::zero(3);
        vc.tick(0);
        hb.push(TraceId::master(0), "MPI_Send", HbOp::Local, &vc);
        hb.blocked.push(BlockedOp {
            rank: 1,
            name: "MPI_Recv".to_string(),
            op: HbOp::Recv {
                src: Some(0),
                tag: 3,
            },
        });
        let bytes = to_bytes_full(&set, Some(&hb));
        let (back_set, back_hb) = from_bytes_full(&bytes).unwrap();
        assert_eq!(back_set.len(), set.len());
        assert_eq!(back_hb.events(), hb.events());
        assert_eq!(back_hb.blocked, hb.blocked);
        // Plain to_bytes/from_bytes still work and drop the section.
        let (_, empty_hb) = from_bytes_full(&to_bytes(&set)).unwrap();
        assert!(empty_hb.is_empty());
    }

    #[test]
    fn v1_files_still_load_with_empty_hb() {
        // Reconstruct a v1 byte stream: version byte 1, no trailing
        // HB-presence flag.
        let mut bytes = to_bytes(&sample_set());
        bytes[4] = 1;
        bytes.pop(); // drop the HB-presence byte
        let set = from_bytes(&bytes).unwrap();
        assert_eq!(set.len(), 3);
        let (_, hb) = from_bytes_full(&bytes).unwrap();
        assert!(hb.is_empty());
    }

    /// A save interrupted mid-write (simulated here by the truncated
    /// temp file a crashed writer leaves behind) must never clobber the
    /// previously saved file: data only reaches `path` via rename.
    #[test]
    fn interrupted_save_leaves_previous_file_loadable() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_atomic");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exec.dtts");
        save(&set, &path).unwrap();

        // Crashed writer: a partial (truncated) image parked under the
        // temp-file naming scheme, never renamed into place.
        let mut partial = to_bytes(&set);
        partial.truncate(partial.len() / 2);
        std::fs::write(dir.join(".exec.dtts.tmp.99999.0"), &partial).unwrap();

        // The real file is untouched and fully loadable.
        let back = load(&path).unwrap();
        assert_eq!(back.len(), set.len());

        // A subsequent save still works and leaves no temp files of its
        // own behind (only the planted crash artifact remains).
        save(&set, &path).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp.") && n != ".exec.dtts.tmp.99999.0")
            .collect();
        assert!(leftovers.is_empty(), "stray temps: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A failed atomic write (rename cannot land because a directory
    /// squats on the destination) reports the error and cleans up its
    /// temp file rather than leaving junk next to the data.
    #[test]
    fn failed_save_cleans_up_temp_file() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_atomic_fail");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocked.dtts");
        std::fs::create_dir_all(&path).unwrap(); // rename target is a dir
        assert!(save(&set, &path).is_err());
        let temps = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .count();
        assert_eq!(temps, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `load_dir` must skip a crashed writer's temp files rather than
    /// misparse them as trace files.
    #[test]
    fn load_dir_ignores_stray_temp_files() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_temps");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        std::fs::write(dir.join(".0.0.dtt.tmp.12345.7"), b"garbage").unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.len(), set.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        assert!(from_bytes(b"").is_err());
        assert!(from_bytes(b"XXXX\x01").is_err());
        assert!(from_bytes(b"DTTS\x07").is_err());
        let mut good = to_bytes(&sample_set());
        good.truncate(good.len() / 2);
        assert!(from_bytes(&good).is_err());
    }
}
