//! On-disk trace-set format (ParLOT's trace files).
//!
//! One execution serialises to a single self-describing binary file:
//!
//! ```text
//! "DTTS" ∥ version:u8
//! registry: varint count ∥ (varint len ∥ utf8 bytes)*
//! traces:   varint count ∥ (process:varint ∥ thread:varint ∥
//!                           truncated:u8 ∥ varint blob_len ∥ blob)*
//! hb:       (v2+) present:u8 ∥ HbLog section (see [`crate::hb`])
//! index:    (v3+) "DTIX" ∥ varint count ∥
//!                 (process ∥ thread ∥ truncated:u8 ∥
//!                  blob_off:varint ∥ blob_len:varint)*
//! footer:   (v3+) hb_off:u64 LE ∥ index_off:u64 LE
//! ```
//!
//! where each `blob` is the [`crate::compress`] encoding of the trace's
//! symbol stream — traces are stored *compressed*, exactly as ParLOT
//! writes them, and decompressed by DiffTrace's pre-processing stage.
//!
//! Version 2 appends the happens-before log (vector-clock-stamped MPI
//! events plus blocked-operation state) that `hbcheck` analyzes.
//! Version 3 appends a per-trace offset index plus a fixed-size footer
//! so [`IndexedSet`] can open a corpus without decoding (or even
//! touching) any trace blob: `blob_off` is the absolute file offset of
//! that trace's compressed blob, `hb_off` the offset of the
//! HB-presence byte, `index_off` the offset of the `"DTIX"` magic.
//! Earlier-version files still load — they simply carry an empty
//! [`HbLog`] (v1) and, for [`IndexedSet`], pay one cheap header scan
//! to reconstruct the index. Readers predating v3 diagnose v3 files
//! as `unsupported DTTS version` rather than misparsing the tail.

use crate::compress::{self, read_varint, write_varint, CodecError};
use crate::hb::HbLog;
use crate::registry::FunctionRegistry;
use crate::trace::{Trace, TraceId, TraceSet};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DTTS";
const INDEX_MAGIC: &[u8; 4] = b"DTIX";

/// Current `.dtts` container version. Bumped to 3 when the per-trace
/// offset index + footer were appended for [`IndexedSet`]; readers
/// older than the bump reject newer files with a diagnosed
/// `unsupported DTTS version` error instead of misparsing them.
pub const STORE_FORMAT_VERSION: u8 = 3;
const VERSION: u8 = STORE_FORMAT_VERSION;

/// Error reading a trace-set file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the file.
    Format(&'static str),
    /// A per-trace blob failed to decompress.
    Codec(CodecError),
    /// Embedded string was not UTF-8.
    Utf8,
    /// Structural problem that needs runtime context to describe
    /// (e.g. *which* trace stem collides).
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "trace store format error: {m}"),
            StoreError::Codec(e) => write!(f, "trace store codec error: {e}"),
            StoreError::Utf8 => write!(f, "trace store contains invalid UTF-8"),
            StoreError::Invalid(m) => write!(f, "trace store format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        match e {
            CodecError::Truncated => StoreError::Format("truncated blob"),
            other => StoreError::Codec(other),
        }
    }
}

/// Serialise a trace set to bytes (traces stored compressed), with no
/// happens-before section.
pub fn to_bytes(set: &TraceSet) -> Vec<u8> {
    to_bytes_full(set, None)
}

/// Serialise a trace set plus its happens-before log. `None` writes a
/// v2 file whose HB section is marked absent.
pub fn to_bytes_full(set: &TraceSet, hb: Option<&HbLog>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    let names = set.registry.names();
    write_varint(&mut out, names.len() as u64);
    for n in &names {
        write_varint(&mut out, n.len() as u64);
        out.extend_from_slice(n.as_bytes());
    }

    write_varint(&mut out, set.len() as u64);
    // (id, truncated, blob_off, blob_len) per trace, for the v3 index.
    let mut index = Vec::with_capacity(set.len());
    for t in set.iter() {
        write_varint(&mut out, u64::from(t.id.process));
        write_varint(&mut out, u64::from(t.id.thread));
        out.push(u8::from(t.truncated));
        let blob = compress::compress(&t.to_symbols());
        write_varint(&mut out, blob.len() as u64);
        index.push((t.id, t.truncated, out.len() as u64, blob.len() as u64));
        out.extend_from_slice(&blob);
    }
    let hb_off = out.len() as u64;
    match hb {
        Some(hb) => {
            out.push(1);
            hb.write_to(&mut out);
        }
        None => out.push(0),
    }
    let index_off = out.len() as u64;
    out.extend_from_slice(INDEX_MAGIC);
    write_varint(&mut out, index.len() as u64);
    for (id, truncated, blob_off, blob_len) in index {
        write_varint(&mut out, u64::from(id.process));
        write_varint(&mut out, u64::from(id.thread));
        out.push(u8::from(truncated));
        write_varint(&mut out, blob_off);
        write_varint(&mut out, blob_len);
    }
    out.extend_from_slice(&hb_off.to_le_bytes());
    out.extend_from_slice(&index_off.to_le_bytes());
    out
}

/// Deserialise a trace set from bytes, discarding any HB section.
pub fn from_bytes(buf: &[u8]) -> Result<TraceSet, StoreError> {
    from_bytes_full(buf).map(|(set, _)| set)
}

/// Deserialise a trace set and its happens-before log. V1 files (and
/// v2 files saved without one) yield an empty log.
pub fn from_bytes_full(buf: &[u8]) -> Result<(TraceSet, HbLog), StoreError> {
    if buf.len() < 5 {
        return Err(StoreError::Format("file too short"));
    }
    if &buf[..4] != MAGIC {
        return Err(StoreError::Format("bad magic (not a DTTS file)"));
    }
    let version = buf[4];
    if !(1..=VERSION).contains(&version) {
        return Err(StoreError::Format("unsupported DTTS version"));
    }
    let mut at = 5usize;

    let n_names = read_varint(buf, &mut at)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = read_varint(buf, &mut at)? as usize;
        let bytes = buf
            .get(at..at + len)
            .ok_or(StoreError::Format("name overruns file"))?;
        at += len;
        names.push(String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Utf8)?);
    }
    let registry = Arc::new(FunctionRegistry::from_names(names));

    let n_traces = read_varint(buf, &mut at)? as usize;
    let mut set = TraceSet::new(registry);
    for _ in 0..n_traces {
        let process = read_varint(buf, &mut at)? as u32;
        let thread = read_varint(buf, &mut at)? as u32;
        let truncated = match buf.get(at) {
            Some(0) => false,
            Some(1) => true,
            Some(_) => return Err(StoreError::Format("bad truncated flag")),
            None => return Err(StoreError::Format("file ends mid-trace")),
        };
        at += 1;
        let blob_len = read_varint(buf, &mut at)? as usize;
        let blob = buf
            .get(at..at + blob_len)
            .ok_or(StoreError::Format("blob overruns file"))?;
        at += blob_len;
        let symbols = compress::decompress(blob)?;
        set.insert(Trace::from_symbols(
            TraceId::new(process, thread),
            &symbols,
            truncated,
        ));
    }
    let hb = if version >= 2 {
        match buf.get(at) {
            Some(0) => HbLog::default(),
            Some(1) => {
                at += 1;
                HbLog::read_from(buf, &mut at)
                    .ok_or(StoreError::Format("malformed happens-before section"))?
            }
            Some(_) => return Err(StoreError::Format("bad HB-presence flag")),
            None => return Err(StoreError::Format("file ends before HB section")),
        }
    } else {
        HbLog::default()
    };
    Ok((set, hb))
}

/// Write `bytes` to `path` atomically: write a uniquely-named temp file
/// in the same directory, then rename it over the destination. A crash
/// (or full disk) mid-write leaves any previous file at `path` intact
/// instead of a truncated one; the failed temp file is cleaned up.
///
/// Public so every tool output in the workspace (baseline bundles,
/// batch reports, exported CSVs, metrics files) can share the store's
/// crash-safety discipline instead of re-deriving it with bare
/// `std::fs::write`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or(StoreError::Format("save path has no file name"))?;
    let tmp_name = format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let done = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = done {
        std::fs::remove_file(&tmp).ok();
        return Err(StoreError::Io(e));
    }
    Ok(())
}

/// Write a trace set to `path` (no happens-before section). The write
/// is atomic: an interrupted save never clobbers an existing file.
pub fn save(set: &TraceSet, path: &Path) -> Result<(), StoreError> {
    write_atomic(path, &to_bytes(set))
}

/// Write a trace set and its happens-before log to `path`, atomically.
pub fn save_full(set: &TraceSet, hb: &HbLog, path: &Path) -> Result<(), StoreError> {
    write_atomic(path, &to_bytes_full(set, Some(hb)))
}

/// Read a trace set from `path`.
pub fn load(path: &Path) -> Result<TraceSet, StoreError> {
    let buf = std::fs::read(path)?;
    from_bytes(&buf)
}

/// Read a trace set and its happens-before log from `path` (empty log
/// for files saved without one).
pub fn load_full(path: &Path) -> Result<(TraceSet, HbLog), StoreError> {
    let buf = std::fs::read(path)?;
    from_bytes_full(&buf)
}

const THREAD_MAGIC: &[u8; 4] = b"DTT1";
const REGISTRY_FILE: &str = "functions.dtfn";

/// Write a trace set as a directory — ParLOT's actual on-disk layout:
/// one compressed file per thread (`<process>.<thread>.dtt`) plus a
/// shared function-name table.
pub fn save_dir(set: &TraceSet, dir: &Path) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir)?;
    // Name table.
    let mut reg = Vec::new();
    let names = set.registry.names();
    write_varint(&mut reg, names.len() as u64);
    for n in &names {
        write_varint(&mut reg, n.len() as u64);
        reg.extend_from_slice(n.as_bytes());
    }
    write_atomic(&dir.join(REGISTRY_FILE), &reg)?;
    // Per-thread files.
    for t in set.iter() {
        let mut buf = Vec::new();
        buf.extend_from_slice(THREAD_MAGIC);
        buf.push(u8::from(t.truncated));
        buf.extend_from_slice(&compress::compress(&t.to_symbols()));
        write_atomic(
            &dir.join(format!("{}.{}.dtt", t.id.process, t.id.thread)),
            &buf,
        )?;
    }
    Ok(())
}

/// Read a trace set back from a [`save_dir`] directory.
pub fn load_dir(dir: &Path) -> Result<TraceSet, StoreError> {
    let reg_buf = std::fs::read(dir.join(REGISTRY_FILE))?;
    let mut at = 0usize;
    let n_names = read_varint(&reg_buf, &mut at)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = read_varint(&reg_buf, &mut at)? as usize;
        let bytes = reg_buf
            .get(at..at + len)
            .ok_or(StoreError::Format("name overruns registry file"))?;
        at += len;
        names.push(String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Utf8)?);
    }
    let registry = Arc::new(FunctionRegistry::from_names(names));
    let mut set = TraceSet::new(registry);

    // Collect and sort trace files by name before insertion:
    // `read_dir` order is OS-dependent, and error reporting (which
    // file failed, which stems collide) must not depend on it.
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            // A `.dtt` file we cannot decode is a trace we would
            // silently drop — fail loudly instead of analyzing a
            // partial run. Other undecodable names are none of ours.
            if name.as_encoded_bytes().ends_with(b".dtt") {
                return Err(StoreError::Format("undecodable trace file name"));
            }
            continue;
        };
        if name.ends_with(".dtt") {
            files.push((name.to_string(), entry.path()));
        }
    }
    files.sort();

    for (name, path) in files {
        let stem = name.strip_suffix(".dtt").expect("collected above");
        let Some((p, t)) = stem.split_once('.') else {
            return Err(StoreError::Format("trace file name is not <p>.<t>.dtt"));
        };
        let (process, thread) = (
            p.parse::<u32>()
                .map_err(|_| StoreError::Format("bad process id in file name"))?,
            t.parse::<u32>()
                .map_err(|_| StoreError::Format("bad thread id in file name"))?,
        );
        let id = TraceId::new(process, thread);
        if set.get(id).is_some() {
            // Two stems parsing to the same trace id (e.g. "01.2.dtt"
            // vs "1.2.dtt") used to shadow silently in read_dir order.
            return Err(StoreError::Invalid(format!(
                "duplicate trace stem: {name} collides with an earlier file for trace {id}"
            )));
        }
        let buf = std::fs::read(&path)?;
        if buf.len() < 5 || &buf[..4] != THREAD_MAGIC {
            return Err(StoreError::Format("bad per-thread trace file header"));
        }
        let truncated = match buf[4] {
            0 => false,
            1 => true,
            _ => return Err(StoreError::Format("bad truncated flag")),
        };
        let symbols = compress::decompress(&buf[5..])?;
        set.insert(Trace::from_symbols(
            TraceId::new(process, thread),
            &symbols,
            truncated,
        ));
    }
    Ok(set)
}

/// One trace's location inside an [`IndexedSet`]'s byte image.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    id: TraceId,
    truncated: bool,
    off: usize,
    len: usize,
}

/// An index-backed, lazily-decoded view of a `.dtts` corpus.
///
/// `open` parses only the registry, the happens-before log, and the
/// per-trace offset index (read directly from a v3 file's tail; for
/// v1/v2 files reconstructed by a header scan that *skips* every
/// blob). No trace blob is decompressed until someone asks for that
/// trace, so a single-trace query touches one trace's bytes instead of
/// the whole corpus. Decoded traces are cached interior-mutably —
/// `get` takes `&self` and is safe to call from many threads; the
/// first caller for a given trace decodes it, concurrent callers for
/// the same trace block on that decode, and everyone else proceeds
/// independently.
///
/// The number of blob decodes actually performed is counted and can be
/// reported as the dt-obs `store_trace_decodes` counter via
/// [`IndexedSet::report_to`] — the observable proof that lazy decode
/// stays lazy.
pub struct IndexedSet {
    buf: Vec<u8>,
    /// Shared function-name table (parsed eagerly — it is small and
    /// every consumer needs it).
    pub registry: Arc<FunctionRegistry>,
    entries: Vec<IndexEntry>,
    hb: HbLog,
    cells: Vec<std::sync::OnceLock<Option<Trace>>>,
    full: std::sync::OnceLock<Arc<TraceSet>>,
    decodes: std::sync::atomic::AtomicU64,
}

impl fmt::Debug for IndexedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexedSet")
            .field("traces", &self.entries.len())
            .field("decoded", &self.decode_count())
            .finish()
    }
}

impl IndexedSet {
    /// Open a `.dtts` file lazily.
    pub fn open(path: &Path) -> Result<IndexedSet, StoreError> {
        IndexedSet::from_bytes(std::fs::read(path)?)
    }

    /// Build an indexed view over an in-memory `.dtts` image.
    pub fn from_bytes(buf: Vec<u8>) -> Result<IndexedSet, StoreError> {
        if buf.len() < 5 {
            return Err(StoreError::Format("file too short"));
        }
        if &buf[..4] != MAGIC {
            return Err(StoreError::Format("bad magic (not a DTTS file)"));
        }
        let version = buf[4];
        if !(1..=VERSION).contains(&version) {
            return Err(StoreError::Format("unsupported DTTS version"));
        }
        let mut at = 5usize;
        let n_names = read_varint(&buf, &mut at)? as usize;
        let mut names = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            let len = read_varint(&buf, &mut at)? as usize;
            let bytes = buf
                .get(at..at + len)
                .ok_or(StoreError::Format("name overruns file"))?;
            at += len;
            names.push(String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Utf8)?);
        }
        let registry = Arc::new(FunctionRegistry::from_names(names));

        let (mut entries, hb_at) = if version >= 3 {
            Self::read_index(&buf)?
        } else {
            Self::scan_headers(&buf, at)?
        };
        for e in &entries {
            if e.off.checked_add(e.len).is_none_or(|end| end > buf.len()) {
                return Err(StoreError::Format("index entry overruns file"));
            }
        }
        entries.sort_by_key(|e| e.id);
        if entries.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(StoreError::Format("duplicate trace id in store"));
        }

        let hb = if version >= 2 {
            let mut at = hb_at;
            match buf.get(at) {
                Some(0) => HbLog::default(),
                Some(1) => {
                    at += 1;
                    HbLog::read_from(&buf, &mut at)
                        .ok_or(StoreError::Format("malformed happens-before section"))?
                }
                Some(_) => return Err(StoreError::Format("bad HB-presence flag")),
                None => return Err(StoreError::Format("file ends before HB section")),
            }
        } else {
            HbLog::default()
        };

        let n = entries.len();
        Ok(IndexedSet {
            buf,
            registry,
            entries,
            hb,
            cells: (0..n).map(|_| std::sync::OnceLock::new()).collect(),
            full: std::sync::OnceLock::new(),
            decodes: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Read the v3 tail: footer → index section. Returns the entries
    /// and the offset of the HB-presence byte.
    fn read_index(buf: &[u8]) -> Result<(Vec<IndexEntry>, usize), StoreError> {
        if buf.len() < 16 {
            return Err(StoreError::Format("v3 file too short for footer"));
        }
        let foot = buf.len() - 16;
        let hb_off = u64::from_le_bytes(buf[foot..foot + 8].try_into().unwrap()) as usize;
        let index_off = u64::from_le_bytes(buf[foot + 8..].try_into().unwrap()) as usize;
        if hb_off >= foot || index_off >= foot || hb_off > index_off {
            return Err(StoreError::Format("bad v3 footer offsets"));
        }
        if buf.get(index_off..index_off + 4) != Some(INDEX_MAGIC.as_slice()) {
            return Err(StoreError::Format("bad index magic"));
        }
        let mut at = index_off + 4;
        let count = read_varint(buf, &mut at)? as usize;
        if count > foot - index_off {
            return Err(StoreError::Format("index count overruns file"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let process = read_varint(buf, &mut at)? as u32;
            let thread = read_varint(buf, &mut at)? as u32;
            let truncated = match buf.get(at) {
                Some(0) => false,
                Some(1) => true,
                _ => return Err(StoreError::Format("bad truncated flag in index")),
            };
            at += 1;
            let off = read_varint(buf, &mut at)? as usize;
            let len = read_varint(buf, &mut at)? as usize;
            entries.push(IndexEntry {
                id: TraceId::new(process, thread),
                truncated,
                off,
                len,
            });
        }
        Ok((entries, hb_off))
    }

    /// Reconstruct the index for a v1/v2 file by scanning trace
    /// headers and *skipping* each blob — cheap (no decompression),
    /// one pass over the header bytes.
    fn scan_headers(buf: &[u8], mut at: usize) -> Result<(Vec<IndexEntry>, usize), StoreError> {
        let n_traces = read_varint(buf, &mut at)? as usize;
        let mut entries = Vec::with_capacity(n_traces.min(buf.len()));
        for _ in 0..n_traces {
            let process = read_varint(buf, &mut at)? as u32;
            let thread = read_varint(buf, &mut at)? as u32;
            let truncated = match buf.get(at) {
                Some(0) => false,
                Some(1) => true,
                Some(_) => return Err(StoreError::Format("bad truncated flag")),
                None => return Err(StoreError::Format("file ends mid-trace")),
            };
            at += 1;
            let len = read_varint(buf, &mut at)? as usize;
            if at.checked_add(len).is_none_or(|end| end > buf.len()) {
                return Err(StoreError::Format("blob overruns file"));
            }
            entries.push(IndexEntry {
                id: TraceId::new(process, thread),
                truncated,
                off: at,
                len,
            });
            at += len;
        }
        Ok((entries, at))
    }

    /// Number of traces in the corpus (decoded or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All trace ids, in sorted order — without decoding anything.
    pub fn ids(&self) -> Vec<TraceId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Does the corpus contain `id`? (No decode.)
    pub fn contains(&self, id: TraceId) -> bool {
        self.entries.binary_search_by_key(&id, |e| e.id).is_ok()
    }

    /// The happens-before log (parsed eagerly at open).
    pub fn hb(&self) -> &HbLog {
        &self.hb
    }

    /// Fetch one trace, decoding it on first access. Concurrent calls
    /// are safe; each blob is decompressed at most once.
    pub fn get(&self, id: TraceId) -> Result<&Trace, StoreError> {
        let idx = self
            .entries
            .binary_search_by_key(&id, |e| e.id)
            .map_err(|_| StoreError::Invalid(format!("trace {id} not in store")))?;
        self.decode(idx)
    }

    fn decode(&self, idx: usize) -> Result<&Trace, StoreError> {
        use std::sync::atomic::Ordering;
        let e = self.entries[idx];
        let mut fresh = false;
        let cell = self.cells[idx].get_or_init(|| {
            fresh = true;
            let blob = &self.buf[e.off..e.off + e.len];
            compress::decompress(blob)
                .ok()
                .map(|symbols| Trace::from_symbols(e.id, &symbols, e.truncated))
        });
        if fresh {
            self.decodes.fetch_add(1, Ordering::Relaxed);
        }
        cell.as_ref()
            .ok_or_else(|| StoreError::Invalid(format!("trace {} blob failed to decode", e.id)))
    }

    /// Materialize a [`TraceSet`] holding just `ids` (sharing the
    /// corpus registry) — the unit a single-trace query analyzes.
    pub fn subset(&self, ids: &[TraceId]) -> Result<TraceSet, StoreError> {
        let mut set = TraceSet::new(self.registry.clone());
        for &id in ids {
            set.insert(self.get(id)?.clone());
        }
        Ok(set)
    }

    /// The whole corpus as a [`TraceSet`], decoding every trace. The
    /// set is built once and shared (`Arc`) across callers — the
    /// resident-daemon case where many full-corpus queries hit the
    /// same execution.
    pub fn full_set(&self) -> Result<Arc<TraceSet>, StoreError> {
        // Decode (and thereby validate) every blob first so the
        // infallible cache-fill below cannot hide an error.
        for idx in 0..self.entries.len() {
            self.decode(idx)?;
        }
        Ok(self
            .full
            .get_or_init(|| {
                let mut set = TraceSet::new(self.registry.clone());
                for idx in 0..self.entries.len() {
                    set.insert(self.decode(idx).expect("validated above").clone());
                }
                Arc::new(set)
            })
            .clone())
    }

    /// How many trace blobs have actually been decompressed so far.
    pub fn decode_count(&self) -> u64 {
        self.decodes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Report the decode tally as the `store_trace_decodes` counter —
    /// the acceptance probe that a 1-trace query on an N-trace corpus
    /// decodes exactly one blob.
    pub fn report_to(&self, rec: &dyn dt_obs::Recorder) {
        if rec.enabled() {
            rec.add("store_trace_decodes", self.decode_count());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample_set() -> TraceSet {
        let reg = Arc::new(FunctionRegistry::new());
        let mut set = TraceSet::new(reg.clone());
        for p in 0..3u32 {
            let mut t = Trace::new(TraceId::new(p, 0));
            let main = reg.intern("main");
            let send = reg.intern("MPI_Send");
            t.events.push(TraceEvent::Call(main));
            for _ in 0..100 {
                t.events.push(TraceEvent::Call(send));
                t.events.push(TraceEvent::Return(send));
            }
            if p == 2 {
                t.truncated = true; // simulate a killed rank
            } else {
                t.events.push(TraceEvent::Return(main));
            }
            set.insert(t);
        }
        set
    }

    #[test]
    fn byte_round_trip() {
        let set = sample_set();
        let bytes = to_bytes(&set);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(back.registry.names(), set.registry.names());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            assert_eq!(bt.events, t.events);
            assert_eq!(bt.truncated, t.truncated);
        }
    }

    #[test]
    fn file_round_trip() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exec.dtts");
        save(&set, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn directory_round_trip() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_test");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        // One file per thread plus the registry.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, set.len() + 1);
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(back.registry.names(), set.registry.names());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            assert_eq!(bt.events, t.events);
            assert_eq!(bt.truncated, t.truncated);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_rejects_garbage() {
        let dir = std::env::temp_dir().join("dt_trace_store_dir_bad");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Missing registry file.
        assert!(load_dir(&dir).is_err());
        std::fs::write(dir.join(REGISTRY_FILE), [0u8]).unwrap(); // 0 names
        std::fs::write(dir.join("0.0.dtt"), b"XXXX\x00junk").unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `.dtt` file whose name is not valid UTF-8 used to be skipped
    /// silently, yielding a partial trace set; it must be a hard error.
    #[cfg(unix)]
    #[test]
    fn load_dir_rejects_undecodable_dtt_name() {
        use std::os::unix::ffi::OsStringExt;
        let dir = std::env::temp_dir().join("dt_trace_store_dir_nonutf8");
        std::fs::remove_dir_all(&dir).ok();
        let set = sample_set();
        save_dir(&set, &dir).unwrap();

        // Undecodable but not a trace file: still ignored.
        let stray = std::ffi::OsString::from_vec(b"str\xFFay.tmp".to_vec());
        std::fs::write(dir.join(&stray), b"x").unwrap();
        assert_eq!(load_dir(&dir).unwrap().len(), set.len());
        std::fs::remove_file(dir.join(&stray)).unwrap();

        // Undecodable *trace* file: loading must fail loudly …
        let bad = std::ffi::OsString::from_vec(b"9.\xFF0.dtt".to_vec());
        std::fs::write(dir.join(&bad), b"x").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Format("undecodable trace file name")),
            "{err:?}"
        );
        // … not silently yield a partial set.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hb_section_round_trips() {
        use crate::hb::{BlockedOp, HbOp, VectorClock};
        let set = sample_set();
        let mut hb = HbLog::new(3);
        let mut vc = VectorClock::zero(3);
        vc.tick(0);
        hb.push(TraceId::master(0), "MPI_Send", HbOp::Local, &vc);
        hb.blocked.push(BlockedOp {
            rank: 1,
            name: "MPI_Recv".to_string(),
            op: HbOp::Recv {
                src: Some(0),
                tag: 3,
            },
        });
        let bytes = to_bytes_full(&set, Some(&hb));
        let (back_set, back_hb) = from_bytes_full(&bytes).unwrap();
        assert_eq!(back_set.len(), set.len());
        assert_eq!(back_hb.events(), hb.events());
        assert_eq!(back_hb.blocked, hb.blocked);
        // Plain to_bytes/from_bytes still work and drop the section.
        let (_, empty_hb) = from_bytes_full(&to_bytes(&set)).unwrap();
        assert!(empty_hb.is_empty());
    }

    /// Strip a v3 image down to its v2 body (everything before the
    /// index section) and stamp the requested version byte.
    fn downgrade(mut bytes: Vec<u8>, version: u8) -> Vec<u8> {
        let foot = bytes.len() - 16;
        let index_off = u64::from_le_bytes(bytes[foot + 8..].try_into().unwrap()) as usize;
        bytes.truncate(index_off);
        bytes[4] = version;
        bytes
    }

    #[test]
    fn v1_files_still_load_with_empty_hb() {
        // Reconstruct a v1 byte stream: version byte 1, no index tail,
        // no trailing HB-presence flag.
        let mut bytes = downgrade(to_bytes(&sample_set()), 1);
        bytes.pop(); // drop the HB-presence byte
        let set = from_bytes(&bytes).unwrap();
        assert_eq!(set.len(), 3);
        let (_, hb) = from_bytes_full(&bytes).unwrap();
        assert!(hb.is_empty());
    }

    #[test]
    fn v2_files_still_load() {
        let bytes = downgrade(to_bytes(&sample_set()), 2);
        let set = from_bytes(&bytes).unwrap();
        assert_eq!(set.len(), 3);
    }

    /// A save interrupted mid-write (simulated here by the truncated
    /// temp file a crashed writer leaves behind) must never clobber the
    /// previously saved file: data only reaches `path` via rename.
    #[test]
    fn interrupted_save_leaves_previous_file_loadable() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_atomic");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exec.dtts");
        save(&set, &path).unwrap();

        // Crashed writer: a partial (truncated) image parked under the
        // temp-file naming scheme, never renamed into place.
        let mut partial = to_bytes(&set);
        partial.truncate(partial.len() / 2);
        std::fs::write(dir.join(".exec.dtts.tmp.99999.0"), &partial).unwrap();

        // The real file is untouched and fully loadable.
        let back = load(&path).unwrap();
        assert_eq!(back.len(), set.len());

        // A subsequent save still works and leaves no temp files of its
        // own behind (only the planted crash artifact remains).
        save(&set, &path).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp.") && n != ".exec.dtts.tmp.99999.0")
            .collect();
        assert!(leftovers.is_empty(), "stray temps: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A failed atomic write (rename cannot land because a directory
    /// squats on the destination) reports the error and cleans up its
    /// temp file rather than leaving junk next to the data.
    #[test]
    fn failed_save_cleans_up_temp_file() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_atomic_fail");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocked.dtts");
        std::fs::create_dir_all(&path).unwrap(); // rename target is a dir
        assert!(save(&set, &path).is_err());
        let temps = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .count();
        assert_eq!(temps, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `load_dir` must skip a crashed writer's temp files rather than
    /// misparse them as trace files.
    #[test]
    fn load_dir_ignores_stray_temp_files() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_temps");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        std::fs::write(dir.join(".0.0.dtt.tmp.12345.7"), b"garbage").unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.len(), set.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        assert!(from_bytes(b"").is_err());
        assert!(from_bytes(b"XXXX\x01").is_err());
        assert!(from_bytes(b"DTTS\x07").is_err());
        let mut good = to_bytes(&sample_set());
        good.truncate(good.len() / 2);
        assert!(from_bytes(&good).is_err());
    }

    /// Files written before the v3 bump reject v3 images with a
    /// diagnosed error — simulated here by the v2-era version check.
    #[test]
    fn old_readers_diagnose_v3_files() {
        let bytes = to_bytes(&sample_set());
        assert_eq!(bytes[4], 3);
        // A v2-era reader accepted only versions 1 and 2.
        let v2_era_accepts = |v: u8| v == 1 || v == 2;
        assert!(!v2_era_accepts(bytes[4]));
        // And today's reader still diagnoses *future* versions.
        let mut future = bytes;
        future[4] = VERSION + 1;
        let err = from_bytes(&future).unwrap_err();
        assert!(
            matches!(err, StoreError::Format("unsupported DTTS version")),
            "{err:?}"
        );
    }

    #[test]
    fn indexed_open_decodes_nothing() {
        let set = sample_set();
        let ix = IndexedSet::from_bytes(to_bytes(&set)).unwrap();
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.ids(), set.ids());
        assert_eq!(ix.registry.names(), set.registry.names());
        assert_eq!(ix.decode_count(), 0);
    }

    #[test]
    fn indexed_single_get_decodes_exactly_one() {
        let set = sample_set();
        let ix = IndexedSet::from_bytes(to_bytes(&set)).unwrap();
        let id = TraceId::new(1, 0);
        let t = ix.get(id).unwrap();
        assert_eq!(t.events, set.get(id).unwrap().events);
        assert_eq!(ix.decode_count(), 1);
        // Repeated access hits the cache — no second decode.
        ix.get(id).unwrap();
        assert_eq!(ix.decode_count(), 1);
        // An unknown id is a diagnosed error, not a panic.
        assert!(ix.get(TraceId::new(9, 9)).is_err());
        assert_eq!(ix.decode_count(), 1);
    }

    #[test]
    fn indexed_subset_and_full_set_match_eager_load() {
        let set = sample_set();
        let bytes = to_bytes(&set);
        let ix = IndexedSet::from_bytes(bytes.clone()).unwrap();
        let sub = ix.subset(&[TraceId::new(2, 0)]).unwrap();
        assert_eq!(sub.len(), 1);
        assert!(sub.get(TraceId::new(2, 0)).unwrap().truncated);
        let full = ix.full_set().unwrap();
        let eager = from_bytes(&bytes).unwrap();
        assert_eq!(full.len(), eager.len());
        for t in eager.iter() {
            assert_eq!(full.get(t.id).unwrap().events, t.events);
        }
        assert_eq!(ix.decode_count(), 3);
        // The full set is built once and shared.
        assert!(Arc::ptr_eq(&full, &ix.full_set().unwrap()));
    }

    #[test]
    fn indexed_open_reads_v1_and_v2_files_via_header_scan() {
        let set = sample_set();
        let v2 = downgrade(to_bytes(&set), 2);
        let ix = IndexedSet::from_bytes(v2).unwrap();
        assert_eq!(ix.decode_count(), 0);
        assert_eq!(ix.full_set().unwrap().len(), set.len());

        let mut v1 = downgrade(to_bytes(&set), 1);
        v1.pop();
        let ix = IndexedSet::from_bytes(v1).unwrap();
        assert_eq!(ix.len(), 3);
        assert!(ix.hb().is_empty());
        assert_eq!(
            ix.get(TraceId::new(0, 0)).unwrap().events,
            set.get(TraceId::new(0, 0)).unwrap().events
        );
    }

    #[test]
    fn indexed_hb_section_parsed_eagerly() {
        use crate::hb::{HbOp, VectorClock};
        let set = sample_set();
        let mut hb = HbLog::new(3);
        let mut vc = VectorClock::zero(3);
        vc.tick(0);
        hb.push(TraceId::master(0), "MPI_Send", HbOp::Local, &vc);
        let ix = IndexedSet::from_bytes(to_bytes_full(&set, Some(&hb))).unwrap();
        assert_eq!(ix.hb().events(), hb.events());
        assert_eq!(ix.decode_count(), 0);
    }

    #[test]
    fn indexed_rejects_corrupt_tails() {
        let bytes = to_bytes(&sample_set());
        // Truncated footer.
        let mut cut = bytes.clone();
        cut.truncate(cut.len() - 8);
        assert!(IndexedSet::from_bytes(cut).is_err());
        // Footer pointing past the file.
        let mut wild = bytes.clone();
        let n = wild.len();
        wild[n - 8..].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(IndexedSet::from_bytes(wild).is_err());
        // Corrupt blob: surfaces at decode time, as a diagnosed error.
        let foot = bytes.len() - 16;
        let hb_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;
        let mut torn = bytes;
        for b in &mut torn[hb_off - 4..hb_off] {
            *b = 0xFF;
        }
        let ix = IndexedSet::from_bytes(torn).unwrap();
        let last = *ix.ids().last().unwrap();
        assert!(ix.get(last).is_err());
    }

    #[test]
    fn indexed_concurrent_gets_decode_each_trace_once() {
        let set = sample_set();
        let ix = IndexedSet::from_bytes(to_bytes(&set)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for id in ix.ids() {
                        ix.get(id).unwrap();
                    }
                });
            }
        });
        assert_eq!(ix.decode_count(), set.len() as u64);
    }

    #[test]
    fn indexed_reports_decode_counter() {
        let rec = dt_obs::MetricsRecorder::new();
        let ix = IndexedSet::from_bytes(to_bytes(&sample_set())).unwrap();
        ix.get(TraceId::new(0, 0)).unwrap();
        ix.report_to(&rec);
        let m = rec.finish("test", 1);
        let n = m
            .counters
            .iter()
            .find(|(name, _)| name == "store_trace_decodes")
            .map(|(_, v)| *v);
        assert_eq!(n, Some(1));
    }

    /// Duplicate stems ("01.2.dtt" vs "1.2.dtt" both parse to trace
    /// 1.2) used to shadow silently in OS `read_dir` order; they must
    /// be a diagnosed error naming the collision.
    #[test]
    fn load_dir_rejects_duplicate_trace_stems() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_dup");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        std::fs::copy(dir.join("1.0.dtt"), dir.join("01.0.dtt")).unwrap();
        let err = load_dir(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("duplicate trace stem"), "{msg}");
        assert!(msg.contains("1.0"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `load_dir` sorts trace files by name, so which file "wins" an
    /// error and the traversal order no longer depend on the OS's
    /// `read_dir` order. Probed via the error for a malformed stem:
    /// with two bad files present, the lexicographically first one is
    /// always the one reported.
    #[test]
    fn load_dir_is_deterministic_under_any_read_dir_order() {
        let set = sample_set();
        let dir = std::env::temp_dir().join("dt_trace_store_dir_sorted");
        std::fs::remove_dir_all(&dir).ok();
        save_dir(&set, &dir).unwrap();
        // Loads fine when clean.
        assert_eq!(load_dir(&dir).unwrap().len(), set.len());
        // Plant a duplicate late in sort order and one early: the
        // first collision in *name* order is diagnosed.
        std::fs::copy(dir.join("0.0.dtt"), dir.join("00.0.dtt")).unwrap();
        std::fs::copy(dir.join("2.0.dtt"), dir.join("02.0.dtt")).unwrap();
        let msg = load_dir(&dir).unwrap_err().to_string();
        // "00.0.dtt" sorts before "0.0.dtt"; the collision is reported
        // when the *second* name for trace 0.0 (i.e. "0.0.dtt") is
        // reached — before trace 2.0's pair is ever considered.
        assert!(msg.contains("0.0.dtt"), "{msg}");
        assert!(!msg.contains("2.0"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
