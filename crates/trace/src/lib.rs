//! `dt-trace` — ParLOT-style whole-program function-call tracing.
//!
//! The DiffTrace paper collects its input with **ParLOT** (Taheri et al.,
//! ESPT 2018): a Pin-based binary instrumentation tool that records, per
//! thread, the sequence of *function call and return* events, compressed
//! on the fly (ratios beyond 21,000×, a few KB/s per core).
//!
//! This crate is the reproduction's substitute for ParLOT + Pin. Instead
//! of dynamic binary instrumentation it provides an explicit
//! instrumentation API with the **same observable output**: per-thread
//! streams of function-ID call/return events.
//!
//! * [`FunctionRegistry`] interns function names to dense [`FnId`]s —
//!   the moral equivalent of Pin's image/function tables.
//! * [`Tracer`] is a per-thread recording handle. Scope guards
//!   ([`Tracer::enter`]) pair calls with returns; [`Tracer::poison`]
//!   models a killed/deadlocked thread whose trace is truncated
//!   mid-call, which is exactly the signature DiffTrace exploits to spot
//!   hangs ("the last entry is a call that never returned").
//! * [`TraceCollector`] gathers finished per-thread traces into a
//!   [`TraceSet`].
//! * [`compress`] implements the on-the-fly trace compressor: an
//!   LZ-style coder specialised for extremely repetitive (loopy) symbol
//!   streams; [`store`] is the on-disk format (ParLOT's trace files).
//! * [`stats`] reproduces the §V trace statistics (distinct functions,
//!   compressed bytes per thread, calls per process).
//!
//! # Example
//!
//! ```
//! use dt_trace::{FunctionRegistry, TraceCollector, TraceId};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(FunctionRegistry::new());
//! let collector = TraceCollector::shared(registry.clone());
//!
//! let tracer = collector.tracer(TraceId::new(0, 0));
//! {
//!     let _main = tracer.enter("main");
//!     let _init = tracer.enter("MPI_Init");
//! } // scopes close in order: returns recorded
//! tracer.finish();
//!
//! let set = collector.into_trace_set();
//! let trace = set.get(TraceId::new(0, 0)).unwrap();
//! assert_eq!(trace.events.len(), 4); // 2 calls + 2 returns
//! ```

pub mod collector;
pub mod compress;
pub mod event;
pub mod hash;
pub mod hb;
pub mod race;
pub mod registry;
pub mod req;
pub mod stats;
pub mod store;
pub mod trace;

pub use collector::{TraceCollector, Tracer};
pub use compress::StreamCompressor;
pub use event::TraceEvent;
pub use hb::{BlockedOp, HbEvent, HbLog, HbOp, PendingCollective, UnmatchedSend, VectorClock};
pub use race::RaceOp;
pub use registry::{FnId, FunctionRegistry};
pub use req::ReqMarker;
pub use stats::{ProcessStats, TraceSetStats, TraceStats};
pub use store::{IndexedSet, StoreError, STORE_FORMAT_VERSION};
pub use trace::{Trace, TraceId, TraceSet};
