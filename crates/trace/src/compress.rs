//! ParLOT-style on-the-fly trace compression.
//!
//! ParLOT's key enabler is that whole-program call traces are almost
//! entirely loops, so an incremental compressor achieves ratios in the
//! thousands while writing only a few KB/s per core. We reproduce that
//! property with an LZ77-family coder specialised for `u32` symbol
//! streams:
//!
//! * greedy longest-match search via a 3-gram hash chain over the whole
//!   already-seen stream (unbounded window — traces are small in
//!   compressed form precisely because matches may reach far back);
//! * matches may **overlap** their source (`len > dist`), which encodes
//!   `N` iterations of a loop of period `dist` as a *single token* — the
//!   step that yields ratios ≫ 1000 on loopy traces;
//! * LEB128 varint encoding of literals and match headers.
//!
//! The format is self-describing (`magic ∥ version ∥ count ∥ tokens`)
//! and the decoder validates every structural invariant, returning
//! [`CodecError`] instead of panicking on corrupt input.

use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"DTLZ";
const VERSION: u8 = 1;
/// Minimum match length worth a token (shorter is cheaper as literals).
const MIN_MATCH: usize = 3;
/// Longest-match candidates examined per position.
const MAX_CHAIN: usize = 64;

/// Error decoding a compressed trace blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended mid-token.
    Truncated,
    /// A varint exceeded its width or a match referenced data before
    /// the start of the stream.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic bytes (not a DTLZ blob)"),
            CodecError::BadVersion(v) => write!(f, "unsupported DTLZ version {v}"),
            CodecError::Truncated => write!(f, "compressed stream ended unexpectedly"),
            CodecError::Corrupt(m) => write!(f, "corrupt compressed stream: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// LEB128-encode `v` into `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128-decode from `buf[*at..]`, advancing `*at`.
pub fn read_varint(buf: &[u8], at: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*at).ok_or(CodecError::Truncated)?;
        *at += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint too long"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn gram(s: &[u32], i: usize) -> u64 {
    // Mix three consecutive symbols into one hash key.
    let a = s[i] as u64;
    let b = s[i + 1] as u64;
    let c = s[i + 2] as u64;
    a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (c << 1)
}

/// Compress a symbol stream.
pub fn compress(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + symbols.len() / 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_varint(&mut out, symbols.len() as u64);

    let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
    let n = symbols.len();
    let mut i = 0;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            if let Some(chain) = table.get(&gram(symbols, i)) {
                for &j in chain.iter().rev().take(MAX_CHAIN) {
                    // Verify the gram (hash collisions possible) and
                    // extend. Overlap is allowed: `j + len` may run past
                    // `i` — since `j < i`, the compared index always
                    // stays behind `i + len`, i.e. within data the
                    // decoder will already have reconstructed.
                    let mut len = 0usize;
                    while i + len < n && symbols[j + len] == symbols[i + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = i - j;
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            // Token: (len << 1) | 1, then dist.
            write_varint(&mut out, ((best_len as u64) << 1) | 1);
            write_varint(&mut out, best_dist as u64);
            for k in i..i + best_len {
                if k + MIN_MATCH <= n {
                    table.entry(gram(symbols, k)).or_default().push(k);
                }
            }
            i += best_len;
        } else {
            // Token: (symbol << 1) | 0.
            write_varint(&mut out, (symbols[i] as u64) << 1);
            if i + MIN_MATCH <= n {
                table.entry(gram(symbols, i)).or_default().push(i);
            }
            i += 1;
        }
    }
    out
}

/// Longest match a streaming token may encode (bounds emission lag).
pub const STREAM_MAX_MATCH: usize = 4096;
/// Buffered symbols that trigger a processing pass.
pub const STREAM_TRIGGER: usize = 8192;

/// Incremental (on-the-fly) compressor — how ParLOT actually writes
/// traces: symbols are pushed as the program runs, tokens are emitted
/// with bounded lag, and [`StreamCompressor::finish`] produces a blob
/// readable by the ordinary [`decompress`].
///
/// Matches are capped at [`STREAM_MAX_MATCH`] symbols (so a token can
/// be emitted as soon as its maximal extension is decidable); long
/// loops simply span several tokens, costing a few bytes per 4096
/// symbols — ratios stay in the thousands on loopy traces.
#[derive(Debug, Default)]
pub struct StreamCompressor {
    window: Vec<u32>,
    table: HashMap<u64, Vec<usize>>,
    /// Next window position without an emitted token.
    pos: usize,
    tokens: Vec<u8>,
}

impl StreamCompressor {
    /// A fresh streaming compressor.
    pub fn new() -> StreamCompressor {
        StreamCompressor::default()
    }

    /// Append one symbol.
    pub fn push(&mut self, sym: u32) {
        self.window.push(sym);
        if self.window.len() - self.pos >= STREAM_TRIGGER {
            self.process(false);
        }
    }

    /// Append many symbols.
    pub fn extend<I: IntoIterator<Item = u32>>(&mut self, syms: I) {
        for s in syms {
            self.push(s);
        }
    }

    /// Symbols accepted so far.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Bytes of emitted tokens so far (monitoring the write-out rate —
    /// the paper's "a few kilobytes per second per core").
    pub fn emitted_bytes(&self) -> usize {
        self.tokens.len()
    }

    /// Finalize: flush the tail and return a [`decompress`]-compatible
    /// blob.
    pub fn finish(mut self) -> Vec<u8> {
        self.process(true);
        let mut out = Vec::with_capacity(16 + self.tokens.len());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        write_varint(&mut out, self.window.len() as u64);
        out.extend_from_slice(&self.tokens);
        out
    }

    /// Emit tokens for buffered symbols. Unless `force`, stop while a
    /// match might still extend with future input.
    fn process(&mut self, force: bool) {
        let n = self.window.len();
        while self.pos < n {
            let remaining = n - self.pos;
            if !force && remaining < STREAM_MAX_MATCH {
                break;
            }
            let cap = remaining.min(STREAM_MAX_MATCH);
            let i = self.pos;
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + MIN_MATCH <= n {
                if let Some(chain) = self.table.get(&gram(&self.window, i)) {
                    for &j in chain.iter().rev().take(MAX_CHAIN) {
                        let mut len = 0usize;
                        while len < cap && self.window[j + len] == self.window[i + len] {
                            len += 1;
                        }
                        if len > best_len {
                            best_len = len;
                            best_dist = i - j;
                        }
                    }
                }
            }
            if best_len >= MIN_MATCH {
                write_varint(&mut self.tokens, ((best_len as u64) << 1) | 1);
                write_varint(&mut self.tokens, best_dist as u64);
                for k in i..i + best_len {
                    if k + MIN_MATCH <= n {
                        self.table.entry(gram(&self.window, k)).or_default().push(k);
                    }
                }
                self.pos += best_len;
            } else {
                write_varint(&mut self.tokens, (self.window[i] as u64) << 1);
                if i + MIN_MATCH <= n {
                    self.table.entry(gram(&self.window, i)).or_default().push(i);
                }
                self.pos += 1;
            }
        }
    }
}

/// Decompress a blob produced by [`compress`].
pub fn decompress(blob: &[u8]) -> Result<Vec<u32>, CodecError> {
    if blob.len() < 5 {
        return Err(CodecError::Truncated);
    }
    if &blob[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if blob[4] != VERSION {
        return Err(CodecError::BadVersion(blob[4]));
    }
    let mut at = 5usize;
    let n = read_varint(blob, &mut at)? as usize;
    let mut out: Vec<u32> = Vec::with_capacity(n);
    while out.len() < n {
        let tok = read_varint(blob, &mut at)?;
        if tok & 1 == 1 {
            let len = (tok >> 1) as usize;
            let dist = read_varint(blob, &mut at)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::Corrupt("match distance out of range"));
            }
            if out.len() + len > n {
                return Err(CodecError::Corrupt("match overruns declared length"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let sym = out[start + k];
                out.push(sym);
            }
        } else {
            let sym = tok >> 1;
            if sym > u64::from(u32::MAX) {
                return Err(CodecError::Corrupt("literal exceeds u32"));
            }
            if out.len() + 1 > n {
                return Err(CodecError::Corrupt("literal overruns declared length"));
            }
            out.push(sym as u32);
        }
    }
    Ok(out)
}

/// Compression statistics for one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Symbols in the uncompressed stream.
    pub symbols: usize,
    /// Raw size assuming 4 bytes/symbol (how ParLOT accounts raw traces).
    pub raw_bytes: usize,
    /// Compressed blob size.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Measure `symbols` against its compressed form.
    pub fn measure(symbols: &[u32], blob: &[u8]) -> CompressionStats {
        CompressionStats {
            symbols: symbols.len(),
            raw_bytes: symbols.len() * 4,
            compressed_bytes: blob.len(),
        }
    }

    /// raw / compressed (∞-safe: 0 for empty input).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(sym: &[u32]) {
        let blob = compress(sym);
        let back = decompress(&blob).expect("decompress");
        assert_eq!(back, sym);
    }

    #[test]
    fn empty_stream() {
        round_trip(&[]);
    }

    #[test]
    fn short_streams() {
        round_trip(&[1]);
        round_trip(&[1, 2]);
        round_trip(&[1, 2, 3]);
        round_trip(&[7, 7, 7]);
    }

    #[test]
    fn loopy_stream_round_trip_and_ratio() {
        // [A B C D] ^ 10_000 — a hot loop of 4 calls.
        let body = [10u32, 11, 12, 13];
        let sym: Vec<u32> = body.iter().cycle().take(40_000).copied().collect();
        let blob = compress(&sym);
        let back = decompress(&blob).unwrap();
        assert_eq!(back, sym);
        let stats = CompressionStats::measure(&sym, &blob);
        assert!(
            stats.ratio() > 1000.0,
            "loopy trace should compress enormously, got ratio {:.1} ({} bytes)",
            stats.ratio(),
            blob.len()
        );
    }

    #[test]
    fn nested_loop_stream() {
        // ((A B)^3 C)^500
        let mut sym = Vec::new();
        for _ in 0..500 {
            for _ in 0..3 {
                sym.push(1u32);
                sym.push(2);
            }
            sym.push(3);
        }
        round_trip(&sym);
        let blob = compress(&sym);
        assert!(blob.len() < sym.len()); // trivially much smaller
    }

    #[test]
    fn incompressible_stream_round_trips() {
        // Pseudo-random symbols (LCG) — worst case for the coder.
        let mut x = 12345u64;
        let sym: Vec<u32> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32
            })
            .collect();
        round_trip(&sym);
    }

    #[test]
    fn large_symbol_values() {
        round_trip(&[u32::MAX, 0, u32::MAX - 1, 5, u32::MAX, 0, u32::MAX - 1, 5]);
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(CodecError::Truncated));
        assert_eq!(decompress(b"XXXX\x01\x00"), Err(CodecError::BadMagic));
        assert_eq!(decompress(b"DTLZ\x09\x00"), Err(CodecError::BadVersion(9)));
        // Declared 5 symbols but no tokens follow.
        assert_eq!(decompress(b"DTLZ\x01\x05"), Err(CodecError::Truncated));
    }

    #[test]
    fn decoder_rejects_bad_match_distance() {
        let mut blob = Vec::new();
        blob.extend_from_slice(b"DTLZ");
        blob.push(1);
        write_varint(&mut blob, 3); // claim 3 symbols
        write_varint(&mut blob, (3 << 1) | 1); // match len 3 …
        write_varint(&mut blob, 1); // … dist 1, but output is empty
        assert!(matches!(decompress(&blob), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn streaming_round_trips_and_matches_batch_quality() {
        // A long loopy stream, pushed one symbol at a time.
        let body = [10u32, 11, 12, 13, 14, 15];
        let sym: Vec<u32> = body.iter().cycle().take(60_000).copied().collect();
        let mut sc = StreamCompressor::new();
        for &s in &sym {
            sc.push(s);
        }
        assert_eq!(sc.len(), sym.len());
        let blob = sc.finish();
        assert_eq!(decompress(&blob).unwrap(), sym);
        // Within 4× of the batch compressor on loopy data (the match
        // cap costs a token per 4096 symbols).
        let batch = compress(&sym).len();
        assert!(
            blob.len() <= batch * 4 + 64,
            "stream {} vs batch {batch}",
            blob.len()
        );
        // Still an enormous ratio.
        let stats = CompressionStats::measure(&sym, &blob);
        assert!(stats.ratio() > 500.0, "ratio {:.0}", stats.ratio());
    }

    #[test]
    fn streaming_emits_incrementally() {
        let mut sc = StreamCompressor::new();
        // Push well past the trigger: tokens must have been emitted
        // before finish.
        for i in 0..3 * super::STREAM_TRIGGER as u32 {
            sc.push(i % 7);
        }
        assert!(
            sc.emitted_bytes() > 0,
            "on-the-fly compression must not buffer everything"
        );
        let blob = sc.finish();
        let back = decompress(&blob).unwrap();
        assert_eq!(back.len(), 3 * super::STREAM_TRIGGER);
    }

    #[test]
    fn streaming_edge_cases() {
        assert_eq!(
            decompress(&StreamCompressor::new().finish()).unwrap(),
            vec![]
        );
        let mut sc = StreamCompressor::new();
        sc.extend([1, 2, 3]);
        assert_eq!(decompress(&sc.finish()).unwrap(), vec![1, 2, 3]);
        // Incompressible stream round-trips too.
        let mut x = 9u64;
        let sym: Vec<u32> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u32
            })
            .collect();
        let mut sc = StreamCompressor::new();
        sc.extend(sym.iter().copied());
        assert_eq!(decompress(&sc.finish()).unwrap(), sym);
    }

    #[test]
    fn varint_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at).unwrap(), v);
            assert_eq!(at, buf.len());
        }
    }
}
