//! Traces, trace identifiers, and collections of traces.

use crate::event::TraceEvent;
use crate::registry::FunctionRegistry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifies one traced thread: MPI process (rank) and thread index
/// within it. Displayed as `"p.t"`, matching the paper's ranking tables
/// (e.g. trace `6.4` = process 6, thread 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// MPI rank.
    pub process: u32,
    /// Thread index within the rank; 0 is the master thread.
    pub thread: u32,
}

impl TraceId {
    /// Construct from rank and thread index.
    pub fn new(process: u32, thread: u32) -> TraceId {
        TraceId { process, thread }
    }

    /// The master-thread trace of a rank.
    pub fn master(process: u32) -> TraceId {
        TraceId::new(process, 0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.process, self.thread)
    }
}

/// One per-thread trace: an ordered sequence of call/return events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Which process/thread produced it.
    pub id: TraceId,
    /// The recorded events, in program order.
    pub events: Vec<TraceEvent>,
    /// True if the thread was aborted (deadlock/job kill) — its last
    /// call(s) have no matching return.
    pub truncated: bool,
}

impl Trace {
    /// An empty trace for `id`.
    pub fn new(id: TraceId) -> Trace {
        Trace {
            id,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Only the call events (ParLOT's "filter out all returns" view).
    pub fn calls(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.events.iter().copied().filter(|e| e.is_call())
    }

    /// Validate call/return nesting: every return must match the
    /// innermost open call, and a non-truncated trace must close every
    /// call. Returns the violations (index + description) — empty for
    /// a well-formed trace. A truncated trace may legitimately leave
    /// calls open (the hang signature), so open frames are only
    /// reported when `truncated` is false.
    pub fn validate_nesting(&self) -> Vec<(usize, String)> {
        let mut stack: Vec<crate::registry::FnId> = Vec::new();
        let mut problems = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                TraceEvent::Call(f) => stack.push(*f),
                TraceEvent::Return(f) => match stack.pop() {
                    Some(open) if open == *f => {}
                    Some(open) => problems.push((
                        i,
                        format!("return from fn#{} while fn#{} is innermost", f.0, open.0),
                    )),
                    None => problems.push((i, format!("return from fn#{} with no open call", f.0))),
                },
            }
        }
        if !self.truncated && !stack.is_empty() {
            problems.push((
                self.events.len(),
                format!(
                    "{} call(s) never returned in a non-truncated trace",
                    stack.len()
                ),
            ));
        }
        problems
    }

    /// Encode to the symbol stream consumed by the compressor.
    pub fn to_symbols(&self) -> Vec<u32> {
        self.events.iter().map(|e| e.to_symbol()).collect()
    }

    /// Rebuild from a symbol stream.
    pub fn from_symbols(id: TraceId, symbols: &[u32], truncated: bool) -> Trace {
        Trace {
            id,
            events: symbols
                .iter()
                .map(|&s| TraceEvent::from_symbol(s))
                .collect(),
            truncated,
        }
    }
}

/// All traces of one execution plus the shared function-name table.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// Shared name table.
    pub registry: Arc<FunctionRegistry>,
    traces: BTreeMap<TraceId, Trace>,
}

impl TraceSet {
    /// An empty set over `registry`.
    pub fn new(registry: Arc<FunctionRegistry>) -> TraceSet {
        TraceSet {
            registry,
            traces: BTreeMap::new(),
        }
    }

    /// Insert (or replace) a trace.
    pub fn insert(&mut self, trace: Trace) {
        self.traces.insert(trace.id, trace);
    }

    /// Fetch a trace by ID.
    pub fn get(&self, id: TraceId) -> Option<&Trace> {
        self.traces.get(&id)
    }

    /// All traces in `TraceId` order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.values()
    }

    /// All trace IDs in order.
    pub fn ids(&self) -> Vec<TraceId> {
        self.traces.keys().copied().collect()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if the set holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Distinct process (rank) IDs present.
    pub fn processes(&self) -> Vec<u32> {
        let mut ps: Vec<u32> = self.traces.keys().map(|t| t.process).collect();
        ps.dedup();
        ps
    }

    /// Traces belonging to one process, in thread order.
    pub fn process_traces(&self, process: u32) -> Vec<&Trace> {
        self.traces
            .values()
            .filter(|t| t.id.process == process)
            .collect()
    }

    /// Human-readable rendering of a trace: one event per line, calls as
    /// the function name, returns as `ret <name>` (used by examples and
    /// tests; mirrors the paper's Table II).
    pub fn render(&self, id: TraceId) -> Option<String> {
        let t = self.traces.get(&id)?;
        let mut out = String::new();
        for e in &t.events {
            match e {
                TraceEvent::Call(f) => {
                    out.push_str(&self.registry.name(*f));
                    out.push('\n');
                }
                TraceEvent::Return(f) => {
                    out.push_str("ret ");
                    out.push_str(&self.registry.name(*f));
                    out.push('\n');
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FnId;

    fn set_with(id: TraceId, names: &[&str]) -> TraceSet {
        let reg = Arc::new(FunctionRegistry::new());
        let mut t = Trace::new(id);
        for n in names {
            let f = reg.intern(n);
            t.events.push(TraceEvent::Call(f));
            t.events.push(TraceEvent::Return(f));
        }
        let mut s = TraceSet::new(reg);
        s.insert(t);
        s
    }

    #[test]
    fn trace_id_display_matches_paper() {
        assert_eq!(TraceId::new(6, 4).to_string(), "6.4");
        assert_eq!(TraceId::master(3).to_string(), "3.0");
    }

    #[test]
    fn symbol_round_trip_preserves_trace() {
        let s = set_with(TraceId::new(0, 0), &["main", "MPI_Init", "MPI_Finalize"]);
        let t = s.get(TraceId::new(0, 0)).unwrap();
        let syms = t.to_symbols();
        let back = Trace::from_symbols(t.id, &syms, t.truncated);
        assert_eq!(&back, t);
    }

    #[test]
    fn calls_filters_returns() {
        let s = set_with(TraceId::new(1, 2), &["a", "b"]);
        let t = s.get(TraceId::new(1, 2)).unwrap();
        assert_eq!(t.len(), 4);
        let calls: Vec<_> = t.calls().collect();
        assert_eq!(calls.len(), 2);
        assert!(calls.iter().all(|e| e.is_call()));
    }

    #[test]
    fn set_ordering_and_process_queries() {
        let reg = Arc::new(FunctionRegistry::new());
        let mut s = TraceSet::new(reg);
        for (p, t) in [(1, 0), (0, 1), (0, 0), (1, 1)] {
            s.insert(Trace::new(TraceId::new(p, t)));
        }
        assert_eq!(
            s.ids(),
            vec![
                TraceId::new(0, 0),
                TraceId::new(0, 1),
                TraceId::new(1, 0),
                TraceId::new(1, 1)
            ]
        );
        assert_eq!(s.processes(), vec![0, 1]);
        assert_eq!(s.process_traces(1).len(), 2);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn nesting_validation() {
        let reg = Arc::new(FunctionRegistry::new());
        let a = reg.intern("a");
        let b = reg.intern("b");
        // Well formed: a { b } .
        let mut t = Trace::new(TraceId::new(0, 0));
        t.events = vec![
            TraceEvent::Call(a),
            TraceEvent::Call(b),
            TraceEvent::Return(b),
            TraceEvent::Return(a),
        ];
        assert!(t.validate_nesting().is_empty());
        // Crossed returns.
        let mut t2 = Trace::new(TraceId::new(0, 0));
        t2.events = vec![
            TraceEvent::Call(a),
            TraceEvent::Call(b),
            TraceEvent::Return(a),
        ];
        let probs = t2.validate_nesting();
        assert!(
            probs.iter().any(|(_, m)| m.contains("innermost")),
            "{probs:?}"
        );
        // Open call: allowed only for truncated traces.
        let mut t3 = Trace::new(TraceId::new(0, 0));
        t3.events = vec![TraceEvent::Call(a)];
        assert_eq!(t3.validate_nesting().len(), 1);
        t3.truncated = true;
        assert!(t3.validate_nesting().is_empty());
        // Return with nothing open.
        let mut t4 = Trace::new(TraceId::new(0, 0));
        t4.events = vec![TraceEvent::Return(a)];
        assert!(t4.validate_nesting()[0].1.contains("no open call"));
    }

    #[test]
    fn render_shows_calls_and_returns() {
        let s = set_with(TraceId::new(0, 0), &["main"]);
        let r = s.render(TraceId::new(0, 0)).unwrap();
        assert_eq!(r, "main\nret main\n");
        assert!(s.render(TraceId::new(9, 9)).is_none());
        let _ = FnId(0); // silence unused import in some cfgs
    }
}
