//! Stable content hashing for cache keys.
//!
//! The analysis cache (crate `dt-cache`) keys entries by a digest of
//! trace content and analysis parameters. `std::hash` makes no
//! stability promises across releases or processes, so persistent cache
//! keys need a hand-rolled hasher with a pinned algorithm: this module
//! provides a 128-bit FNV-1a variant. 128 bits keeps accidental
//! collisions out of reach for any realistic corpus (the cache treats a
//! collision as silent reuse, so the margin matters); FNV keeps the
//! implementation dependency-free and byte-order independent.

/// FNV-1a offset basis, 128-bit parameters.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime, 128-bit parameters.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental 128-bit FNV-1a hasher with a stable, documented
/// algorithm — safe to persist across processes and releases (bump the
/// cache format version if the algorithm ever changes).
///
/// Multi-byte integers are folded in little-endian order; variable-size
/// inputs ([`StableHasher::write_bytes`], [`StableHasher::write_str`])
/// are length-prefixed so concatenations cannot collide
/// (`"ab"+"c"` ≠ `"a"+"bc"`).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the state *without* a length prefix. Only
    /// for fixed-width inputs; prefer [`StableHasher::write_bytes`].
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a variable-length byte string, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Fold a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write_raw(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    pub fn write_u128(&mut self, v: u128) {
        self.write_raw(&v.to_le_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Digest a `u32` symbol stream (length-prefixed) in one call.
pub fn digest_symbols(symbols: &[u32]) -> u128 {
    let mut h = StableHasher::new();
    h.write_u64(symbols.len() as u64);
    for &s in symbols {
        h.write_u32(s);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_is_pinned() {
        // Pin the algorithm: if this digest ever changes, persisted
        // cache entries keyed by the old algorithm would be reused
        // incorrectly — bump dt-cache's CACHE_FORMAT_VERSION instead.
        let mut h = StableHasher::new();
        h.write_str("difftrace");
        assert_eq!(h.finish(), 0x6e6d_dd64_5991_5cf1_13c0_76d9_c7d7_6968);
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let d = |parts: &[&str]| {
            let mut h = StableHasher::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(d(&["ab", "c"]), d(&["a", "bc"]));
        assert_ne!(d(&["abc"]), d(&["ab", "c"]));
        assert_ne!(d(&["", "x"]), d(&["x", ""]));
    }

    #[test]
    fn symbol_digest_discriminates() {
        assert_ne!(digest_symbols(&[1, 2, 3]), digest_symbols(&[1, 2, 4]));
        assert_ne!(digest_symbols(&[1, 2]), digest_symbols(&[1, 2, 0]));
        assert_ne!(digest_symbols(&[]), digest_symbols(&[0]));
        assert_eq!(digest_symbols(&[7, 8]), digest_symbols(&[7, 8]));
    }

    #[test]
    fn integer_widths_do_not_alias() {
        let mut a = StableHasher::new();
        a.write_u32(1);
        let mut b = StableHasher::new();
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
