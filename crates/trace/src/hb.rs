//! Vector clocks and happens-before logging.
//!
//! The paper's future work (§VII-2) plans to "convert ParLOT traces
//! into Open Trace Format (OTF2) by logically timestamping trace
//! entries to mine temporal properties of functions such as
//! *happened-before*". This module implements that extension for the
//! simulated runtime: every MPI operation is stamped with a **vector
//! clock** (exact happens-before, not just Lamport order), the runtime
//! collects an event log, and [`HbLog`] answers causality queries —
//! including the PRODOMETER-style "least-progressed rank" triage the
//! paper cites as symbiotic related work.
//!
//! # Storage
//!
//! A dense log stores one `world_size`-component clock per event —
//! O(events × ranks) memory, which dominates long runs. [`HbLog`]
//! instead stores each clock as a sparse *delta* against the same
//! rank's previous clock (between two operations of one rank only its
//! own component plus any merged-in peers change), re-anchoring with a
//! full interned snapshot every [`SNAPSHOT_EVERY`] events per rank so
//! random access never walks more than a bounded chain. The
//! reconstruction is exact; `hb::tests` asserts equivalence against
//! the dense representation on randomized logs.

use crate::TraceId;
use std::fmt;

/// A vector clock over `world_size` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(pub Vec<u64>);

impl VectorClock {
    /// The zero clock for `n` ranks.
    pub fn zero(n: usize) -> VectorClock {
        VectorClock(vec![0; n])
    }

    /// Advance `rank`'s own component.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Component-wise maximum (message receive / collective join).
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` component-wise.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && self != other
    }

    /// Neither happens before the other.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Lamport scalar projection (max component) — the "logical
    /// timestamp" an OTF2 export would use.
    pub fn lamport(&self) -> u64 {
        self.0.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}⟩",
            self.0
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// What kind of operation an event (or a blocked rank) was performing,
/// reduced to the fields the wait-for-graph analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbOp {
    /// Not a communication edge (init, finalize, compute markers).
    Local,
    /// A send to `dst` with `tag`. `rendezvous` is true when the send
    /// blocks until matched (payload above the eager limit) — only
    /// rendezvous sends create wait-for edges.
    Send {
        /// Destination rank.
        dst: u32,
        /// Message tag.
        tag: i32,
        /// True when the send blocks until the receiver arrives.
        rendezvous: bool,
    },
    /// A receive from `src` (`None` = any source) with `tag`.
    Recv {
        /// Source rank, `None` for wildcard receives.
        src: Option<u32>,
        /// Message tag.
        tag: i32,
    },
    /// Participation in the collective occupying call-order `slot`.
    Collective {
        /// Per-rank call-order slot identifying the collective instance.
        slot: u64,
    },
}

impl HbOp {
    /// Render the operation with its operands, e.g.
    /// `MPI_Recv(src=1, tag=0)`.
    pub fn describe(&self, name: &str) -> String {
        match *self {
            HbOp::Local => name.to_string(),
            HbOp::Send { dst, tag, .. } => format!("{name}(dst={dst}, tag={tag})"),
            HbOp::Recv { src: Some(s), tag } => format!("{name}(src={s}, tag={tag})"),
            HbOp::Recv { src: None, tag } => format!("{name}(src=ANY, tag={tag})"),
            HbOp::Collective { slot } => format!("{name}(slot={slot})"),
        }
    }
}

/// One logged, causally-stamped runtime event (the reconstructed,
/// user-facing view — see [`HbLog`] for the stored representation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbEvent {
    /// Which thread performed it (always a master thread `p.0` — only
    /// MPI operations move the clocks).
    pub trace: TraceId,
    /// The operation name (`MPI_Send`, `MPI_Allreduce`, …).
    pub name: String,
    /// The operation's communication shape.
    pub op: HbOp,
    /// The vector clock *after* the operation.
    pub vc: VectorClock,
}

/// A rank blocked inside an operation when the run ended — the raw
/// material of the wait-for graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedOp {
    /// The blocked rank.
    pub rank: u32,
    /// Operation name (`MPI_Recv`, …).
    pub name: String,
    /// Communication shape of the blocking operation.
    pub op: HbOp,
}

/// A collective instance that never completed: who arrived, and whose
/// call signature disagreed with the first arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingCollective {
    /// The per-rank call-order slot.
    pub slot: u64,
    /// MPI name of the collective (first arrival's).
    pub name: String,
    /// Ranks that reached the collective, ascending.
    pub arrived: Vec<u32>,
    /// Arrived ranks whose signature mismatched the first arrival's.
    pub mismatched: Vec<u32>,
}

/// An eager send that was never received (message left in the mailbox
/// or a rendezvous send never matched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmatchedSend {
    /// Sender rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Message tag.
    pub tag: i32,
    /// Number of unmatched messages on this `(src, dst, tag)` channel.
    pub count: u64,
}

/// Interned full snapshots are emitted every this many events per
/// rank, bounding the delta chain any reconstruction must walk.
pub const SNAPSHOT_EVERY: u32 = 64;

/// `u32` sentinel for "no previous event of this rank".
const NO_PREV: u32 = u32::MAX;

/// How one event's clock is stored.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ClockRepr {
    /// A full snapshot (chain anchor).
    Full(VectorClock),
    /// Components that changed vs the same rank's previous clock, as
    /// `(component, new absolute value)` pairs, ascending.
    Delta(Vec<(u32, u64)>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Record {
    trace: TraceId,
    /// Index into `HbLog::names`.
    name: u32,
    op: HbOp,
    clock: ClockRepr,
    /// Index of the same rank's previous record (`NO_PREV` if none).
    prev: u32,
}

/// Per-rank append cursor: where the rank's last record is, how long
/// the current delta chain is, and the rank's last stored clock.
#[derive(Debug, Clone)]
struct RankCursor {
    last: u32,
    since_snapshot: u32,
    clock: VectorClock,
}

/// The happens-before log of one execution: causally-stamped events
/// (delta-encoded clocks) plus the abort-time blocked-operation state
/// exported by the runtime.
#[derive(Debug, Clone, Default)]
pub struct HbLog {
    world_size: u32,
    names: Vec<String>,
    records: Vec<Record>,
    cursors: Vec<Option<RankCursor>>,
    /// Ranks blocked inside an operation when the run ended.
    pub blocked: Vec<BlockedOp>,
    /// Collectives with arrivals that never completed.
    pub pending_collectives: Vec<PendingCollective>,
    /// Sends that were never received.
    pub unmatched_sends: Vec<UnmatchedSend>,
    /// Ranks that completed `MPI_Finalize`, ascending.
    pub finished: Vec<u32>,
}

impl HbLog {
    /// An empty log for a `world_size`-rank execution.
    pub fn new(world_size: usize) -> HbLog {
        HbLog {
            world_size: u32::try_from(world_size).expect("world size"),
            cursors: vec![None; world_size],
            ..HbLog::default()
        }
    }

    /// The number of ranks.
    pub fn world_size(&self) -> usize {
        self.world_size as usize
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a stamped event. `vc` is the clock *after* the
    /// operation; it is stored as a sparse delta against `trace`'s
    /// rank's previous clock (or a full snapshot at chain boundaries).
    pub fn push(&mut self, trace: TraceId, name: &str, op: HbOp, vc: &VectorClock) {
        let name_idx = self.intern(name);
        let rank = trace.process as usize;
        let idx = u32::try_from(self.records.len()).expect("record count");
        let (clock, prev) = match &mut self.cursors[rank] {
            Some(cur) if cur.since_snapshot < SNAPSHOT_EVERY => {
                let deltas: Vec<(u32, u64)> =
                    vc.0.iter()
                        .enumerate()
                        .filter(|&(c, &v)| cur.clock.0[c] != v)
                        .map(|(c, &v)| (u32::try_from(c).expect("component"), v))
                        .collect();
                // A delta no smaller than the clock is stored full and
                // re-anchors the chain.
                if deltas.len() >= vc.0.len() {
                    (ClockRepr::Full(vc.clone()), cur.last)
                } else {
                    (ClockRepr::Delta(deltas), cur.last)
                }
            }
            Some(cur) => (ClockRepr::Full(vc.clone()), cur.last),
            None => (ClockRepr::Full(vc.clone()), NO_PREV),
        };
        let since = if matches!(clock, ClockRepr::Full(_)) {
            0
        } else {
            self.cursors[rank]
                .as_ref()
                .map_or(0, |c| c.since_snapshot + 1)
        };
        self.cursors[rank] = Some(RankCursor {
            last: idx,
            since_snapshot: since,
            clock: vc.clone(),
        });
        self.records.push(Record {
            trace,
            name: name_idx,
            op,
            clock,
            prev,
        });
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return u32::try_from(i).expect("name index");
        }
        self.names.push(name.to_string());
        u32::try_from(self.names.len() - 1).expect("name index")
    }

    /// The thread that performed event `i`.
    pub fn trace_of(&self, i: usize) -> TraceId {
        self.records[i].trace
    }

    /// The operation name of event `i`.
    pub fn name_of(&self, i: usize) -> &str {
        &self.names[self.records[i].name as usize]
    }

    /// The communication shape of event `i`.
    pub fn op_of(&self, i: usize) -> HbOp {
        self.records[i].op
    }

    /// Reconstruct event `i`'s clock by walking the delta chain back
    /// to the nearest full snapshot (bounded by [`SNAPSHOT_EVERY`]).
    pub fn clock_of(&self, i: usize) -> VectorClock {
        let mut chain: Vec<usize> = Vec::new();
        let mut at = i;
        let mut vc = loop {
            match &self.records[at].clock {
                ClockRepr::Full(vc) => break vc.clone(),
                ClockRepr::Delta(_) => {
                    chain.push(at);
                    let prev = self.records[at].prev;
                    assert_ne!(prev, NO_PREV, "delta chain must end in a snapshot");
                    at = prev as usize;
                }
            }
        };
        for &j in chain.iter().rev() {
            if let ClockRepr::Delta(d) = &self.records[j].clock {
                for &(c, v) in d {
                    vc.0[c as usize] = v;
                }
            }
        }
        vc
    }

    /// Reconstruct event `i` in full.
    pub fn event(&self, i: usize) -> HbEvent {
        let r = &self.records[i];
        HbEvent {
            trace: r.trace,
            name: self.names[r.name as usize].clone(),
            op: r.op,
            vc: self.clock_of(i),
        }
    }

    /// All events in log order, reconstructed in one forward pass
    /// (O(events × ranks) total, no chain walking).
    pub fn events(&self) -> Vec<HbEvent> {
        let mut clocks: Vec<Option<VectorClock>> = vec![None; self.world_size as usize];
        self.records
            .iter()
            .map(|r| {
                let rank = r.trace.process as usize;
                let vc = match &r.clock {
                    ClockRepr::Full(vc) => vc.clone(),
                    ClockRepr::Delta(d) => {
                        let mut vc = clocks[rank].clone().expect("delta without snapshot");
                        for &(c, v) in d {
                            vc.0[c as usize] = v;
                        }
                        vc
                    }
                };
                clocks[rank] = Some(vc.clone());
                HbEvent {
                    trace: r.trace,
                    name: self.names[r.name as usize].clone(),
                    op: r.op,
                    vc,
                }
            })
            .collect()
    }

    /// Does event `a` happen before event `b` (indices into the log)?
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        self.clock_of(a).happens_before(&self.clock_of(b))
    }

    /// Are two events causally unordered?
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        self.clock_of(a).concurrent(&self.clock_of(b))
    }

    /// The last event of each rank, in rank order.
    pub fn last_event_per_rank(&self) -> Vec<Option<HbEvent>> {
        let mut last: Vec<Option<HbEvent>> = vec![None; self.world_size as usize];
        for (rank, cur) in self.cursors.iter().enumerate() {
            if let Some(cur) = cur {
                last[rank] = Some(self.event(cur.last as usize));
            }
        }
        last
    }

    /// PRODOMETER-style progress triage: ranks whose final event is
    /// causally *minimal* among the final events — nobody waits on
    /// less-progressed work than theirs, so they are the most likely
    /// origin of a stall. Returns rank IDs.
    pub fn least_progressed_ranks(&self) -> Vec<u32> {
        let last = self.last_event_per_rank();
        let finals: Vec<(u32, &HbEvent)> = last
            .iter()
            .enumerate()
            .filter_map(|(p, e)| e.as_ref().map(|e| (u32::try_from(p).expect("rank"), e)))
            .collect();
        finals
            .iter()
            .filter(|(_, e)| {
                !finals
                    .iter()
                    .any(|(_, other)| other.vc.happens_before(&e.vc))
            })
            .map(|(p, _)| *p)
            .collect()
    }

    /// Number of events each rank performed, in rank order.
    pub fn events_per_rank(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.world_size as usize];
        for r in &self.records {
            counts[r.trace.process as usize] += 1;
        }
        counts
    }

    /// OTF2-flavoured text export: one line per event with its logical
    /// (Lamport) timestamp and full vector clock.
    pub fn to_event_log(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "t={:<6} rank={:<4} {:<16} vc={}\n",
                e.vc.lamport(),
                e.trace.process,
                e.name,
                e.vc
            ));
        }
        out
    }
}

/// Export a whole execution — per-thread call/return traces merged
/// with the causal MPI stamps — as an OTF2-flavoured text event log:
/// one `ENTER`/`LEAVE` record per trace event, each carrying a logical
/// timestamp `t=<lamport>.<seq>` where the Lamport part comes from the
/// nearest preceding stamped MPI operation of that thread and `<seq>`
/// is the intra-interval sequence number. This is the paper's §VII-2
/// "converting ParLOT traces into OTF2 by logically timestamping trace
/// entries", end to end.
pub fn export_otf(set: &crate::TraceSet, hb: &HbLog) -> String {
    let events = hb.events();
    let mut out = String::new();
    out.push_str("# OTF2-style logical event log (difftrace reproduction)\n");
    for trace in set.iter() {
        // The stamped MPI events of this thread, in order.
        let mut stamps = events
            .iter()
            .filter(|e| e.trace == trace.id)
            .map(|e| (e.name.as_str(), e.vc.lamport()))
            .collect::<Vec<_>>()
            .into_iter();
        let mut current: u64 = 0;
        let mut seq: u32 = 0;
        let mut pending: Option<(&str, u64)> = stamps.next();
        for ev in &trace.events {
            let name = set.registry.name(ev.fn_id());
            // Advance the logical clock when this is the call event of
            // the next stamped MPI op.
            if ev.is_call() {
                if let Some((sname, t)) = pending {
                    if sname == name {
                        current = t;
                        seq = 0;
                        pending = stamps.next();
                    }
                }
            }
            let kind = if ev.is_call() { "ENTER" } else { "LEAVE" };
            out.push_str(&format!(
                "t={current}.{seq:04} loc={} {kind:<5} {name}\n",
                trace.id
            ));
            seq += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Serialization (used by `store` for the DTTS v2 HB section).
// ---------------------------------------------------------------------

impl HbLog {
    /// Serialize into `out` (varint-based; see `store` for framing).
    pub(crate) fn write_to(&self, out: &mut Vec<u8>) {
        use crate::compress::write_varint;
        write_varint(out, u64::from(self.world_size));
        write_varint(out, self.names.len() as u64);
        for n in &self.names {
            write_varint(out, n.len() as u64);
            out.extend_from_slice(n.as_bytes());
        }
        write_varint(out, self.records.len() as u64);
        for r in &self.records {
            write_varint(out, u64::from(r.trace.process));
            write_varint(out, u64::from(r.trace.thread));
            write_varint(out, u64::from(r.name));
            write_op(out, r.op);
            match &r.clock {
                ClockRepr::Full(vc) => {
                    out.push(0);
                    write_varint(out, vc.0.len() as u64);
                    for &v in &vc.0 {
                        write_varint(out, v);
                    }
                }
                ClockRepr::Delta(d) => {
                    out.push(1);
                    write_varint(out, d.len() as u64);
                    for &(c, v) in d {
                        write_varint(out, u64::from(c));
                        write_varint(out, v);
                    }
                }
            }
        }
        write_varint(out, self.blocked.len() as u64);
        for b in &self.blocked {
            write_varint(out, u64::from(b.rank));
            write_varint(out, b.name.len() as u64);
            out.extend_from_slice(b.name.as_bytes());
            write_op(out, b.op);
        }
        write_varint(out, self.pending_collectives.len() as u64);
        for p in &self.pending_collectives {
            write_varint(out, p.slot);
            write_varint(out, p.name.len() as u64);
            out.extend_from_slice(p.name.as_bytes());
            write_varint(out, p.arrived.len() as u64);
            for &r in &p.arrived {
                write_varint(out, u64::from(r));
            }
            write_varint(out, p.mismatched.len() as u64);
            for &r in &p.mismatched {
                write_varint(out, u64::from(r));
            }
        }
        write_varint(out, self.unmatched_sends.len() as u64);
        for u in &self.unmatched_sends {
            write_varint(out, u64::from(u.src));
            write_varint(out, u64::from(u.dst));
            write_varint(out, zigzag(u.tag));
            write_varint(out, u.count);
        }
        write_varint(out, self.finished.len() as u64);
        for &r in &self.finished {
            write_varint(out, u64::from(r));
        }
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`. Errors are
    /// reported as `None` (the caller maps to its format error).
    pub(crate) fn read_from(buf: &[u8], pos: &mut usize) -> Option<HbLog> {
        let world_size = u32::try_from(rv(buf, pos)?).ok()?;
        let mut log = HbLog::new(world_size as usize);
        let n_names = rv(buf, pos)?;
        for _ in 0..n_names {
            log.names.push(read_string(buf, pos)?);
        }
        let n_records = rv(buf, pos)?;
        let mut lasts: Vec<u32> = vec![NO_PREV; world_size as usize];
        for i in 0..n_records {
            let process = u32::try_from(rv(buf, pos)?).ok()?;
            let thread = u32::try_from(rv(buf, pos)?).ok()?;
            let name = u32::try_from(rv(buf, pos)?).ok()?;
            if name as usize >= log.names.len() || process >= world_size {
                return None;
            }
            let op = read_op(buf, pos)?;
            let clock = match *buf.get(*pos)? {
                0 => {
                    *pos += 1;
                    let n = rv(buf, pos)?;
                    let mut vc = Vec::with_capacity(usize::try_from(n).ok()?);
                    for _ in 0..n {
                        vc.push(rv(buf, pos)?);
                    }
                    ClockRepr::Full(VectorClock(vc))
                }
                1 => {
                    *pos += 1;
                    let n = rv(buf, pos)?;
                    let mut d = Vec::with_capacity(usize::try_from(n).ok()?);
                    for _ in 0..n {
                        let c = u32::try_from(rv(buf, pos)?).ok()?;
                        let v = rv(buf, pos)?;
                        d.push((c, v));
                    }
                    ClockRepr::Delta(d)
                }
                _ => return None,
            };
            let prev = lasts[process as usize];
            if matches!(clock, ClockRepr::Delta(_)) && prev == NO_PREV {
                return None;
            }
            lasts[process as usize] = u32::try_from(i).ok()?;
            log.records.push(Record {
                trace: TraceId::new(process, thread),
                name,
                op,
                clock,
                prev,
            });
        }
        // Rebuild the append cursors so pushes after a load still work.
        for (rank, &last) in lasts.iter().enumerate() {
            if last != NO_PREV {
                log.cursors[rank] = Some(RankCursor {
                    last,
                    since_snapshot: 0,
                    clock: log.clock_of(last as usize),
                });
            }
        }
        let n_blocked = rv(buf, pos)?;
        for _ in 0..n_blocked {
            let rank = u32::try_from(rv(buf, pos)?).ok()?;
            let name = read_string(buf, pos)?;
            let op = read_op(buf, pos)?;
            log.blocked.push(BlockedOp { rank, name, op });
        }
        let n_pending = rv(buf, pos)?;
        for _ in 0..n_pending {
            let slot = rv(buf, pos)?;
            let name = read_string(buf, pos)?;
            let arrived = read_ranks(buf, pos)?;
            let mismatched = read_ranks(buf, pos)?;
            log.pending_collectives.push(PendingCollective {
                slot,
                name,
                arrived,
                mismatched,
            });
        }
        let n_unmatched = rv(buf, pos)?;
        for _ in 0..n_unmatched {
            let src = u32::try_from(rv(buf, pos)?).ok()?;
            let dst = u32::try_from(rv(buf, pos)?).ok()?;
            let tag = unzigzag(rv(buf, pos)?);
            let count = rv(buf, pos)?;
            log.unmatched_sends.push(UnmatchedSend {
                src,
                dst,
                tag,
                count,
            });
        }
        log.finished = read_ranks(buf, pos)?;
        Some(log)
    }
}

fn write_op(out: &mut Vec<u8>, op: HbOp) {
    use crate::compress::write_varint;
    match op {
        HbOp::Local => out.push(0),
        HbOp::Send {
            dst,
            tag,
            rendezvous,
        } => {
            out.push(1);
            write_varint(out, u64::from(dst));
            write_varint(out, zigzag(tag));
            out.push(u8::from(rendezvous));
        }
        HbOp::Recv { src, tag } => {
            out.push(2);
            match src {
                Some(s) => {
                    out.push(1);
                    write_varint(out, u64::from(s));
                }
                None => out.push(0),
            }
            write_varint(out, zigzag(tag));
        }
        HbOp::Collective { slot } => {
            out.push(3);
            write_varint(out, slot);
        }
    }
}

fn read_op(buf: &[u8], pos: &mut usize) -> Option<HbOp> {
    let tag_byte = *buf.get(*pos)?;
    *pos += 1;
    Some(match tag_byte {
        0 => HbOp::Local,
        1 => {
            let dst = u32::try_from(rv(buf, pos)?).ok()?;
            let tag = unzigzag(rv(buf, pos)?);
            let rendezvous = match *buf.get(*pos)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            *pos += 1;
            HbOp::Send {
                dst,
                tag,
                rendezvous,
            }
        }
        2 => {
            let src = match *buf.get(*pos)? {
                0 => {
                    *pos += 1;
                    None
                }
                1 => {
                    *pos += 1;
                    Some(u32::try_from(rv(buf, pos)?).ok()?)
                }
                _ => return None,
            };
            let tag = unzigzag(rv(buf, pos)?);
            HbOp::Recv { src, tag }
        }
        3 => HbOp::Collective {
            slot: rv(buf, pos)?,
        },
        _ => return None,
    })
}

/// `read_varint` adapted to the `Option`-based parsing in this module.
fn rv(buf: &[u8], pos: &mut usize) -> Option<u64> {
    crate::compress::read_varint(buf, pos).ok()
}

fn read_string(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = usize::try_from(rv(buf, pos)?).ok()?;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

fn read_ranks(buf: &[u8], pos: &mut usize) -> Option<Vec<u32>> {
    let n = rv(buf, pos)?;
    let mut out = Vec::with_capacity(usize::try_from(n).ok()?);
    for _ in 0..n {
        out.push(u32::try_from(rv(buf, pos)?).ok()?);
    }
    Some(out)
}

fn zigzag(v: i32) -> u64 {
    u64::from(((v << 1) ^ (v >> 31)) as u32)
}

fn unzigzag(v: u64) -> i32 {
    let v = v as u32;
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_algebra() {
        let mut a = VectorClock::zero(3);
        let mut b = VectorClock::zero(3);
        a.tick(0); // a = <1,0,0>
        b.tick(1); // b = <0,1,0>
        assert!(a.concurrent(&b));
        // b receives from a.
        b.merge(&a);
        b.tick(1); // b = <1,2,0>
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert!(a.leq(&b));
        assert_eq!(b.lamport(), 2);
        assert_eq!(b.to_string(), "⟨1,2,0⟩");
    }

    fn push(log: &mut HbLog, p: u32, vc: Vec<u64>) {
        log.push(
            TraceId::master(p),
            "MPI_Send",
            HbOp::Local,
            &VectorClock(vc),
        );
    }

    #[test]
    fn log_queries() {
        let mut log = HbLog::new(2);
        push(&mut log, 0, vec![1, 0]);
        push(&mut log, 1, vec![1, 1]); // saw rank 0's event
        push(&mut log, 0, vec![2, 0]); // concurrent with rank 1's
        assert!(log.happens_before(0, 1));
        assert!(!log.happens_before(1, 0));
        assert!(log.concurrent(1, 2));
        let last = log.last_event_per_rank();
        assert_eq!(last[0].as_ref().unwrap().vc.0, vec![2, 0]);
        assert_eq!(last[1].as_ref().unwrap().vc.0, vec![1, 1]);
        // Both final events are concurrent → both ranks are minimal.
        assert_eq!(log.least_progressed_ranks(), vec![0, 1]);
        assert!(log.to_event_log().contains("rank=0"));
        assert_eq!(log.events_per_rank(), vec![2, 1]);
    }

    #[test]
    fn least_progressed_identifies_laggard() {
        let mut log = HbLog::new(3);
        // Rank 0 stopped early; ranks 1,2 both saw its last event.
        push(&mut log, 0, vec![1, 0, 0]);
        push(&mut log, 1, vec![1, 3, 0]);
        push(&mut log, 2, vec![1, 0, 4]);
        assert_eq!(log.least_progressed_ranks(), vec![0]);
    }

    /// Deterministic xorshift so the equivalence test needs no rng dep.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Satellite: the delta-encoded log reconstructs exactly the
    /// clocks a dense (one-clock-per-event) log would store, through
    /// both the forward iterator and random access, across snapshot
    /// boundaries.
    #[test]
    fn delta_encoding_is_equivalent_to_dense() {
        let n_ranks = 4usize;
        let mut rng = Rng(0x00dd_7ace_5eed);
        let mut clocks: Vec<VectorClock> = (0..n_ranks).map(|_| VectorClock::zero(4)).collect();
        let mut log = HbLog::new(n_ranks);
        let mut dense: Vec<(TraceId, VectorClock)> = Vec::new();
        // 4 ranks × ~200 events each crosses SNAPSHOT_EVERY several
        // times per rank; ~1/4 of events merge a peer's clock
        // (multi-component deltas).
        for _ in 0..800 {
            let rank = (rng.next() % n_ranks as u64) as usize;
            if rng.next().is_multiple_of(4) {
                let peer = (rng.next() % n_ranks as u64) as usize;
                let peer_vc = clocks[peer].clone();
                clocks[rank].merge(&peer_vc);
            }
            clocks[rank].tick(rank);
            let id = TraceId::master(u32::try_from(rank).unwrap());
            log.push(id, "op", HbOp::Local, &clocks[rank]);
            dense.push((id, clocks[rank].clone()));
        }
        assert_eq!(log.len(), dense.len());
        // Forward pass.
        for (ev, (id, vc)) in log.events().iter().zip(&dense) {
            assert_eq!(ev.trace, *id);
            assert_eq!(&ev.vc, vc);
        }
        // Random access (walks delta chains).
        for i in (0..dense.len()).step_by(7) {
            assert_eq!(log.clock_of(i), dense[i].1, "event {i}");
        }
        // Queries agree with the dense clocks.
        for (a, b) in [(0, 799), (100, 101), (400, 200)] {
            assert_eq!(
                log.happens_before(a, b),
                dense[a].1.happens_before(&dense[b].1)
            );
            assert_eq!(log.concurrent(a, b), dense[a].1.concurrent(&dense[b].1));
        }
    }

    #[test]
    fn serialization_round_trips() {
        let mut log = HbLog::new(3);
        let mut vc = VectorClock::zero(3);
        for i in 0..150u32 {
            let rank = i % 3;
            vc.tick(rank as usize);
            let op = match i % 4 {
                0 => HbOp::Send {
                    dst: (rank + 1) % 3,
                    tag: -7,
                    rendezvous: i % 8 == 0,
                },
                1 => HbOp::Recv {
                    src: (i % 2 == 0).then_some((rank + 2) % 3),
                    tag: 3,
                },
                2 => HbOp::Collective { slot: u64::from(i) },
                _ => HbOp::Local,
            };
            log.push(TraceId::master(rank), "MPI_Op", op, &vc);
        }
        log.blocked.push(BlockedOp {
            rank: 1,
            name: "MPI_Recv".to_string(),
            op: HbOp::Recv {
                src: Some(2),
                tag: -1,
            },
        });
        log.pending_collectives.push(PendingCollective {
            slot: 9,
            name: "MPI_Barrier".to_string(),
            arrived: vec![0, 2],
            mismatched: vec![2],
        });
        log.unmatched_sends.push(UnmatchedSend {
            src: 0,
            dst: 1,
            tag: 5,
            count: 2,
        });
        log.finished = vec![0];
        let mut buf = Vec::new();
        log.write_to(&mut buf);
        let mut pos = 0;
        let back = HbLog::read_from(&buf, &mut pos).expect("round trip");
        assert_eq!(pos, buf.len());
        assert_eq!(back.world_size(), 3);
        assert_eq!(back.len(), log.len());
        assert_eq!(back.events(), log.events());
        assert_eq!(back.blocked, log.blocked);
        assert_eq!(back.pending_collectives, log.pending_collectives);
        assert_eq!(back.unmatched_sends, log.unmatched_sends);
        assert_eq!(back.finished, log.finished);
    }

    #[test]
    fn op_descriptions() {
        assert_eq!(
            HbOp::Recv {
                src: Some(1),
                tag: 0
            }
            .describe("MPI_Recv"),
            "MPI_Recv(src=1, tag=0)"
        );
        assert_eq!(
            HbOp::Recv { src: None, tag: 9 }.describe("MPI_Recv"),
            "MPI_Recv(src=ANY, tag=9)"
        );
        assert_eq!(
            HbOp::Send {
                dst: 2,
                tag: 1,
                rendezvous: true
            }
            .describe("MPI_Send"),
            "MPI_Send(dst=2, tag=1)"
        );
        assert_eq!(
            HbOp::Collective { slot: 4 }.describe("MPI_Barrier"),
            "MPI_Barrier(slot=4)"
        );
        assert_eq!(HbOp::Local.describe("MPI_Init"), "MPI_Init");
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0, 1, -1, 5, -5, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
