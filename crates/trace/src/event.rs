//! Trace events and their symbol encoding.

use crate::registry::FnId;

/// One entry of a per-thread ParLOT trace: the call or return of an
/// instrumented function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// Entry into a function.
    Call(FnId),
    /// Exit from a function.
    Return(FnId),
}

impl TraceEvent {
    /// The function this event refers to.
    pub fn fn_id(self) -> FnId {
        match self {
            TraceEvent::Call(f) | TraceEvent::Return(f) => f,
        }
    }

    /// Is this a call event?
    pub fn is_call(self) -> bool {
        matches!(self, TraceEvent::Call(_))
    }

    /// Is this a return event?
    pub fn is_return(self) -> bool {
        matches!(self, TraceEvent::Return(_))
    }

    /// Encode into a single `u32` symbol for the compressor:
    /// `fn_id << 1 | return_bit`.
    pub fn to_symbol(self) -> u32 {
        match self {
            TraceEvent::Call(f) => f.0 << 1,
            TraceEvent::Return(f) => (f.0 << 1) | 1,
        }
    }

    /// Decode a symbol produced by [`TraceEvent::to_symbol`].
    pub fn from_symbol(sym: u32) -> TraceEvent {
        let f = FnId(sym >> 1);
        if sym & 1 == 0 {
            TraceEvent::Call(f)
        } else {
            TraceEvent::Return(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_round_trip() {
        for raw in [0u32, 1, 2, 1000, (1 << 30) - 1] {
            for ev in [TraceEvent::Call(FnId(raw)), TraceEvent::Return(FnId(raw))] {
                assert_eq!(TraceEvent::from_symbol(ev.to_symbol()), ev);
            }
        }
    }

    #[test]
    fn predicates() {
        let c = TraceEvent::Call(FnId(7));
        let r = TraceEvent::Return(FnId(7));
        assert!(c.is_call() && !c.is_return());
        assert!(r.is_return() && !r.is_call());
        assert_eq!(c.fn_id(), r.fn_id());
        assert_ne!(c.to_symbol(), r.to_symbol());
    }
}
