//! Per-thread trace recording and cross-thread collection.
//!
//! A [`Tracer`] is handed to each simulated thread; it buffers events
//! locally (no cross-thread synchronisation on the hot path, mirroring
//! ParLOT's per-thread trace buffers) and submits the finished trace to
//! the shared [`TraceCollector`].

use crate::event::TraceEvent;
use crate::registry::{FnId, FunctionRegistry};
use crate::trace::{Trace, TraceId, TraceSet};
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Gathers per-thread traces of one execution.
#[derive(Debug)]
pub struct TraceCollector {
    registry: Arc<FunctionRegistry>,
    done: Mutex<BTreeMap<TraceId, Trace>>,
}

impl TraceCollector {
    /// A collector over a shared registry.
    pub fn new(registry: Arc<FunctionRegistry>) -> TraceCollector {
        TraceCollector {
            registry,
            done: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<FunctionRegistry> {
        &self.registry
    }

    /// Create a recording handle for thread `id`. The handle is
    /// single-threaded (`!Sync`); move it into the thread it traces.
    pub fn tracer(self: &Arc<Self>, id: TraceId) -> Tracer {
        Tracer {
            collector: Arc::clone(self),
            id,
            events: RefCell::new(Vec::new()),
            poisoned: Cell::new(false),
            finished: Cell::new(false),
        }
    }

    /// Consume the collector, producing the final [`TraceSet`].
    pub fn into_trace_set(self: Arc<Self>) -> TraceSet {
        let collector =
            Arc::try_unwrap(self).unwrap_or_else(|_| panic!("tracers still alive at collection"));
        let mut set = TraceSet::new(collector.registry);
        for (_, t) in collector.done.into_inner() {
            set.insert(t);
        }
        set
    }
}

// Convenience: allow `TraceCollector::new(...)` call sites to wrap in Arc.
impl TraceCollector {
    /// Shorthand for `Arc::new(TraceCollector::new(registry))`.
    pub fn shared(registry: Arc<FunctionRegistry>) -> Arc<TraceCollector> {
        Arc::new(TraceCollector::new(registry))
    }
}

/// Per-thread recording handle.
///
/// Events are appended to a local buffer. When the thread completes it
/// calls [`Tracer::finish`]; if it is killed by the deadlock detector,
/// [`Tracer::poison`] freezes the buffer first so no spurious returns
/// from unwinding scope guards are recorded — the trace then ends with
/// the call that never returned, the paper's hang signature.
#[derive(Debug)]
pub struct Tracer {
    collector: Arc<TraceCollector>,
    id: TraceId,
    events: RefCell<Vec<TraceEvent>>,
    poisoned: Cell<bool>,
    finished: Cell<bool>,
}

impl Tracer {
    /// The thread this tracer records.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The shared registry (for interning ad-hoc names).
    pub fn registry(&self) -> &Arc<FunctionRegistry> {
        self.collector.registry()
    }

    /// Intern a function name.
    pub fn intern(&self, name: &str) -> FnId {
        self.collector.registry.intern(name)
    }

    /// Record a call event.
    pub fn call(&self, f: FnId) {
        if !self.poisoned.get() {
            self.events.borrow_mut().push(TraceEvent::Call(f));
        }
    }

    /// Record a return event.
    pub fn ret(&self, f: FnId) {
        if !self.poisoned.get() {
            self.events.borrow_mut().push(TraceEvent::Return(f));
        }
    }

    /// Record a call+return pair for a leaf function with no traced
    /// callees (e.g. `findPtr` in the odd/even example).
    pub fn leaf(&self, name: &str) {
        let f = self.intern(name);
        self.call(f);
        self.ret(f);
    }

    /// Enter a traced scope: records the call now and the return when
    /// the returned guard drops.
    pub fn enter(&self, name: &str) -> Scope<'_> {
        let f = self.intern(name);
        self.call(f);
        Scope { tracer: self, f }
    }

    /// Stop recording permanently: the thread was killed (deadlock /
    /// job abort). Already-buffered events are kept; anything after —
    /// including returns from unwinding guards — is dropped, and the
    /// trace is marked truncated.
    pub fn poison(&self) {
        self.poisoned.set(true);
    }

    /// Has this tracer been poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.get()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Submit the trace to the collector. Called automatically on drop;
    /// explicit calls make intent clear in workload code.
    pub fn finish(self) {
        // Drop runs the submission.
    }

    fn submit(&self) {
        if self.finished.replace(true) {
            return;
        }
        let events = std::mem::take(&mut *self.events.borrow_mut());
        let truncated = self.poisoned.get();
        let mut done = self.collector.done.lock();
        // The same thread ID may submit several times (an OpenMP thread
        // pool runs one worker per parallel region under one ID); the
        // per-thread trace is the concatenation, as Pin would record it.
        let entry = done.entry(self.id).or_insert_with(|| Trace::new(self.id));
        entry.events.extend(events);
        entry.truncated |= truncated;
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.submit();
    }
}

/// RAII guard recording the matching return of an [`Tracer::enter`].
#[derive(Debug)]
pub struct Scope<'a> {
    tracer: &'a Tracer,
    f: FnId,
}

impl Scope<'_> {
    /// The function this scope traces.
    pub fn fn_id(&self) -> FnId {
        self.f
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        self.tracer.ret(self.f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Arc<TraceCollector> {
        TraceCollector::shared(Arc::new(FunctionRegistry::new()))
    }

    #[test]
    fn scopes_nest_correctly() {
        let c = setup();
        let tr = c.tracer(TraceId::new(0, 0));
        {
            let _a = tr.enter("outer");
            {
                let _b = tr.enter("inner");
            }
            tr.leaf("leaf");
        }
        tr.finish();
        let set = c.into_trace_set();
        let t = set.get(TraceId::new(0, 0)).unwrap();
        let names: Vec<String> = t
            .events
            .iter()
            .map(|e| {
                let n = set.registry.name(e.fn_id());
                if e.is_call() {
                    n
                } else {
                    format!("ret {n}")
                }
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "outer",
                "inner",
                "ret inner",
                "leaf",
                "ret leaf",
                "ret outer"
            ]
        );
        assert!(!t.truncated);
    }

    #[test]
    fn poison_truncates_and_suppresses_unwind_returns() {
        let c = setup();
        let tr = c.tracer(TraceId::new(2, 0));
        {
            let _main = tr.enter("main");
            let f = tr.intern("MPI_Allreduce");
            tr.call(f);
            // The op deadlocked: the runtime poisons the tracer; the
            // return is never recorded, nor is main's unwinding return.
            tr.poison();
        }
        tr.finish();
        let set = c.into_trace_set();
        let t = set.get(TraceId::new(2, 0)).unwrap();
        assert!(t.truncated);
        assert_eq!(t.events.len(), 2); // main call + allreduce call
        assert!(t.events[1].is_call());
        assert_eq!(set.registry.name(t.events[1].fn_id()), "MPI_Allreduce");
    }

    #[test]
    fn traces_collected_from_many_threads() {
        let c = setup();
        let mut handles = Vec::new();
        for p in 0..4u32 {
            for th in 0..3u32 {
                let tr = c.tracer(TraceId::new(p, th));
                handles.push(std::thread::spawn(move || {
                    let _m = tr.enter("work");
                    tr.leaf(&format!("kernel_{th}"));
                    drop(_m);
                    tr.finish();
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let set = c.into_trace_set();
        assert_eq!(set.len(), 12);
        for t in set.iter() {
            assert_eq!(t.events.len(), 4);
        }
    }

    #[test]
    fn drop_submits_even_without_finish() {
        let c = setup();
        {
            let tr = c.tracer(TraceId::new(0, 1));
            tr.leaf("f");
        } // dropped here
        let set = c.into_trace_set();
        assert_eq!(set.get(TraceId::new(0, 1)).unwrap().events.len(), 2);
    }
}
