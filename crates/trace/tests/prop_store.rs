//! Property tests for the on-disk trace formats.

use dt_trace::{store, FunctionRegistry, Trace, TraceEvent, TraceId, TraceSet};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The per-thread directory layout round-trips arbitrary sets.
    #[test]
    fn save_dir_round_trips(
        traces in proptest::collection::vec(
            (0u32..6, 0u32..4, proptest::collection::vec(0u32..12, 0..80), any::<bool>()),
            0..8,
        ),
        case in 0u64..u64::MAX,
    ) {
        let registry = Arc::new(FunctionRegistry::new());
        for s in 0..12u32 {
            registry.intern(&format!("fn_{s}"));
        }
        let mut set = TraceSet::new(registry.clone());
        for (p, t, stream, truncated) in &traces {
            let mut tr = Trace::new(TraceId::new(*p, *t));
            for &s in stream {
                let f = registry.intern(&format!("fn_{s}"));
                tr.events.push(TraceEvent::Call(f));
                tr.events.push(TraceEvent::Return(f));
            }
            tr.truncated = *truncated;
            set.insert(tr);
        }
        let dir = std::env::temp_dir().join(format!("dt_prop_store_{case:x}"));
        std::fs::remove_dir_all(&dir).ok();
        store::save_dir(&set, &dir).unwrap();
        let back = store::load_dir(&dir).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            prop_assert_eq!(&bt.events, &t.events);
            prop_assert_eq!(bt.truncated, t.truncated);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The single-file format and the directory format agree.
    #[test]
    fn file_and_dir_formats_agree(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 0..60), 1..5),
        case in 0u64..u64::MAX,
    ) {
        let registry = Arc::new(FunctionRegistry::new());
        let mut set = TraceSet::new(registry.clone());
        for (p, stream) in streams.iter().enumerate() {
            let mut tr = Trace::new(TraceId::master(p as u32));
            for &s in stream {
                let f = registry.intern(&format!("fn_{s}"));
                tr.events.push(TraceEvent::Call(f));
            }
            set.insert(tr);
        }
        let via_bytes = store::from_bytes(&store::to_bytes(&set)).unwrap();
        let dir = std::env::temp_dir().join(format!("dt_prop_agree_{case:x}"));
        std::fs::remove_dir_all(&dir).ok();
        store::save_dir(&set, &dir).unwrap();
        let via_dir = store::load_dir(&dir).unwrap();
        prop_assert_eq!(via_bytes.len(), via_dir.len());
        for t in via_bytes.iter() {
            prop_assert_eq!(&via_dir.get(t.id).unwrap().events, &t.events);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
