//! Randomized stress tests for the simulated MPI runtime: correct
//! protocols never deadlock; broken protocols always *terminate* (the
//! detector fires rather than hanging the process).

use dt_trace::FunctionRegistry;
use mpisim::{run, ReduceOp, SimConfig};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    // Each case spawns real threads: keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A shifting ring with random message sizes (straddling the eager
    /// limit) and a parity-safe protocol completes for any world size.
    #[test]
    fn safe_ring_never_deadlocks(
        n in 2u32..8,
        msg_len in 1usize..60,
        eager in 8usize..256,
        rounds in 1u32..4,
    ) {
        let cfg = SimConfig::new(n).with_eager_limit(eager);
        let out = run(cfg, Arc::new(FunctionRegistry::new()), move |rank| {
            rank.init()?;
            let me = rank.rank();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let data = vec![i64::from(me); msg_len];
            for r in 0..rounds {
                // Parity-safe: even ranks send first. With odd world
                // sizes the "ring" parity trick breaks, so serialize
                // through rank 0 instead.
                if n % 2 == 0 {
                    if me % 2 == 0 {
                        rank.send(next, r as i32, &data)?;
                        let _ = rank.recv(prev, r as i32)?;
                    } else {
                        let _ = rank.recv(prev, r as i32)?;
                        rank.send(next, r as i32, &data)?;
                    }
                } else if me == 0 {
                    rank.send(next, r as i32, &data)?;
                    let _ = rank.recv(prev, r as i32)?;
                } else {
                    let _ = rank.recv(prev, r as i32)?;
                    rank.send(next, r as i32, &data)?;
                }
                rank.barrier()?;
            }
            rank.finalize()
        });
        prop_assert!(!out.deadlocked, "errors: {:?}", out.errors);
        prop_assert!(out.errors.is_empty());
    }

    /// Random collective sequences complete when all ranks agree.
    #[test]
    fn agreeing_collectives_complete(
        n in 2u32..6,
        script in proptest::collection::vec(0u8..4, 1..8),
    ) {
        let script = Arc::new(script);
        let s2 = script.clone();
        let out = run(SimConfig::new(n), Arc::new(FunctionRegistry::new()), move |rank| {
            rank.init()?;
            let me = i64::from(rank.rank());
            for (i, op) in s2.iter().enumerate() {
                match op {
                    0 => { rank.barrier()?; }
                    1 => { let _ = rank.allreduce(&[me], ReduceOp::Sum)?; }
                    2 => { let _ = rank.reduce(&[me], ReduceOp::Max, (i as u32) % n)?; }
                    _ => { let _ = rank.bcast(&[i as i64], 1, (i as u32) % n)?; }
                }
            }
            rank.finalize()
        });
        prop_assert!(!out.deadlocked, "errors: {:?}", out.errors);
    }

    /// A rank that drops out of a random collective slot produces a
    /// detected deadlock (truncated traces), never a hang.
    #[test]
    fn dropping_out_is_detected(
        n in 2u32..6,
        steps in 1usize..5,
        culprit_seed in 0u32..100,
    ) {
        let culprit = culprit_seed % n;
        let out = run(SimConfig::new(n), Arc::new(FunctionRegistry::new()), move |rank| {
            rank.init()?;
            for s in 0..steps {
                if rank.rank() == culprit && s == steps - 1 {
                    // Skip the final collective entirely.
                    break;
                }
                rank.barrier()?;
            }
            rank.finalize()
        });
        prop_assert!(out.deadlocked);
        // Every non-culprit rank's trace ends in the unreturned barrier.
        for t in out.traces.iter() {
            if t.id.process != culprit {
                let last = *t.events.last().unwrap();
                prop_assert!(last.is_call());
                prop_assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Barrier");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever collective script the ranks agree on, a single rank
    /// diverging at a random step (wrong count) is always *detected* —
    /// the run ends in a deadlock verdict with every trace truncated at
    /// the divergent slot, never a hang and never silent success.
    #[test]
    fn any_single_divergence_is_detected(
        n in 2u32..6,
        script in proptest::collection::vec(0u8..3, 1..6),
        culprit_seed in 0u32..97,
        step_seed in 0u32..97,
    ) {
        let culprit = culprit_seed % n;
        let bad_step = (step_seed as usize) % script.len();
        let script = Arc::new(script);
        let s2 = script.clone();
        let out = run(SimConfig::new(n), Arc::new(FunctionRegistry::new()), move |rank| {
            rank.init()?;
            let me = i64::from(rank.rank());
            for (i, op) in s2.iter().enumerate() {
                let diverge = rank.rank() == culprit && i == bad_step;
                match op {
                    0 => {
                        // Wrong count on the divergent step.
                        let count = if diverge { 3 } else { 1 };
                        let _ = rank.allreduce_with_count(&[me], ReduceOp::Sum, count)?;
                    }
                    1 => {
                        if diverge {
                            // Calls a different collective entirely.
                            let _ = rank.allreduce(&[me], ReduceOp::Min)?;
                        } else {
                            rank.barrier()?;
                        }
                    }
                    _ => {
                        // Divergent root must actually differ from the
                        // healthy root 0.
                        let root = if diverge {
                            if rank.rank() == 0 { 1 } else { rank.rank() }
                        } else {
                            0
                        };
                        let _ = rank.bcast(&[i as i64], 1, root)?;
                    }
                }
            }
            rank.finalize()
        });
        prop_assert!(out.deadlocked, "divergence must be detected");
        // Every master truncated (no one escapes a collective hang).
        for t in out.traces.iter() {
            prop_assert!(t.truncated, "trace {} escaped", t.id);
        }
    }
}
