//! Happens-before semantics of the causally-stamped event log
//! (the paper's §VII-2 future-work extension).

use dt_trace::FunctionRegistry;
use mpisim::{run, ReduceOp, RunOutcome, SimConfig};
use std::sync::Arc;

fn registry() -> Arc<FunctionRegistry> {
    Arc::new(FunctionRegistry::new())
}

/// Index of rank `p`'s `n`-th event named `name`.
fn nth(out: &RunOutcome, p: u32, name: &str, n: usize) -> usize {
    (0..out.hb.len())
        .filter(|&i| out.hb.trace_of(i).process == p && out.hb.name_of(i) == name)
        .nth(n)
        .unwrap_or_else(|| panic!("no event #{n} `{name}` for rank {p}"))
}

#[test]
fn send_happens_before_matching_recv() {
    let out = run(SimConfig::new(2), registry(), |rank| {
        rank.init()?;
        if rank.rank() == 0 {
            rank.send(1, 0, &[42])?;
        } else {
            let _ = rank.recv(0, 0)?;
        }
        rank.finalize()
    });
    let send = nth(&out, 0, "MPI_Send", 0);
    let recv = nth(&out, 1, "MPI_Recv", 0);
    assert!(out.hb.happens_before(send, recv));
    assert!(!out.hb.happens_before(recv, send));
    // The two Init events are concurrent (no communication yet).
    let i0 = nth(&out, 0, "MPI_Init", 0);
    let i1 = nth(&out, 1, "MPI_Init", 0);
    assert!(out.hb.concurrent(i0, i1));
}

#[test]
fn collectives_causally_synchronize_everyone() {
    let out = run(SimConfig::new(3), registry(), |rank| {
        rank.init()?;
        let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
        rank.finalize()
    });
    // Every pre-collective event happens before every post-collective
    // event of any other rank.
    for p in 0..3 {
        let init = nth(&out, p, "MPI_Init", 0);
        for q in 0..3 {
            let fin = nth(&out, q, "MPI_Finalize", 0);
            assert!(
                out.hb.happens_before(init, fin),
                "Init@{p} must precede Finalize@{q} through the allreduce"
            );
        }
    }
}

#[test]
fn transitive_message_chains() {
    // 0 → 1 → 2: rank 0's send must precede rank 2's recv transitively.
    let out = run(SimConfig::new(3), registry(), |rank| {
        rank.init()?;
        match rank.rank() {
            0 => rank.send(1, 0, &[1])?,
            1 => {
                let v = rank.recv(0, 0)?;
                rank.send(2, 0, &v)?;
            }
            _ => {
                let _ = rank.recv(1, 0)?;
            }
        }
        rank.finalize()
    });
    let s0 = nth(&out, 0, "MPI_Send", 0);
    let r2 = nth(&out, 2, "MPI_Recv", 0);
    assert!(out.hb.happens_before(s0, r2), "transitivity via rank 1");
}

#[test]
fn least_progressed_triage_points_at_the_stalled_sender() {
    // Rank 0 never sends; ranks 1 and 2 relay and wait on it.
    let out = run(SimConfig::new(3), registry(), |rank| {
        rank.init()?;
        match rank.rank() {
            0 => { /* forgets to send */ }
            1 => {
                let _ = rank.recv(0, 0)?; // never satisfied
            }
            _ => {
                let _ = rank.recv(1, 0)?; // waits on rank 1's relay
            }
        }
        rank.finalize()
    });
    assert!(out.deadlocked);
    // The logged events stop at Init for everyone except rank 0 (which
    // reaches Finalize); the triage surfaces concurrent minima — rank
    // 0's last event does not dominate anyone, so at minimum the true
    // laggards (1, 2) appear.
    let least = out.hb.least_progressed_ranks();
    assert!(!least.is_empty());
    assert!(
        least.contains(&1) || least.contains(&2),
        "stalled ranks must be causally minimal: {least:?}"
    );
}

#[test]
fn otf_export_orders_cross_rank_events() {
    let out = run(SimConfig::new(2), registry(), |rank| {
        rank.init()?;
        if rank.rank() == 0 {
            rank.tracer().leaf("produce");
            rank.send(1, 0, &[1])?;
        } else {
            let _ = rank.recv(0, 0)?;
            rank.tracer().leaf("consume");
        }
        rank.finalize()
    });
    let log = mpisim::hb::export_otf(&out.traces, &out.hb);
    // Every trace event appears (ENTER+LEAVE per call).
    let enters = log.matches("ENTER").count();
    let total_events: usize = out.traces.iter().map(|t| t.events.len()).sum();
    assert_eq!(enters + log.matches("LEAVE").count(), total_events);
    // The consumer's user function is stamped at-or-after the
    // receive's Lamport time, which exceeds the producer's send time.
    let stamp = |needle: &str| -> u64 {
        let line = log.lines().find(|l| l.contains(needle)).unwrap();
        line.split("t=")
            .nth(1)
            .unwrap()
            .split('.')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(stamp("ENTER consume") > stamp("ENTER produce"));
    assert!(log.contains("loc=0.0"));
    assert!(log.contains("loc=1.0"));
}

#[test]
fn event_log_is_a_valid_linearization() {
    // In log order, no later event may happen-before an earlier one.
    let out = run(SimConfig::new(4), registry(), |rank| {
        rank.init()?;
        let r = rank.rank();
        let next = (r + 1) % 4;
        let prev = (r + 3) % 4;
        if r % 2 == 0 {
            rank.send(next, 0, &[1])?;
            let _ = rank.recv(prev, 0)?;
        } else {
            let _ = rank.recv(prev, 0)?;
            rank.send(next, 0, &[1])?;
        }
        rank.barrier()?;
        rank.finalize()
    });
    let n = out.hb.len();
    for i in 0..n {
        for j in i + 1..n {
            assert!(
                !out.hb.happens_before(j, i),
                "log order violates causality at ({i}, {j})"
            );
        }
    }
    // And the OTF2-ish export mentions every rank.
    let log = out.hb.to_event_log();
    for p in 0..4 {
        assert!(log.contains(&format!("rank={p}")));
    }
}
