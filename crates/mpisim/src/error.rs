//! Simulation errors.

use std::fmt;

/// Why a run was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The quiescence detector proved no live rank can make progress.
    Deadlock,
    /// The wall-clock watchdog fired (progress stalled outside MPI —
    /// e.g. a livelock in user code).
    WatchdogTimeout,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Deadlock => write!(f, "global deadlock detected"),
            AbortReason::WatchdogTimeout => write!(f, "watchdog timeout"),
        }
    }
}

/// Error returned by simulated MPI/OpenMP operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// The run was aborted while this operation was blocked; the
    /// calling thread must unwind (its trace is already poisoned).
    Aborted(AbortReason),
    /// A peer rank outside `0..world_size`.
    InvalidRank(u32),
    /// The rank's body panicked (models a crashed process; its trace is
    /// truncated and the remaining ranks see it as dead).
    RankPanicked,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Aborted(r) => write!(f, "MPI operation aborted: {r}"),
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::RankPanicked => write!(f, "rank body panicked (crashed process)"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert!(MpiError::Aborted(AbortReason::Deadlock)
            .to_string()
            .contains("deadlock"));
        assert!(MpiError::InvalidRank(9).to_string().contains('9'));
        assert!(AbortReason::WatchdogTimeout
            .to_string()
            .contains("watchdog"));
    }
}
