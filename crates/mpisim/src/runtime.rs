//! Launching simulated executions.

use crate::error::{AbortReason, MpiError};
use crate::hb::{BlockedOp, HbLog, PendingCollective, UnmatchedSend};
use crate::rank::Rank;
use crate::world::{World, WorldState};
use dt_trace::{FunctionRegistry, TraceCollector, TraceSet};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one simulated execution.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of MPI ranks.
    pub world_size: u32,
    /// Eager/rendezvous threshold in bytes. The default of 256 bytes
    /// mirrors small-message eager protocols; workloads that want to
    /// exercise the low-buffering `Send ‖ Send` trap lower it.
    pub eager_limit: usize,
    /// Wall-clock watchdog: if no simulation progress happens for this
    /// long the run is aborted (backstop for stalls the quiescence
    /// detector cannot see, e.g. user-code livelock).
    pub watchdog: Duration,
    /// Also trace MPI-internal library calls (`MPIDI_*`/`MPIR_*`,
    /// transport and progress-engine functions) — the analogue of
    /// ParLOT's "all images" mode; the paper's runs used "main image"
    /// only, so this defaults to off.
    pub trace_internals: bool,
    /// Emit request-lifecycle markers for the `reqcheck` analysis:
    /// `mpi_coll@<kind:count:root:op>` argument signatures inside every
    /// collective call, and `mpi_req_pending@<origin>` teardown
    /// witnesses for requests posted but never waited on. Off by
    /// default so existing trace shapes are untouched.
    pub record_requests: bool,
}

impl SimConfig {
    /// Defaults for `world_size` ranks.
    pub fn new(world_size: u32) -> SimConfig {
        SimConfig {
            world_size,
            eager_limit: 256,
            watchdog: Duration::from_secs(10),
            trace_internals: false,
            record_requests: false,
        }
    }

    /// Enable MPI-internal call tracing (ParLOT "all images").
    pub fn with_internals(mut self) -> SimConfig {
        self.trace_internals = true;
        self
    }

    /// Enable request-lifecycle markers (for `reqcheck`).
    pub fn with_request_tracking(mut self) -> SimConfig {
        self.record_requests = true;
        self
    }

    /// Override the eager limit.
    pub fn with_eager_limit(mut self, bytes: usize) -> SimConfig {
        self.eager_limit = bytes;
        self
    }

    /// Override the watchdog timeout.
    pub fn with_watchdog(mut self, d: Duration) -> SimConfig {
        self.watchdog = d;
        self
    }
}

/// Everything a simulated execution produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// All per-thread traces (ParLOT's output for this execution).
    pub traces: TraceSet,
    /// Did the run abort due to detected deadlock?
    pub deadlocked: bool,
    /// Abort reason, when aborted.
    pub abort_reason: Option<AbortReason>,
    /// Per-rank errors (aborted operations, invalid arguments).
    pub errors: Vec<(u32, MpiError)>,
    /// Causally-stamped MPI event log (vector clocks; see
    /// [`crate::hb`]).
    pub hb: HbLog,
}

/// Snapshot the world's happens-before state into a self-contained
/// [`HbLog`]: the stamped event log plus, for aborted runs, the frozen
/// blocked-operation / in-flight-collective / unconsumed-message state
/// that the wait-for-graph analysis (`hbcheck`) consumes.
fn export_hb(st: &WorldState) -> HbLog {
    let mut hb = st.hb.clone();

    hb.blocked = st
        .waiting
        .iter()
        .map(|(&rank, (name, op))| BlockedOp {
            rank,
            name: name.clone(),
            op: *op,
        })
        .collect();
    hb.blocked.sort_by_key(|b| b.rank);

    hb.pending_collectives = st
        .collectives
        .iter()
        .map(|(&slot, inst)| {
            let arrived: Vec<u32> = (0..inst.vcs.len() as u32)
                .filter(|&r| inst.vcs[r as usize].is_some())
                .collect();
            let mismatched = arrived
                .iter()
                .copied()
                .filter(|&r| !inst.sig_ok[r as usize])
                .collect();
            PendingCollective {
                slot,
                name: inst.signature.kind.mpi_name().to_string(),
                arrived,
                mismatched,
            }
        })
        .collect();
    hb.pending_collectives.sort_by_key(|p| p.slot);

    let mut unmatched: BTreeMap<(u32, u32, i32), u64> = BTreeMap::new();
    for (&(src, dst, tag), q) in &st.mailbox {
        if !q.is_empty() {
            *unmatched.entry((src, dst, tag)).or_default() += q.len() as u64;
        }
    }
    for p in &st.pending_sends {
        *unmatched.entry((p.src, p.dst, p.tag)).or_default() += 1;
    }
    hb.unmatched_sends = unmatched
        .into_iter()
        .map(|((src, dst, tag), count)| UnmatchedSend {
            src,
            dst,
            tag,
            count,
        })
        .collect();

    // A rank aborted *inside* a blocked operation is hung, not done —
    // its thread returned, but for happens-before purposes it counts
    // as blocked, never finished.
    hb.finished = st
        .finished_ranks
        .iter()
        .copied()
        .filter(|r| !st.waiting.contains_key(r))
        .collect();
    hb.finished.sort_unstable();
    hb
}

/// Run `body` on every rank of a fresh world, collecting traces.
///
/// `body` is shared by all ranks (it receives the rank handle); rank
/// threads are real OS threads. The call returns when every rank body
/// has returned — on deadlock, the detector aborts blocked operations
/// so bodies unwind with `Err(Aborted)`.
pub fn run<F>(config: SimConfig, registry: Arc<FunctionRegistry>, body: F) -> RunOutcome
where
    F: Fn(&Rank) -> Result<(), MpiError> + Send + Sync,
{
    let collector = TraceCollector::shared(registry);
    let world = World::new_full(
        config.world_size,
        config.eager_limit,
        config.trace_internals,
        config.record_requests,
    );
    let errors: Mutex<Vec<(u32, MpiError)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for r in 0..config.world_size {
            let world = Arc::clone(&world);
            let collector = Arc::clone(&collector);
            let body = &body;
            let errors = &errors;
            s.spawn(move || {
                let rank = Rank::new(world.clone(), r, collector);
                // A panicking body models a crashed process: its trace
                // is frozen where it died and the rank still counts as
                // finished, so the deadlock detector / watchdog see the
                // survivors correctly instead of waiting forever.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&rank)));
                let result = match result {
                    Ok(r) => r,
                    Err(_) => {
                        rank.tracer().poison();
                        Err(MpiError::RankPanicked)
                    }
                };
                // Requests the body posted but never waited on become
                // explicit teardown witnesses (no-op on a poisoned
                // trace or when request tracking is off).
                rank.export_pending_requests();
                world.rank_done(r);
                if let Err(e) = result {
                    errors.lock().push((r, e));
                }
                drop(rank); // submits the trace
            });
        }
        // Watchdog: poll the progress version; abort on stall. Exits
        // when every rank has finished.
        let world_w = Arc::clone(&world);
        let cfg = config;
        s.spawn(move || {
            let mut last_version = world_w.progress_version();
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(20));
                let done = world_w.with_state(|st| st.finished) >= cfg.world_size;
                if done {
                    return;
                }
                let v = world_w.progress_version();
                if v != last_version {
                    last_version = v;
                    last_change = Instant::now();
                } else if last_change.elapsed() > cfg.watchdog {
                    world_w.abort(AbortReason::WatchdogTimeout);
                    // Keep polling until ranks drain.
                    last_change = Instant::now();
                }
            }
        });
    });

    let abort_reason = world.with_state(|st| st.aborted);
    let hb = world.with_state(export_hb);
    let mut errors = errors.into_inner();
    errors.sort_by_key(|&(r, _)| r);
    RunOutcome {
        traces: collector.into_trace_set(),
        deadlocked: abort_reason == Some(AbortReason::Deadlock),
        abort_reason,
        errors,
        hb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    #[test]
    fn empty_bodies_complete() {
        let out = run(SimConfig::new(3), registry(), |rank| rank.finalize());
        assert!(!out.deadlocked);
        assert!(out.abort_reason.is_none());
        assert_eq!(out.traces.len(), 3);
    }

    #[test]
    fn watchdog_kills_livelock() {
        let cfg = SimConfig::new(1).with_watchdog(Duration::from_millis(150));
        let t0 = Instant::now();
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            // Livelock: spin until the watchdog kills the run (polling
            // the abort flag like a well-behaved worker).
            while !rank.world().is_aborted() {
                std::hint::spin_loop();
            }
            rank.tracer().poison();
            Err(MpiError::Aborted(AbortReason::WatchdogTimeout))
        });
        assert_eq!(out.abort_reason, Some(AbortReason::WatchdogTimeout));
        assert!(!out.deadlocked);
        assert!(t0.elapsed() < Duration::from_secs(8), "watchdog too slow");
        assert!(
            out.traces
                .get(dt_trace::TraceId::master(0))
                .unwrap()
                .truncated
        );
    }

    #[test]
    fn rank_panic_is_a_crash_not_a_hang() {
        let t0 = Instant::now();
        let out = run(SimConfig::new(3), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 1 {
                panic!("simulated crash (e.g. debug-mode overflow)");
            }
            let _ = rank.allreduce(&[1], crate::ReduceOp::Sum)?;
            rank.finalize()
        });
        // The survivors' allreduce can never complete: detected deadlock.
        assert!(out.deadlocked);
        assert!(
            out.errors
                .iter()
                .any(|(r, e)| *r == 1 && matches!(e, MpiError::RankPanicked)),
            "{:?}",
            out.errors
        );
        // The crashed rank's trace is frozen mid-call.
        assert!(
            out.traces
                .get(dt_trace::TraceId::master(1))
                .unwrap()
                .truncated
        );
        // And the whole thing resolves promptly (no watchdog wait).
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn deterministic_trace_shapes_across_runs() {
        let run_once = || {
            let out = run(SimConfig::new(4), registry(), |rank| {
                rank.init()?;
                let r = rank.comm_rank()?;
                let _ = rank.allreduce(&[i64::from(r)], crate::ReduceOp::Sum)?;
                rank.barrier()?;
                rank.finalize()
            });
            let mut shape = Vec::new();
            for t in out.traces.iter() {
                let names: Vec<String> = t
                    .events
                    .iter()
                    .map(|e| out.traces.registry.name(e.fn_id()))
                    .collect();
                shape.push((t.id, names));
            }
            shape
        };
        assert_eq!(run_once(), run_once());
    }
}
