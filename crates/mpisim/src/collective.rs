//! Collective operations: matching, signatures, and reduction maths.

/// Reduction operator for `Allreduce`/`Reduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum — ILCS reduces champion costs with MIN.
    Min,
    /// Elementwise maximum — the paper's "wrong collective operation"
    /// bug swaps MIN for MAX.
    Max,
}

impl ReduceOp {
    /// Lower-case operator name used in `mpi_coll@` signature markers.
    pub fn marker_name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }

    /// Apply to a pair of values.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Which collective a rank invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Reduce`.
    Reduce,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Gather`.
    Gather,
    /// `MPI_Scatter`.
    Scatter,
}

impl CollKind {
    /// Every collective kind the simulator models, in a fixed order.
    pub const ALL: [CollKind; 7] = [
        CollKind::Barrier,
        CollKind::Allreduce,
        CollKind::Reduce,
        CollKind::Bcast,
        CollKind::Allgather,
        CollKind::Gather,
        CollKind::Scatter,
    ];

    /// The MPI entry-point name this kind corresponds to in traces.
    pub fn mpi_name(self) -> &'static str {
        match self {
            CollKind::Barrier => "MPI_Barrier",
            CollKind::Allreduce => "MPI_Allreduce",
            CollKind::Reduce => "MPI_Reduce",
            CollKind::Bcast => "MPI_Bcast",
            CollKind::Allgather => "MPI_Allgather",
            CollKind::Gather => "MPI_Gather",
            CollKind::Scatter => "MPI_Scatter",
        }
    }

    /// Inverse of [`CollKind::mpi_name`]: recognize a traced function
    /// name as a collective. Trace analyses (tracelint's cross-rank
    /// collective-order rule) use this to project call streams onto
    /// collective sequences without hard-coding name lists.
    pub fn from_mpi_name(name: &str) -> Option<CollKind> {
        CollKind::ALL.iter().copied().find(|k| k.mpi_name() == name)
    }
}

/// The matching signature of one collective call. MPI requires all
/// ranks of a communicator to make *compatible* calls in the same
/// order; a rank arriving with a different signature (wrong count,
/// wrong root, different collective) can never complete — the hang the
/// paper injects in §IV-C.
///
/// The reduction *op* is deliberately **not** part of the signature:
/// real MPI cannot validate op consistency across ranks, which is why
/// the paper's "wrong collective operation" bug (§IV-D) *terminates*
/// with wrong results instead of hanging. When ops disagree, the
/// result is computed with the lowest-ranked participant's op (a
/// deterministic stand-in for MPI's undefined behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollSignature {
    /// The collective kind.
    pub kind: CollKind,
    /// Element count each rank contributes/expects.
    pub count: usize,
    /// Root rank for rooted collectives.
    pub root: Option<u32>,
}

/// State of one in-flight collective instance (one call-order slot).
#[derive(Debug)]
pub struct CollInstance {
    /// Signature of the first arriver (all others must match).
    pub signature: CollSignature,
    /// Per-rank payloads (for reductions/bcast).
    pub payloads: Vec<Option<Vec<i64>>>,
    /// Per-rank reduction ops (may disagree — see [`CollSignature`]).
    pub ops: Vec<Option<ReduceOp>>,
    /// Per-rank vector clocks at arrival (joined on completion — a
    /// collective synchronizes everyone causally).
    pub vcs: Vec<Option<crate::hb::VectorClock>>,
    /// Whether each rank's signature matched the first arriver's.
    pub sig_ok: Vec<bool>,
    /// Ranks arrived so far.
    pub arrived: usize,
    /// Completed result, once every rank arrived with matching sigs.
    pub result: Option<Vec<i64>>,
    /// Ranks that have picked up the result and left.
    pub departed: usize,
}

impl CollInstance {
    /// A fresh instance sized for `world` ranks.
    pub fn new(world: usize, signature: CollSignature) -> CollInstance {
        CollInstance {
            signature,
            payloads: vec![None; world],
            ops: vec![None; world],
            vcs: vec![None; world],
            sig_ok: vec![false; world],
            arrived: 0,
            result: None,
            departed: 0,
        }
    }

    /// Record a rank's arrival. Completion (result computation) happens
    /// when the last rank arrives *and* every signature agreed.
    pub fn arrive(
        &mut self,
        rank: usize,
        sig: CollSignature,
        op: Option<ReduceOp>,
        payload: Option<Vec<i64>>,
    ) {
        self.arrive_stamped(rank, sig, op, payload, None);
    }

    /// [`CollInstance::arrive`] with the arriving rank's vector clock.
    pub fn arrive_stamped(
        &mut self,
        rank: usize,
        sig: CollSignature,
        op: Option<ReduceOp>,
        payload: Option<Vec<i64>>,
        vc: Option<crate::hb::VectorClock>,
    ) {
        self.sig_ok[rank] = sig == self.signature;
        self.payloads[rank] = payload;
        self.ops[rank] = op;
        self.vcs[rank] = vc;
        self.arrived += 1;
        if self.arrived == self.payloads.len() && self.sig_ok.iter().all(|&ok| ok) {
            self.result = Some(self.compute());
        }
    }

    /// True once the collective completed and `rank` may take the result.
    pub fn complete(&self) -> bool {
        self.result.is_some()
    }

    /// Join of all participants' arrival clocks (the causal stamp every
    /// departing rank merges).
    pub fn joined_vc(&self, world: usize) -> crate::hb::VectorClock {
        let mut vc = crate::hb::VectorClock::zero(world);
        for v in self.vcs.iter().flatten() {
            vc.merge(v);
        }
        vc
    }

    fn compute(&self) -> Vec<i64> {
        match self.signature.kind {
            CollKind::Barrier => Vec::new(),
            CollKind::Bcast | CollKind::Scatter => {
                // Root's payload; scatter takers slice their chunk.
                let root = self.signature.root.expect("rooted collective") as usize;
                self.payloads[root].clone().expect("root supplied payload")
            }
            CollKind::Allgather | CollKind::Gather => {
                // Concatenation in rank order.
                let mut out = Vec::new();
                for p in self.payloads.iter().flatten() {
                    out.extend_from_slice(p);
                }
                out
            }
            CollKind::Allreduce | CollKind::Reduce => {
                // Lowest rank's op wins when ops disagree (deterministic
                // stand-in for MPI's undefined behaviour — §IV-D).
                let op = self
                    .ops
                    .iter()
                    .flatten()
                    .next()
                    .copied()
                    .expect("reduction has at least one op");
                let mut acc: Option<Vec<i64>> = None;
                for p in self.payloads.iter().flatten() {
                    acc = Some(match acc {
                        None => p.clone(),
                        Some(a) => a.iter().zip(p).map(|(&x, &y)| op.apply(x, y)).collect(),
                    });
                }
                acc.unwrap_or_default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: CollKind, count: usize, root: Option<u32>) -> CollSignature {
        CollSignature { kind, count, root }
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(2, 3), 5);
        assert_eq!(ReduceOp::Min.apply(2, 3), 2);
        assert_eq!(ReduceOp::Max.apply(2, 3), 3);
    }

    #[test]
    fn allreduce_completes_with_matching_sigs() {
        let s = sig(CollKind::Allreduce, 1, None);
        let mut inst = CollInstance::new(3, s);
        inst.arrive(0, s, Some(ReduceOp::Min), Some(vec![5]));
        assert!(!inst.complete());
        inst.arrive(1, s, Some(ReduceOp::Min), Some(vec![3]));
        inst.arrive(2, s, Some(ReduceOp::Min), Some(vec![9]));
        assert!(inst.complete());
        assert_eq!(inst.result.as_deref(), Some(&[3][..]));
    }

    #[test]
    fn signature_mismatch_never_completes() {
        let good = sig(CollKind::Allreduce, 4, None);
        let bad = sig(CollKind::Allreduce, 7, None); // wrong count
        let mut inst = CollInstance::new(2, good);
        inst.arrive(0, good, Some(ReduceOp::Min), Some(vec![1, 2, 3, 4]));
        inst.arrive(1, bad, Some(ReduceOp::Min), Some(vec![0; 7]));
        assert!(!inst.complete(), "mismatched collective must hang");
    }

    #[test]
    fn mismatched_ops_complete_with_lowest_ranks_op() {
        // §IV-D: wrong op does NOT hang; lowest rank's op decides.
        let s = sig(CollKind::Allreduce, 1, None);
        let mut inst = CollInstance::new(2, s);
        inst.arrive(0, s, Some(ReduceOp::Max), Some(vec![5]));
        inst.arrive(1, s, Some(ReduceOp::Min), Some(vec![3]));
        assert!(inst.complete());
        assert_eq!(inst.result.as_deref(), Some(&[5][..]), "MAX wins");
    }

    #[test]
    fn bcast_takes_root_payload() {
        let s = sig(CollKind::Bcast, 2, Some(1));
        let mut inst = CollInstance::new(3, s);
        inst.arrive(0, s, None, None);
        inst.arrive(2, s, None, None);
        inst.arrive(1, s, None, Some(vec![7, 8]));
        assert!(inst.complete());
        assert_eq!(inst.result.as_deref(), Some(&[7, 8][..]));
    }

    #[test]
    fn sum_reduction_elementwise() {
        let s = sig(CollKind::Reduce, 2, Some(0));
        let mut inst = CollInstance::new(2, s);
        inst.arrive(0, s, Some(ReduceOp::Sum), Some(vec![1, 10]));
        inst.arrive(1, s, Some(ReduceOp::Sum), Some(vec![2, 20]));
        assert_eq!(inst.result.as_deref(), Some(&[3, 30][..]));
    }

    #[test]
    fn barrier_result_is_empty() {
        let s = sig(CollKind::Barrier, 0, None);
        let mut inst = CollInstance::new(1, s);
        inst.arrive(0, s, None, None);
        assert!(inst.complete());
        assert_eq!(inst.result.as_deref(), Some(&[][..]));
    }
}
