//! `mpisim` — an in-process MPI + OpenMP simulation substrate.
//!
//! The DiffTrace paper evaluates on real MPI/OpenMP programs (odd/even
//! sort, ILCS-TSP, LULESH2) run on a supercomputer and traced through
//! Pin. This reproduction cannot assume an MPI installation or a
//! cluster, so `mpisim` provides the *minimum faithful substrate*: a
//! deterministic, fully in-process message-passing runtime whose
//! **observable call traces and failure modes** match what the paper's
//! toolchain sees:
//!
//! * Ranks run as OS threads against a shared [`world::World`].
//!   Point-to-point messages follow MPI's **eager/rendezvous** split: a
//!   message at or below [`SimConfig::eager_limit`] bytes completes
//!   immediately (buffered), a larger one blocks until matched — which
//!   is exactly the "head-to-head `Send ‖ Send` deadlock under low
//!   buffering (MPI EAGER limit)" trap of the paper's §II-B example.
//! * Collectives (`Barrier`, `Allreduce`, `Reduce`, `Bcast`) match by
//!   call order and verify a per-call *signature* (kind, op, count,
//!   root). Mismatched signatures — the paper's "wrong size collective"
//!   bug — leave the collective forever incomplete, i.e. a hang.
//! * A **global-quiescence deadlock detector** watches the world: the
//!   moment every live rank is blocked in an MPI operation whose
//!   predicate cannot be satisfied, the run is aborted. Each blocked
//!   rank's [`dt_trace::Tracer`] is poisoned so its trace ends with the
//!   call that never returned — reproducing the trace signature
//!   DiffTrace exploits ("the last entry is a call to MPI_Allreduce …
//!   it deadlocked"). A wall-clock watchdog backstops anything the
//!   quiescence check cannot see.
//! * [`omp`] models the OpenMP constructs the workloads need: parallel
//!   regions (`GOMP_parallel_start/end` in traces), named critical
//!   sections (`GOMP_critical_start/end`), and an abort-aware team
//!   barrier. Worker threads get their own tracers under
//!   `TraceId { process, thread ≥ 1 }`, matching the paper's `p.t`
//!   labels (e.g. suspicious trace `6.4`).
//!
//! Every MPI/OpenMP entry point records call/return events through
//! `dt-trace`, so a workload run under `mpisim` yields the same kind of
//! per-thread whole-program traces ParLOT collects.
//!
//! # Example
//!
//! ```
//! use mpisim::{run, SimConfig, ReduceOp};
//! use std::sync::Arc;
//!
//! let outcome = run(SimConfig::new(4), Arc::new(dt_trace::FunctionRegistry::new()), |rank| {
//!     rank.init()?;
//!     let sum = rank.allreduce(&[i64::from(rank.rank())], ReduceOp::Sum)?;
//!     assert_eq!(sum, vec![0 + 1 + 2 + 3]);
//!     rank.finalize()
//! });
//! assert!(!outcome.deadlocked);
//! assert_eq!(outcome.traces.len(), 4);
//! ```

pub mod collective;
pub mod error;
pub mod omp;
pub mod rank;
pub mod runtime;
pub mod world;

/// Happens-before model (clocks, log, OTF export) — lives in
/// [`dt_trace`] so static analyzers can consume recorded runs without
/// depending on the simulator; re-exported here for compatibility.
pub use dt_trace::hb;

pub use collective::ReduceOp;
pub use error::{AbortReason, MpiError};
pub use hb::{HbEvent, HbLog, HbOp, VectorClock};
pub use omp::OmpCtx;
pub use rank::{Rank, Request};
pub use runtime::{run, RunOutcome, SimConfig};
