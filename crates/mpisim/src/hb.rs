//! Vector clocks and happens-before logging.
//!
//! The paper's future work (§VII-2) plans to "convert ParLOT traces
//! into Open Trace Format (OTF2) by logically timestamping trace
//! entries to mine temporal properties of functions such as
//! *happened-before*". This module implements that extension for the
//! simulated runtime: every MPI operation is stamped with a **vector
//! clock** (exact happens-before, not just Lamport order), the runtime
//! collects an event log, and [`HbLog`] answers causality queries —
//! including the PRODOMETER-style "least-progressed rank" triage the
//! paper cites as symbiotic related work.

use dt_trace::TraceId;
use std::fmt;

/// A vector clock over `world_size` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(pub Vec<u64>);

impl VectorClock {
    /// The zero clock for `n` ranks.
    pub fn zero(n: usize) -> VectorClock {
        VectorClock(vec![0; n])
    }

    /// Advance `rank`'s own component.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Component-wise maximum (message receive / collective join).
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` component-wise.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && self != other
    }

    /// Neither happens before the other.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Lamport scalar projection (max component) — the "logical
    /// timestamp" an OTF2 export would use.
    pub fn lamport(&self) -> u64 {
        self.0.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}⟩",
            self.0
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// One logged, causally-stamped runtime event.
#[derive(Debug, Clone)]
pub struct HbEvent {
    /// Which thread performed it (always a master thread `p.0` — only
    /// MPI operations move the clocks).
    pub trace: TraceId,
    /// The operation name (`MPI_Send`, `MPI_Allreduce`, …).
    pub name: String,
    /// The vector clock *after* the operation.
    pub vc: VectorClock,
}

/// The happens-before log of one execution.
#[derive(Debug, Clone, Default)]
pub struct HbLog {
    /// Events in global-lock order (a valid linearization).
    pub events: Vec<HbEvent>,
}

impl HbLog {
    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Does event `a` happen before event `b` (indices into `events`)?
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        self.events[a].vc.happens_before(&self.events[b].vc)
    }

    /// Are two events causally unordered?
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        self.events[a].vc.concurrent(&self.events[b].vc)
    }

    /// The last event of each rank, in rank order.
    pub fn last_event_per_rank(&self) -> Vec<Option<&HbEvent>> {
        let n = self
            .events
            .iter()
            .map(|e| e.trace.process as usize + 1)
            .max()
            .unwrap_or(0);
        let mut last: Vec<Option<&HbEvent>> = vec![None; n];
        for e in &self.events {
            last[e.trace.process as usize] = Some(e);
        }
        last
    }

    /// PRODOMETER-style progress triage: ranks whose final event is
    /// causally *minimal* among the final events — nobody waits on
    /// less-progressed work than theirs, so they are the most likely
    /// origin of a stall. Returns rank IDs.
    pub fn least_progressed_ranks(&self) -> Vec<u32> {
        let last = self.last_event_per_rank();
        let finals: Vec<(u32, &HbEvent)> = last
            .iter()
            .enumerate()
            .filter_map(|(p, e)| e.map(|e| (p as u32, e)))
            .collect();
        finals
            .iter()
            .filter(|(_, e)| {
                !finals
                    .iter()
                    .any(|(_, other)| other.vc.happens_before(&e.vc))
            })
            .map(|(p, _)| *p)
            .collect()
    }

    /// OTF2-flavoured text export: one line per event with its logical
    /// (Lamport) timestamp and full vector clock.
    pub fn to_event_log(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "t={:<6} rank={:<4} {:<16} vc={}\n",
                e.vc.lamport(),
                e.trace.process,
                e.name,
                e.vc
            ));
        }
        out
    }
}

/// Export a whole execution — per-thread call/return traces merged
/// with the causal MPI stamps — as an OTF2-flavoured text event log:
/// one `ENTER`/`LEAVE` record per trace event, each carrying a logical
/// timestamp `t=<lamport>.<seq>` where the Lamport part comes from the
/// nearest preceding stamped MPI operation of that thread and `<seq>`
/// is the intra-interval sequence number. This is the paper's §VII-2
/// "converting ParLOT traces into OTF2 by logically timestamping trace
/// entries", end to end.
pub fn export_otf(set: &dt_trace::TraceSet, hb: &HbLog) -> String {
    let mut out = String::new();
    out.push_str("# OTF2-style logical event log (difftrace reproduction)\n");
    for trace in set.iter() {
        // The stamped MPI events of this thread, in order.
        let mut stamps = hb
            .events
            .iter()
            .filter(|e| e.trace == trace.id)
            .map(|e| (e.name.as_str(), e.vc.lamport()))
            .collect::<Vec<_>>()
            .into_iter();
        let mut current: u64 = 0;
        let mut seq: u32 = 0;
        let mut pending: Option<(&str, u64)> = stamps.next();
        for ev in &trace.events {
            let name = set.registry.name(ev.fn_id());
            // Advance the logical clock when this is the call event of
            // the next stamped MPI op.
            if ev.is_call() {
                if let Some((sname, t)) = pending {
                    if sname == name {
                        current = t;
                        seq = 0;
                        pending = stamps.next();
                    }
                }
            }
            let kind = if ev.is_call() { "ENTER" } else { "LEAVE" };
            out.push_str(&format!(
                "t={current}.{seq:04} loc={} {kind:<5} {name}\n",
                trace.id
            ));
            seq += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_algebra() {
        let mut a = VectorClock::zero(3);
        let mut b = VectorClock::zero(3);
        a.tick(0); // a = <1,0,0>
        b.tick(1); // b = <0,1,0>
        assert!(a.concurrent(&b));
        // b receives from a.
        b.merge(&a);
        b.tick(1); // b = <1,2,0>
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert!(a.leq(&b));
        assert_eq!(b.lamport(), 2);
        assert_eq!(b.to_string(), "⟨1,2,0⟩");
    }

    #[test]
    fn log_queries() {
        let ev = |p: u32, vc: Vec<u64>| HbEvent {
            trace: TraceId::master(p),
            name: "MPI_Send".to_string(),
            vc: VectorClock(vc),
        };
        let log = HbLog {
            events: vec![
                ev(0, vec![1, 0]),
                ev(1, vec![1, 1]), // saw rank 0's event
                ev(0, vec![2, 0]), // concurrent with rank 1's
            ],
        };
        assert!(log.happens_before(0, 1));
        assert!(!log.happens_before(1, 0));
        assert!(log.concurrent(1, 2));
        let last = log.last_event_per_rank();
        assert_eq!(last[0].unwrap().vc.0, vec![2, 0]);
        assert_eq!(last[1].unwrap().vc.0, vec![1, 1]);
        // Both final events are concurrent → both ranks are minimal.
        assert_eq!(log.least_progressed_ranks(), vec![0, 1]);
        assert!(log.to_event_log().contains("rank=0"));
    }

    #[test]
    fn least_progressed_identifies_laggard() {
        let ev = |p: u32, vc: Vec<u64>| HbEvent {
            trace: TraceId::master(p),
            name: "x".to_string(),
            vc: VectorClock(vc),
        };
        // Rank 0 stopped early; ranks 1,2 both saw its last event.
        let log = HbLog {
            events: vec![
                ev(0, vec![1, 0, 0]),
                ev(1, vec![1, 3, 0]),
                ev(2, vec![1, 0, 4]),
            ],
        };
        assert_eq!(log.least_progressed_ranks(), vec![0]);
    }
}
