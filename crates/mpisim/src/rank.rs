//! The per-rank MPI API, instrumented through `dt-trace`.
//!
//! Every operation records its call event before acting and its return
//! event only on success; on abort the tracer is poisoned so the trace
//! ends with the call that never returned — the paper's hang signature.

use crate::collective::{CollKind, CollSignature, ReduceOp};
use crate::error::MpiError;
use crate::hb::HbOp;
use crate::omp::{self, OmpCtx};
use crate::world::{
    arrive_collective, take_collective, take_pending_send, Msg, PendingSend, PostedRecv, World,
};
use dt_trace::{FnId, ReqMarker, TraceCollector, TraceId, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A nonblocking-operation handle (`MPI_Request`).
#[derive(Debug)]
pub enum Request {
    /// Already complete (eager send).
    Done {
        /// Rank-local request serial (teardown-witness bookkeeping).
        serial: u64,
    },
    /// A rendezvous send awaiting its match.
    Send {
        /// Rank-local request serial (teardown-witness bookkeeping).
        serial: u64,
        /// Pending-send ID in the world state.
        id: u64,
        /// Destination rank (for blocked-operation reporting).
        dst: u32,
        /// Message tag.
        tag: i32,
    },
    /// A posted receive; completed inside [`Rank::wait`].
    Recv {
        /// Rank-local request serial (teardown-witness bookkeeping).
        serial: u64,
        /// Posted-receive ID in the world state.
        id: u64,
        /// Source rank.
        src: u32,
        /// Message tag.
        tag: i32,
    },
}

impl Request {
    /// The rank-local serial every request carries.
    fn serial(&self) -> u64 {
        match *self {
            Request::Done { serial }
            | Request::Send { serial, .. }
            | Request::Recv { serial, .. } => serial,
        }
    }

    /// The world-state entry ID, for requests that parked one.
    fn world_id(&self) -> Option<u64> {
        match *self {
            Request::Done { .. } => None,
            Request::Send { id, .. } | Request::Recv { id, .. } => Some(id),
        }
    }
}

/// Handle through which one simulated MPI rank performs communication.
///
/// Owned by (and confined to) the rank's master thread — it is the
/// thread labelled `p.0` in traces.
pub struct Rank {
    world: Arc<World>,
    rank: u32,
    tracer: Tracer,
    collector: Arc<TraceCollector>,
    coll_seq: Cell<u64>,
    req_serial: Cell<u64>,
    /// serial → origin label (`MPI_Isend:dst=1,tag=7`) for requests not
    /// yet completed by [`Rank::wait`]; whatever remains at teardown is
    /// exported as `mpi_req_pending@…` witnesses under request
    /// tracking.
    outstanding: RefCell<BTreeMap<u64, String>>,
}

impl Rank {
    /// Internal constructor used by the runtime.
    pub(crate) fn new(world: Arc<World>, rank: u32, collector: Arc<TraceCollector>) -> Rank {
        let tracer = collector.tracer(TraceId::master(rank));
        Rank {
            world,
            rank,
            tracer,
            collector,
            coll_seq: Cell::new(0),
            req_serial: Cell::new(0),
            outstanding: RefCell::new(BTreeMap::new()),
        }
    }

    fn next_request_serial(&self) -> u64 {
        let s = self.req_serial.get();
        self.req_serial.set(s + 1);
        s
    }

    /// Remember a posted request's origin until `MPI_Wait` consumes it
    /// (request tracking only — the table feeds teardown witnesses).
    fn track_request(&self, serial: u64, origin: String) {
        if self.world.record_requests {
            self.outstanding.borrow_mut().insert(serial, origin);
        }
    }

    /// Emit one `mpi_req_pending@<origin>` leaf per request posted but
    /// never completed by [`Rank::wait`]. Called by the runtime at rank
    /// teardown; a poisoned (aborted) tracer suppresses the leaves, so
    /// witnesses name only requests a cleanly-finished rank forgot.
    pub(crate) fn export_pending_requests(&self) {
        if !self.world.record_requests {
            return;
        }
        for origin in self.outstanding.borrow().values() {
            self.tracer
                .leaf(&ReqMarker::Pending(origin.clone()).marker_name());
        }
    }

    /// This rank's ID (untraced accessor).
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// World size (untraced accessor).
    pub fn size(&self) -> u32 {
        self.world.size
    }

    /// The rank's tracer, for instrumenting user code.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared world (used by workloads for abort polling).
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Record MPI-internal library leaf calls when the world runs in
    /// "all images" mode (ParLOT tracing library code too). Emitted
    /// nested inside the public MPI call, as Pin would observe them.
    fn internals(&self, names: &[&str]) {
        if self.world.trace_internals {
            for n in names {
                self.tracer.leaf(n);
            }
        }
    }

    fn traced<R>(
        &self,
        name: &str,
        f: impl FnOnce() -> Result<R, MpiError>,
    ) -> Result<R, MpiError> {
        let fid: FnId = self.tracer.intern(name);
        self.tracer.call(fid);
        match f() {
            Ok(r) => {
                self.tracer.ret(fid);
                Ok(r)
            }
            Err(e) => {
                // The op never returned: freeze the trace mid-call.
                self.tracer.poison();
                Err(e)
            }
        }
    }

    /// `MPI_Init`.
    pub fn init(&self) -> Result<(), MpiError> {
        self.traced("MPI_Init", || {
            self.world.mutate(|st| {
                st.stamp(self.rank, "MPI_Init");
            })
        })
    }

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&self) -> Result<u32, MpiError> {
        self.traced("MPI_Comm_rank", || Ok(self.rank))
    }

    /// `MPI_Comm_size`.
    pub fn comm_size(&self) -> Result<u32, MpiError> {
        self.traced("MPI_Comm_size", || Ok(self.world.size))
    }

    /// `MPI_Finalize`. No synchronization (matching the common MPICH
    /// behaviour for single-communicator programs).
    pub fn finalize(&self) -> Result<(), MpiError> {
        self.traced("MPI_Finalize", || {
            self.world.mutate(|st| {
                st.stamp(self.rank, "MPI_Finalize");
            })
        })
    }

    /// `MPI_Send`: eager when `data` fits in the eager limit, otherwise
    /// rendezvous (blocks until the matching receive).
    pub fn send(&self, dst: u32, tag: i32, data: &[i64]) -> Result<(), MpiError> {
        if dst >= self.world.size {
            return Err(MpiError::InvalidRank(dst));
        }
        self.traced("MPI_Send", || {
            let bytes = std::mem::size_of_val(data);
            if bytes <= self.world.eager_limit {
                self.internals(&["MPIDI_CH3_EagerContigSend", "MPIDI_memcpy", "tcp_sendmsg"]);
                let op = HbOp::Send {
                    dst,
                    tag,
                    rendezvous: false,
                };
                self.world.mutate(|st| {
                    let vc = st.stamp_op(self.rank, "MPI_Send", op);
                    if World::try_deliver_posted(st, self.rank, dst, tag, data, &vc) {
                        return;
                    }
                    st.mailbox
                        .entry((self.rank, dst, tag))
                        .or_default()
                        .push_back(Msg {
                            data: data.to_vec(),
                            vc,
                        });
                })
            } else {
                // Rendezvous: a posted receive completes the send at
                // once; otherwise park the payload and wait until a
                // receive takes it.
                self.internals(&["MPIDI_CH3_RndvSend", "tcp_sendmsg", "sched_yield"]);
                let op = HbOp::Send {
                    dst,
                    tag,
                    rendezvous: true,
                };
                let id = self.world.mutate(|st| {
                    let vc = st.stamp_op(self.rank, "MPI_Send", op);
                    if World::try_deliver_posted(st, self.rank, dst, tag, data, &vc) {
                        return None;
                    }
                    let id = World::next_send_id(st);
                    st.pending_sends.push(PendingSend {
                        id,
                        src: self.rank,
                        dst,
                        tag,
                        data: data.to_vec(),
                        vc,
                    });
                    Some(id)
                })?;
                let Some(id) = id else {
                    return Ok(()); // delivered into a posted receive
                };
                // Complete when the receiver has consumed the entry.
                self.world.block_on(self.rank, "MPI_Send", op, move |st| {
                    st.pending_sends.iter().all(|p| p.id != id).then_some(())
                })
            }
        })
    }

    /// `MPI_Recv` from `src` with `tag` (no wildcards — the workloads
    /// never need them).
    pub fn recv(&self, src: u32, tag: i32) -> Result<Vec<i64>, MpiError> {
        if src >= self.world.size {
            return Err(MpiError::InvalidRank(src));
        }
        let me = self.rank;
        self.traced("MPI_Recv", || {
            self.internals(&[
                "MPIDI_CH3U_Recvq_FDU_or_AEP",
                "poll_progress",
                "MPIDI_memcpy",
            ]);
            let op = HbOp::Recv {
                src: Some(src),
                tag,
            };
            self.world.block_on(me, "MPI_Recv", op, move |st| {
                // Eagerly buffered message first …
                if let Some(q) = st.mailbox.get_mut(&(src, me, tag)) {
                    if let Some(msg) = q.pop_front() {
                        st.stamp_recv_op(me, "MPI_Recv", op, &msg.vc);
                        return Some(msg.data);
                    }
                }
                // … then a parked rendezvous send.
                let (data, vc) = take_pending_send(st, src, me, tag)?;
                st.stamp_recv_op(me, "MPI_Recv", op, &vc);
                Some(data)
            })
        })
    }

    /// `MPI_Recv` with `MPI_ANY_SOURCE`: receive a message with `tag`
    /// from whichever rank sent one. Returns `(source, payload)`.
    /// Deterministic among simultaneously-available messages (lowest
    /// source rank wins).
    pub fn recv_any(&self, tag: i32) -> Result<(u32, Vec<i64>), MpiError> {
        let me = self.rank;
        self.traced("MPI_Recv", || {
            let wildcard = HbOp::Recv { src: None, tag };
            self.world.block_on(me, "MPI_Recv", wildcard, move |st| {
                // Lowest-source eager message …
                let mut best: Option<u32> = None;
                for (&(src, dst, t), q) in st.mailbox.iter() {
                    if dst == me && t == tag && !q.is_empty() {
                        best = Some(best.map_or(src, |b| b.min(src)));
                    }
                }
                // … or lowest-source parked rendezvous send.
                for p in st.pending_sends.iter() {
                    if p.dst == me && p.tag == tag {
                        best = Some(best.map_or(p.src, |b| b.min(p.src)));
                    }
                }
                let src = best?;
                let matched = HbOp::Recv {
                    src: Some(src),
                    tag,
                };
                if let Some(q) = st.mailbox.get_mut(&(src, me, tag)) {
                    if let Some(msg) = q.pop_front() {
                        st.stamp_recv_op(me, "MPI_Recv", matched, &msg.vc);
                        return Some((src, msg.data));
                    }
                }
                let (data, vc) = take_pending_send(st, src, me, tag)?;
                st.stamp_recv_op(me, "MPI_Recv", matched, &vc);
                Some((src, data))
            })
        })
    }

    /// `MPI_Isend`: starts a send and returns a [`Request`]. In the
    /// simulated runtime the payload is parked immediately; completion
    /// (buffer reuse) is deferred to [`Rank::wait`] for above-eager
    /// messages, mirroring real nonblocking semantics.
    pub fn isend(&self, dst: u32, tag: i32, data: &[i64]) -> Result<Request, MpiError> {
        if dst >= self.world.size {
            return Err(MpiError::InvalidRank(dst));
        }
        let serial = self.next_request_serial();
        let req = self.traced("MPI_Isend", || {
            let bytes = std::mem::size_of_val(data);
            if bytes <= self.world.eager_limit {
                let op = HbOp::Send {
                    dst,
                    tag,
                    rendezvous: false,
                };
                self.world.mutate(|st| {
                    let vc = st.stamp_op(self.rank, "MPI_Isend", op);
                    if World::try_deliver_posted(st, self.rank, dst, tag, data, &vc) {
                        return;
                    }
                    st.mailbox
                        .entry((self.rank, dst, tag))
                        .or_default()
                        .push_back(Msg {
                            data: data.to_vec(),
                            vc,
                        });
                })?;
                Ok(Request::Done { serial })
            } else {
                let op = HbOp::Send {
                    dst,
                    tag,
                    rendezvous: true,
                };
                let id = self.world.mutate(|st| {
                    let vc = st.stamp_op(self.rank, "MPI_Isend", op);
                    if World::try_deliver_posted(st, self.rank, dst, tag, data, &vc) {
                        return None;
                    }
                    let id = World::next_send_id(st);
                    st.pending_sends.push(PendingSend {
                        id,
                        src: self.rank,
                        dst,
                        tag,
                        data: data.to_vec(),
                        vc,
                    });
                    Some(id)
                })?;
                Ok(match id {
                    Some(id) => Request::Send {
                        serial,
                        id,
                        dst,
                        tag,
                    },
                    None => Request::Done { serial },
                })
            }
        })?;
        self.track_request(serial, format!("MPI_Isend:dst={dst},tag={tag}"));
        Ok(req)
    }

    /// `MPI_Irecv`: posts a receive that senders can complete
    /// immediately (the progress-engine behaviour that makes the
    /// post-receive-then-send idiom deadlock-free).
    pub fn irecv(&self, src: u32, tag: i32) -> Result<Request, MpiError> {
        if src >= self.world.size {
            return Err(MpiError::InvalidRank(src));
        }
        let me = self.rank;
        let serial = self.next_request_serial();
        let req = self.traced("MPI_Irecv", || {
            let id = self.world.mutate(|st| {
                let id = World::next_send_id(st);
                st.posted_recvs.push(PostedRecv {
                    id,
                    src,
                    dst: me,
                    tag,
                    msg: None,
                });
                id
            })?;
            Ok(Request::Recv {
                serial,
                id,
                src,
                tag,
            })
        })?;
        self.track_request(serial, format!("MPI_Irecv:src={src},tag={tag}"));
        Ok(req)
    }

    /// `MPI_Wait`: completes a request. Returns the received payload
    /// for receive requests, `None` for sends.
    ///
    /// Takes the request by value: like MPI's `MPI_Wait`, completing a
    /// request invalidates the handle, and consuming it makes double
    /// waits unrepresentable.
    #[allow(clippy::needless_pass_by_value)]
    pub fn wait(&self, req: Request) -> Result<Option<Vec<i64>>, MpiError> {
        let me = self.rank;
        self.internals(&["MPID_Progress_wait", "poll_progress"]);
        let serial = req.serial();
        let world_id = req.world_id();
        let out = self.traced("MPI_Wait", || match req {
            Request::Done { .. } => Ok(None),
            Request::Send { id, dst, tag, .. } => {
                let op = HbOp::Send {
                    dst,
                    tag,
                    rendezvous: true,
                };
                self.world
                    .block_on(me, "MPI_Wait", op, move |st| {
                        st.pending_sends.iter().all(|p| p.id != id).then_some(())
                    })
                    .map(|()| None)
            }
            Request::Recv { id, src, tag, .. } => {
                let op = HbOp::Recv {
                    src: Some(src),
                    tag,
                };
                self.world
                    .block_on(me, "MPI_Wait", op, move |st| {
                        // A sender may have filled the posted slot …
                        let pos = st.posted_recvs.iter().position(|p| p.id == id)?;
                        if let Some(msg) = st.posted_recvs[pos].msg.take() {
                            st.posted_recvs.swap_remove(pos);
                            st.stamp_recv_op(me, "MPI_Wait", op, &msg.vc);
                            return Some(msg.data);
                        }
                        // … or the message arrived before the post and sits
                        // in the mailbox / as a parked rendezvous send.
                        if let Some(q) = st.mailbox.get_mut(&(src, me, tag)) {
                            if let Some(msg) = q.pop_front() {
                                st.posted_recvs.swap_remove(pos);
                                st.stamp_recv_op(me, "MPI_Wait", op, &msg.vc);
                                return Some(msg.data);
                            }
                        }
                        let (data, vc) = take_pending_send(st, src, me, tag)?;
                        st.posted_recvs.swap_remove(pos);
                        st.stamp_recv_op(me, "MPI_Wait", op, &vc);
                        Some(data)
                    })
                    .map(Some)
            }
        });
        // MPI_Wait consumes the handle whether it completed or was
        // aborted: drop the teardown witness, and on abort also retract
        // the world-state entry so one injected fault cannot strand a
        // posted receive / parked send that would swallow a surviving
        // rank's message.
        self.outstanding.borrow_mut().remove(&serial);
        if out.is_err() {
            if let Some(id) = world_id {
                self.world.forget_request(id);
            }
        }
        out
    }

    fn next_slot(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    fn collective(
        &self,
        name: &str,
        sig: CollSignature,
        op: Option<ReduceOp>,
        payload: Option<Vec<i64>>,
    ) -> Result<Vec<i64>, MpiError> {
        let slot = self.next_slot();
        let me = self.rank;
        let size = self.world.size as usize;
        self.traced(name, || {
            // The argument signature the rank is arriving with, as a
            // leaf marker nested inside the collective call (reqcheck's
            // RQ003 evidence).
            if self.world.record_requests {
                let marker =
                    ReqMarker::coll_sig(name, sig.count, sig.root, op.map(ReduceOp::marker_name));
                self.tracer.leaf(&marker.marker_name());
            }
            // e.g. MPI_Allreduce → MPIR_Allreduce_intra.
            if self.world.trace_internals {
                let inner = format!("MPIR_{}_intra", name.trim_start_matches("MPI_"));
                self.tracer.leaf(&inner);
                self.internals(&["tcp_sendmsg", "tcp_recvmsg", "poll_progress"]);
            }
            let hb_op = HbOp::Collective { slot };
            self.world.mutate(|st| {
                st.stamp_op(me, name, hb_op);
                arrive_collective(st, size, slot, me, sig, op, payload);
            })?;
            self.world
                .block_on(me, name, hb_op, move |st| take_collective(st, slot, me))
        })
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) -> Result<(), MpiError> {
        let sig = CollSignature {
            kind: CollKind::Barrier,
            count: 0,
            root: None,
        };
        self.collective("MPI_Barrier", sig, None, None).map(|_| ())
    }

    /// `MPI_Allreduce` of `data` under `op`.
    pub fn allreduce(&self, data: &[i64], op: ReduceOp) -> Result<Vec<i64>, MpiError> {
        self.allreduce_with_count(data, op, data.len())
    }

    /// `MPI_Allreduce` with an explicit signature count — the fault
    /// injection hook for the paper's "wrong collective size" bug
    /// (§IV-C): a rank advertising a different count can never match.
    pub fn allreduce_with_count(
        &self,
        data: &[i64],
        op: ReduceOp,
        count: usize,
    ) -> Result<Vec<i64>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Allreduce,
            count,
            root: None,
        };
        self.collective("MPI_Allreduce", sig, Some(op), Some(data.to_vec()))
    }

    /// `MPI_Reduce` to `root`; non-roots receive `None`.
    pub fn reduce(
        &self,
        data: &[i64],
        op: ReduceOp,
        root: u32,
    ) -> Result<Option<Vec<i64>>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Reduce,
            count: data.len(),
            root: Some(root),
        };
        let r = self.collective("MPI_Reduce", sig, Some(op), Some(data.to_vec()))?;
        Ok(if self.rank == root { Some(r) } else { None })
    }

    /// `MPI_Bcast`: `root` supplies `data` (of length `count`), all
    /// ranks receive the root's payload.
    pub fn bcast(&self, data: &[i64], count: usize, root: u32) -> Result<Vec<i64>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Bcast,
            count,
            root: Some(root),
        };
        let payload = if self.rank == root {
            Some(data.to_vec())
        } else {
            None
        };
        self.collective("MPI_Bcast", sig, None, payload)
    }

    /// `MPI_Allgather`: every rank contributes `data`; everyone receives
    /// the concatenation in rank order.
    pub fn allgather(&self, data: &[i64]) -> Result<Vec<i64>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Allgather,
            count: data.len(),
            root: None,
        };
        self.collective("MPI_Allgather", sig, None, Some(data.to_vec()))
    }

    /// `MPI_Gather` to `root`: root receives the rank-ordered
    /// concatenation, non-roots receive `None`.
    pub fn gather(&self, data: &[i64], root: u32) -> Result<Option<Vec<i64>>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Gather,
            count: data.len(),
            root: Some(root),
        };
        let r = self.collective("MPI_Gather", sig, None, Some(data.to_vec()))?;
        Ok(if self.rank == root { Some(r) } else { None })
    }

    /// `MPI_Scatter` from `root`: root supplies `world_size × chunk`
    /// elements; every rank receives its own `chunk`-sized slice.
    pub fn scatter(&self, data: &[i64], chunk: usize, root: u32) -> Result<Vec<i64>, MpiError> {
        let sig = CollSignature {
            kind: CollKind::Scatter,
            count: chunk,
            root: Some(root),
        };
        let payload = if self.rank == root {
            assert_eq!(
                data.len(),
                chunk * self.world.size as usize,
                "scatter root must supply world_size × chunk elements"
            );
            Some(data.to_vec())
        } else {
            None
        };
        let full = self.collective("MPI_Scatter", sig, None, payload)?;
        let start = self.rank as usize * chunk;
        Ok(full[start..start + chunk].to_vec())
    }

    /// `MPI_Sendrecv`: simultaneous send to `dst` and receive from
    /// `src` — deadlock-free pairwise exchange (internally a posted
    /// receive followed by the send).
    pub fn sendrecv(
        &self,
        dst: u32,
        send_tag: i32,
        data: &[i64],
        src: u32,
        recv_tag: i32,
    ) -> Result<Vec<i64>, MpiError> {
        if dst >= self.world.size {
            return Err(MpiError::InvalidRank(dst));
        }
        if src >= self.world.size {
            return Err(MpiError::InvalidRank(src));
        }
        let me = self.rank;
        self.traced("MPI_Sendrecv", || {
            // Post the receive, then send (posted-receive delivery makes
            // the send complete even above the eager limit).
            let send_op = HbOp::Send {
                dst,
                tag: send_tag,
                rendezvous: false,
            };
            let recv_op = HbOp::Recv {
                src: Some(src),
                tag: recv_tag,
            };
            let id = self.world.mutate(|st| {
                let vc = st.stamp_op(me, "MPI_Sendrecv", send_op);
                let id = World::next_send_id(st);
                st.posted_recvs.push(PostedRecv {
                    id,
                    src,
                    dst: me,
                    tag: recv_tag,
                    msg: None,
                });
                if !World::try_deliver_posted(st, me, dst, send_tag, data, &vc) {
                    let sid = World::next_send_id(st);
                    st.pending_sends.push(PendingSend {
                        id: sid,
                        src: me,
                        dst,
                        tag: send_tag,
                        data: data.to_vec(),
                        vc,
                    });
                }
                id
            })?;
            // Complete the receive (the send side is buffered; its
            // parked payload is consumed by the peer's posted receive
            // or a later explicit receive).
            self.world.block_on(me, "MPI_Sendrecv", recv_op, move |st| {
                let pos = st.posted_recvs.iter().position(|p| p.id == id)?;
                if let Some(msg) = st.posted_recvs[pos].msg.take() {
                    st.posted_recvs.swap_remove(pos);
                    st.stamp_recv_op(me, "MPI_Sendrecv", recv_op, &msg.vc);
                    return Some(msg.data);
                }
                if let Some(q) = st.mailbox.get_mut(&(src, me, recv_tag)) {
                    if let Some(msg) = q.pop_front() {
                        st.posted_recvs.swap_remove(pos);
                        st.stamp_recv_op(me, "MPI_Sendrecv", recv_op, &msg.vc);
                        return Some(msg.data);
                    }
                }
                let (data, vc) = take_pending_send(st, src, me, recv_tag)?;
                st.posted_recvs.swap_remove(pos);
                st.stamp_recv_op(me, "MPI_Sendrecv", recv_op, &vc);
                Some(data)
            })
        })
    }

    /// Open an OpenMP-style parallel region with `num_threads` total
    /// threads (this thread participates as thread 0; workers get
    /// thread IDs `1..num_threads` and their own tracers). Traced as
    /// `GOMP_parallel_start` / `GOMP_parallel_end`.
    pub fn omp_parallel<F>(&self, num_threads: u32, body: F)
    where
        F: Fn(&OmpCtx) + Send + Sync,
    {
        omp::parallel_region(
            &self.world,
            &self.collector,
            &self.tracer,
            self.rank,
            num_threads,
            &body,
            &body,
        );
    }

    /// Master/worker variant of [`Rank::omp_parallel`]: thread 0 runs
    /// `master` (which may capture this `Rank` and issue MPI calls —
    /// the ILCS Listing 1 shape), the other threads run `worker`.
    pub fn omp_parallel_mw<M, W>(&self, num_threads: u32, master: M, worker: W)
    where
        M: FnOnce(&OmpCtx),
        W: Fn(&OmpCtx) + Send + Sync,
    {
        omp::parallel_region(
            &self.world,
            &self.collector,
            &self.tracer,
            self.rank,
            num_threads,
            master,
            worker,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use crate::AbortReason;
    use dt_trace::FunctionRegistry;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    #[test]
    fn ring_send_recv() {
        let out = run(SimConfig::new(4), registry(), |rank| {
            rank.init()?;
            let r = rank.comm_rank()?;
            let n = rank.comm_size()?;
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            rank.send(next, 0, &[i64::from(r)])?;
            let got = rank.recv(prev, 0)?;
            assert_eq!(got, vec![i64::from(prev)]);
            rank.finalize()
        });
        assert!(!out.deadlocked);
        assert!(out.errors.is_empty());
        // Trace shape: Init, Comm_rank, Comm_size, Send, Recv, Finalize
        // (calls+returns = 12 events).
        for t in out.traces.iter() {
            assert_eq!(t.events.len(), 12);
            assert!(!t.truncated);
        }
    }

    #[test]
    fn rendezvous_head_to_head_send_deadlocks() {
        // The §II-B trap: both ranks Send first with messages above the
        // eager limit — classic Send‖Send deadlock.
        let cfg = SimConfig::new(2).with_eager_limit(8); // one i64 fits; two do not
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            let peer = 1 - rank.rank();
            rank.send(peer, 0, &[1, 2, 3, 4])?; // 32 bytes > limit
            let _ = rank.recv(peer, 0)?;
            rank.finalize()
        });
        assert!(out.deadlocked);
        for t in out.traces.iter() {
            assert!(t.truncated);
            // Last event is the MPI_Send call that never returned.
            let last = *t.events.last().unwrap();
            assert!(last.is_call());
            assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Send");
        }
    }

    #[test]
    fn eager_buffering_avoids_the_trap() {
        // Same code, small messages: eager buffering absorbs both sends.
        let cfg = SimConfig::new(2).with_eager_limit(1024);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            let peer = 1 - rank.rank();
            rank.send(peer, 0, &[1, 2, 3, 4])?;
            let _ = rank.recv(peer, 0)?;
            rank.finalize()
        });
        assert!(!out.deadlocked);
    }

    #[test]
    fn allreduce_and_reduce_and_bcast() {
        let out = run(SimConfig::new(3), registry(), |rank| {
            rank.init()?;
            let r = i64::from(rank.rank());
            assert_eq!(rank.allreduce(&[r], ReduceOp::Sum)?, vec![3]);
            assert_eq!(rank.allreduce(&[r], ReduceOp::Max)?, vec![2]);
            let red = rank.reduce(&[r + 1], ReduceOp::Min, 0)?;
            if rank.rank() == 0 {
                assert_eq!(red, Some(vec![1]));
            } else {
                assert_eq!(red, None);
            }
            let data = if rank.rank() == 1 {
                vec![7, 8]
            } else {
                vec![0, 0]
            };
            assert_eq!(rank.bcast(&data, 2, 1)?, vec![7, 8]);
            rank.barrier()?;
            rank.finalize()
        });
        assert!(!out.deadlocked, "errors: {:?}", out.errors);
    }

    #[test]
    fn wrong_collective_size_deadlocks_and_truncates() {
        // §IV-C: rank 1 advertises the wrong count.
        let out = run(SimConfig::new(3), registry(), |rank| {
            rank.init()?;
            let r = i64::from(rank.rank());
            let count = if rank.rank() == 1 { 5 } else { 1 };
            let _ = rank.allreduce_with_count(&[r], ReduceOp::Min, count)?;
            rank.finalize()
        });
        assert!(out.deadlocked);
        for t in out.traces.iter() {
            let last = *t.events.last().unwrap();
            assert!(last.is_call());
            assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Allreduce");
        }
    }

    #[test]
    fn recv_from_nobody_deadlocks_only_that_shape() {
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let _ = rank.recv(1, 999)?; // never sent
            }
            rank.finalize()
        });
        assert!(out.deadlocked);
        let t0 = out.traces.get(TraceId::master(0)).unwrap();
        assert!(t0.truncated);
        let t1 = out.traces.get(TraceId::master(1)).unwrap();
        assert!(!t1.truncated, "rank 1 finished cleanly");
    }

    #[test]
    fn invalid_rank_is_an_error_not_a_hang() {
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                rank.send(7, 0, &[1])?;
            }
            rank.finalize()
        });
        assert!(out
            .errors
            .iter()
            .any(|(r, e)| *r == 0 && matches!(e, MpiError::InvalidRank(7))));
    }

    #[test]
    fn collectives_match_by_call_order() {
        // Two successive allreduces must not interfere.
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            let r = i64::from(rank.rank());
            assert_eq!(rank.allreduce(&[r], ReduceOp::Sum)?, vec![1]);
            assert_eq!(rank.allreduce(&[r * 10], ReduceOp::Sum)?, vec![10]);
            rank.finalize()
        });
        assert!(!out.deadlocked);
    }

    #[test]
    fn internals_mode_traces_library_calls() {
        let run_with = |internals: bool| {
            let cfg = if internals {
                SimConfig::new(2).with_internals()
            } else {
                SimConfig::new(2)
            };
            run(cfg, registry(), |rank| {
                rank.init()?;
                let peer = 1 - rank.rank();
                if rank.rank() == 0 {
                    rank.send(peer, 0, &[1])?;
                } else {
                    let _ = rank.recv(peer, 0)?;
                }
                let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
                rank.finalize()
            })
        };
        let plain = run_with(false);
        let all_images = run_with(true);
        let names = |out: &crate::RunOutcome, p: u32| -> Vec<String> {
            out.traces
                .get(TraceId::master(p))
                .unwrap()
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect()
        };
        // Main-image mode (the paper's runs): no MPIDI_/MPIR_ names.
        assert!(!names(&plain, 0)
            .iter()
            .any(|n| n.starts_with("MPIDI_") || n.starts_with("MPIR_")));
        // All-images mode: eager-send path + collective internals show.
        let v = names(&all_images, 0);
        assert!(
            v.contains(&"MPIDI_CH3_EagerContigSend".to_string()),
            "{v:?}"
        );
        assert!(v.contains(&"tcp_sendmsg".to_string()));
        assert!(v.contains(&"MPIR_Allreduce_intra".to_string()));
        let r = names(&all_images, 1);
        assert!(
            r.contains(&"MPIDI_CH3U_Recvq_FDU_or_AEP".to_string()),
            "{r:?}"
        );
        assert!(r.contains(&"poll_progress".to_string()));
    }

    #[test]
    fn recv_any_services_a_task_farm() {
        // Master/worker task farm: workers pull results in arrival
        // order via MPI_ANY_SOURCE.
        let out = run(SimConfig::new(4), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (src, data) = rank.recv_any(9)?;
                    assert_eq!(data, vec![i64::from(src) * 100]);
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3]);
            } else {
                rank.send(0, 9, &[i64::from(rank.rank()) * 100])?;
            }
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
    }

    #[test]
    fn recv_any_matches_rendezvous_sends_too() {
        let cfg = SimConfig::new(2).with_eager_limit(8);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            if rank.rank() == 1 {
                rank.send(0, 5, &[7; 32])?; // rendezvous-sized
            } else {
                let (src, data) = rank.recv_any(5)?;
                assert_eq!(src, 1);
                assert_eq!(data, vec![7; 32]);
            }
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
    }

    #[test]
    fn allgather_gather_scatter() {
        let out = run(SimConfig::new(3), registry(), |rank| {
            rank.init()?;
            let r = i64::from(rank.rank());
            assert_eq!(rank.allgather(&[r, r * 10])?, vec![0, 0, 1, 10, 2, 20]);
            let g = rank.gather(&[r + 1], 2)?;
            if rank.rank() == 2 {
                assert_eq!(g, Some(vec![1, 2, 3]));
            } else {
                assert_eq!(g, None);
            }
            let full: Vec<i64> = (0..6).collect();
            let mine = rank.scatter(&full, 2, 0)?;
            assert_eq!(mine, vec![r * 2, r * 2 + 1]);
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
    }

    #[test]
    fn sendrecv_pairwise_exchange_above_eager() {
        // The classic shift exchange that deadlocks with blocking
        // Send+Recv under low buffering — MPI_Sendrecv must survive it.
        let cfg = SimConfig::new(4).with_eager_limit(8);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            let me = rank.rank();
            let n = rank.size();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let data = vec![i64::from(me); 8]; // 64 bytes > eager limit
            let got = rank.sendrecv(next, 0, &data, prev, 0)?;
            assert_eq!(got, vec![i64::from(prev); 8]);
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
        // The trace records MPI_Sendrecv, not Send/Recv pairs.
        let t = out.traces.get(TraceId::master(0)).unwrap();
        let names: Vec<String> = t
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect();
        assert!(names.contains(&"MPI_Sendrecv".to_string()));
        assert!(!names.contains(&"MPI_Send".to_string()));
    }

    #[test]
    fn scatter_size_mismatch_hangs_like_mpi() {
        // Rank 1 advertises the wrong chunk size: signature mismatch
        // → detected deadlock, not silence.
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            let chunk = if rank.rank() == 1 { 3 } else { 2 };
            let full: Vec<i64> = (0..4).collect();
            let data = if rank.rank() == 0 { full } else { vec![0; 6] };
            let _ = rank.scatter(&data[..], chunk, 0)?;
            rank.finalize()
        });
        assert!(out.deadlocked);
    }

    #[test]
    fn nonblocking_exchange_avoids_head_to_head() {
        // The textbook fix for the §II-B trap: post irecv first, then
        // send — works even above the eager limit.
        let cfg = SimConfig::new(2).with_eager_limit(8);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            let peer = 1 - rank.rank();
            let req = rank.irecv(peer, 0)?;
            rank.send(peer, 0, &[1, 2, 3, 4])?; // 32 bytes > eager
            let got = rank.wait(req)?.expect("recv request yields data");
            assert_eq!(got, vec![1, 2, 3, 4]);
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
        // Trace shows the Isend-family names of Table I's filter row.
        let t = out.traces.get(TraceId::master(0)).unwrap();
        let names: Vec<String> = t
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect();
        assert!(names.contains(&"MPI_Irecv".to_string()));
        assert!(names.contains(&"MPI_Wait".to_string()));
    }

    #[test]
    fn isend_wait_round_trip_above_eager() {
        let cfg = SimConfig::new(2).with_eager_limit(8);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let req = rank.isend(1, 5, &[9; 16])?;
                let r = rank.wait(req)?;
                assert!(r.is_none(), "send requests carry no payload");
            } else {
                assert_eq!(rank.recv(0, 5)?, vec![9; 16]);
            }
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
    }

    #[test]
    fn eager_isend_completes_immediately() {
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let req = rank.isend(1, 0, &[7])?;
                assert!(matches!(req, crate::rank::Request::Done { .. }));
                let _ = rank.wait(req)?;
            } else {
                assert_eq!(rank.recv(0, 0)?, vec![7]);
            }
            rank.finalize()
        });
        assert!(!out.deadlocked);
    }

    #[test]
    fn request_tracking_exports_pending_and_signatures() {
        let out = run(
            SimConfig::new(2).with_request_tracking(),
            registry(),
            |rank| {
                rank.init()?;
                if rank.rank() == 0 {
                    let _leaked = rank.isend(1, 4, &[7])?; // never waited
                } else {
                    assert_eq!(rank.recv(0, 4)?, vec![7]);
                }
                let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
                rank.finalize()
            },
        );
        assert!(!out.deadlocked, "{:?}", out.errors);
        let names = |p: u32| -> Vec<String> {
            out.traces
                .get(TraceId::master(p))
                .unwrap()
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect()
        };
        let v0 = names(0);
        assert!(
            v0.contains(&"mpi_coll@MPI_Allreduce:1:-:sum".to_string()),
            "{v0:?}"
        );
        // The leak witness lands at teardown, after MPI_Finalize.
        assert_eq!(
            v0.last().map(String::as_str),
            Some("mpi_req_pending@MPI_Isend:dst=1,tag=4"),
            "{v0:?}"
        );
        let v1 = names(1);
        assert!(
            !v1.iter().any(|n| n.starts_with("mpi_req_pending@")),
            "{v1:?}"
        );
    }

    #[test]
    fn waited_requests_leave_no_pending_witness() {
        let cfg = SimConfig::new(2)
            .with_request_tracking()
            .with_eager_limit(8);
        let out = run(cfg, registry(), |rank| {
            rank.init()?;
            let peer = 1 - rank.rank();
            let req = rank.irecv(peer, 0)?;
            rank.send(peer, 0, &[1, 2, 3, 4])?;
            let _ = rank.wait(req)?;
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
        for t in out.traces.iter() {
            assert!(!t.calls().any(|e| out
                .traces
                .registry
                .name(e.fn_id())
                .starts_with("mpi_req_pending@")));
        }
    }

    #[test]
    fn default_config_emits_no_request_markers() {
        // Request tracking is opt-in: existing corpora keep their exact
        // trace shapes.
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let _ = rank.isend(1, 0, &[1])?; // even a leak is silent
            } else {
                let _ = rank.recv(0, 0)?;
            }
            rank.barrier()?;
            rank.finalize()
        });
        assert!(!out.deadlocked, "{:?}", out.errors);
        for t in out.traces.iter() {
            assert!(!t.calls().any(|e| {
                let n = out.traces.registry.name(e.fn_id());
                n.starts_with("mpi_coll@") || n.starts_with("mpi_req_pending@")
            }));
        }
    }

    #[test]
    fn aborted_wait_still_consumes_the_world_entry() {
        // One rank's MPI_Wait dies in a deadlock abort; its posted
        // receive must not linger in world state where it could swallow
        // another rank's message.
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let req = rank.irecv(1, 3)?; // never sent: wait deadlocks
                let err = rank.wait(req);
                assert!(err.is_err());
                assert!(rank.world().with_state(|st| st.posted_recvs.is_empty()));
                err.map(|_| ())
            } else {
                rank.finalize()
            }
        });
        assert!(out.deadlocked);
    }

    #[test]
    fn abort_reason_surfaces() {
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            if rank.rank() == 0 {
                let _ = rank.recv(1, 3)?;
            }
            rank.finalize()
        });
        assert!(out
            .errors
            .iter()
            .any(|(_, e)| matches!(e, MpiError::Aborted(AbortReason::Deadlock))));
    }
}
