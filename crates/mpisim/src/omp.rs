//! OpenMP-style parallel regions, critical sections, and team barriers.
//!
//! Models the GOMP runtime calls ParLOT sees when tracing an OpenMP
//! program: `GOMP_parallel_start/end`, `GOMP_critical_start/end`,
//! `GOMP_barrier`. Worker threads are real OS threads with their own
//! tracers (`TraceId { process, thread ≥ 1 }`); the encountering
//! (master) thread participates as thread 0, exactly like OpenMP.

use crate::error::{AbortReason, MpiError};
use crate::world::World;
use dt_trace::{RaceOp, TraceCollector, TraceId, Tracer};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Per-thread context inside a parallel region.
pub struct OmpCtx<'a> {
    world: Arc<World>,
    thread: u32,
    num_threads: u32,
    tracer: TracerHandle<'a>,
    barrier: Arc<TeamBarrier>,
}

enum TracerHandle<'a> {
    Borrowed(&'a Tracer),
    Owned(Tracer),
}

impl OmpCtx<'_> {
    /// `omp_get_thread_num()`.
    pub fn thread_num(&self) -> u32 {
        self.thread
    }

    /// `omp_get_num_threads()`.
    pub fn num_threads(&self) -> u32 {
        self.num_threads
    }

    /// The thread's tracer (for instrumenting user code).
    pub fn tracer(&self) -> &Tracer {
        match &self.tracer {
            TracerHandle::Borrowed(t) => t,
            TracerHandle::Owned(t) => t,
        }
    }

    /// Has the run been aborted (deadlock elsewhere / watchdog)?
    /// Worker loops poll this — the analogue of the job being killed.
    pub fn aborted(&self) -> bool {
        self.world.is_aborted()
    }

    /// Static loop scheduling (`#pragma omp for schedule(static)`):
    /// the iterations `0..n` this thread owns, as an iterator. The
    /// master (thread 0) gets no iterations when there are workers —
    /// matching the master/worker split of the paper's workloads — and
    /// everything when it is alone.
    pub fn static_iters(&self, n: u32) -> impl Iterator<Item = u32> {
        let workers = self.num_threads.saturating_sub(1);
        let (me, stride) = if workers == 0 {
            (Some(0), 1)
        } else if self.thread == 0 {
            (None, 1)
        } else {
            (Some(self.thread - 1), workers)
        };
        (0..n).filter(move |i| me.is_some_and(|m| i % stride == m))
    }

    /// `#pragma omp single`: exactly one thread of the team executes
    /// `f` per call site occurrence; the others skip it (no implicit
    /// barrier — pair with [`OmpCtx::barrier`] when needed, like
    /// `nowait`-less OpenMP). Traced as `GOMP_single_start` on the
    /// executing thread. Returns `Some(R)` on the executing thread.
    pub fn single<R>(&self, name: &str, f: impl FnOnce() -> R) -> Option<R> {
        // First-come-first-serve election through a named world slot;
        // the winner stays the executor on repeated encounters.
        if self.world.claim_single(name, self.thread) {
            let tracer = self.tracer();
            let fid = tracer.intern("GOMP_single_start");
            tracer.call(fid);
            let out = f();
            tracer.ret(fid);
            Some(out)
        } else {
            None
        }
    }

    /// Enter a named critical section for the duration of `f`.
    ///
    /// Traced as `GOMP_critical_start` (returns once the lock is held)
    /// and `GOMP_critical_end`. Named criticals are program-global, as
    /// in OpenMP.
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let tracer = self.tracer();
        let start = tracer.intern("GOMP_critical_start");
        let end = tracer.intern("GOMP_critical_end");
        let mutex = self.world.critical_mutex(name);
        tracer.call(start);
        let guard = mutex.lock();
        tracer.ret(start);
        let out = f();
        tracer.call(end);
        drop(guard);
        tracer.ret(end);
        out
    }

    /// Enter a named lock for the duration of `f`, tracing the lock's
    /// *identity*: `omp_acquire@<name>` (the call returns once the lock
    /// is held) and a paired `omp_release@<name>` call/return around
    /// the unlock. Unlike [`OmpCtx::critical`] — whose anonymous
    /// `GOMP_critical_start/end` markers existing workloads depend on —
    /// these named markers let `racecheck` reconstruct locksets and
    /// lock-acquisition order from the trace alone. Named locks are
    /// program-global, like named criticals.
    pub fn lock<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let tracer = self.tracer();
        let acquire = tracer.intern(&RaceOp::Acquire(name.to_string()).marker_name());
        let release = tracer.intern(&RaceOp::Release(name.to_string()).marker_name());
        let mutex = self.world.critical_mutex(name);
        tracer.call(acquire);
        let guard = mutex.lock();
        tracer.ret(acquire);
        let out = f();
        tracer.call(release);
        drop(guard);
        tracer.ret(release);
        out
    }

    /// Trace a read of the named shared variable (`omp_read@<name>`, a
    /// leaf call/return pair). The simulation carries no actual memory:
    /// the marker *is* the access, which is all a trace analyzer sees.
    pub fn shared_read(&self, var: &str) {
        self.tracer()
            .leaf(&RaceOp::Read(var.to_string()).marker_name());
    }

    /// Trace a write of the named shared variable (`omp_write@<name>`).
    pub fn shared_write(&self, var: &str) {
        self.tracer()
            .leaf(&RaceOp::Write(var.to_string()).marker_name());
    }

    /// Team barrier (`GOMP_barrier`). Abort-aware: if the run dies
    /// while waiting, the tracer is poisoned (trace ends at the
    /// never-returning barrier call) and `Err(Aborted)` is returned.
    pub fn barrier(&self) -> Result<(), MpiError> {
        let tracer = self.tracer();
        let fid = tracer.intern("GOMP_barrier");
        tracer.call(fid);
        match self.barrier.wait(&self.world) {
            Ok(()) => {
                tracer.ret(fid);
                Ok(())
            }
            Err(e) => {
                tracer.poison();
                Err(e)
            }
        }
    }
}

/// Generation-counted team barrier with abort polling.
struct TeamBarrier {
    lock: Mutex<BarrierState>,
    cv: Condvar,
    parties: u32,
}

struct BarrierState {
    arrived: u32,
    generation: u64,
}

impl TeamBarrier {
    fn new(parties: u32) -> Arc<TeamBarrier> {
        Arc::new(TeamBarrier {
            lock: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            parties,
        })
    }

    fn wait(&self, world: &World) -> Result<(), MpiError> {
        let mut st = self.lock.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        while st.generation == gen {
            if world.is_aborted() {
                return Err(MpiError::Aborted(AbortReason::Deadlock));
            }
            // Poll so an abort elsewhere cannot strand us.
            self.cv.wait_for(&mut st, Duration::from_millis(25));
        }
        Ok(())
    }
}

/// Run a parallel region: the calling (master) thread participates as
/// thread 0 running `master_body`; `num_threads − 1` workers are
/// spawned with their own tracers running `worker_body`. The split
/// lets the master body capture non-`Sync` state (the MPI [`crate::Rank`]
/// handle) while workers stay shareable — the shape of ILCS's
/// master/worker `omp parallel`. Called via [`crate::Rank::omp_parallel`]
/// and [`crate::Rank::omp_parallel_mw`].
pub(crate) fn parallel_region<M, W>(
    world: &Arc<World>,
    collector: &Arc<TraceCollector>,
    master_tracer: &Tracer,
    process: u32,
    num_threads: u32,
    master_body: M,
    worker_body: W,
) where
    M: FnOnce(&OmpCtx),
    W: Fn(&OmpCtx) + Send + Sync,
{
    assert!(num_threads >= 1, "a team needs at least the master");
    let start = master_tracer.intern("GOMP_parallel_start");
    let end = master_tracer.intern("GOMP_parallel_end");
    master_tracer.call(start);
    master_tracer.ret(start);

    let barrier = TeamBarrier::new(num_threads);
    std::thread::scope(|s| {
        for t in 1..num_threads {
            let body = &worker_body;
            let world = Arc::clone(world);
            let barrier = Arc::clone(&barrier);
            let tracer = collector.tracer(TraceId::new(process, t));
            s.spawn(move || {
                let ctx = OmpCtx {
                    world,
                    thread: t,
                    num_threads,
                    tracer: TracerHandle::Owned(tracer),
                    barrier,
                };
                body(&ctx);
                // Tracer submits on drop.
            });
        }
        let ctx = OmpCtx {
            world: Arc::clone(world),
            thread: 0,
            num_threads,
            tracer: TracerHandle::Borrowed(master_tracer),
            barrier,
        };
        master_body(&ctx);
    });

    master_tracer.call(end);
    master_tracer.ret(end);
}

#[cfg(test)]
mod tests {
    use crate::runtime::{run, SimConfig};
    use dt_trace::{FunctionRegistry, TraceId};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    #[test]
    fn workers_get_their_own_traces() {
        let out = run(SimConfig::new(2), registry(), |rank| {
            rank.init()?;
            rank.omp_parallel(4, |omp| {
                omp.tracer().leaf(&format!("work_{}", omp.thread_num()));
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        // 2 processes × 4 threads = 8 traces.
        assert_eq!(out.traces.len(), 8);
        let t = out.traces.get(TraceId::new(1, 3)).unwrap();
        let names: Vec<String> = t
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect();
        assert_eq!(names, vec!["work_3"]);
    }

    #[test]
    fn master_trace_brackets_the_region() {
        let out = run(SimConfig::new(1), registry(), |rank| {
            rank.init()?;
            rank.omp_parallel(2, |_| {});
            rank.finalize()
        });
        let t = out.traces.get(TraceId::master(0)).unwrap();
        let names: Vec<String> = t
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect();
        assert_eq!(
            names,
            vec![
                "MPI_Init",
                "GOMP_parallel_start",
                "GOMP_parallel_end",
                "MPI_Finalize"
            ]
        );
    }

    #[test]
    fn critical_sections_exclude_and_trace() {
        let hits = Arc::new(Mutex::new(Vec::new()));
        let hits2 = hits.clone();
        let out = run(SimConfig::new(1), registry(), move |rank| {
            rank.init()?;
            let hits = hits2.clone();
            rank.omp_parallel(4, move |omp| {
                for _ in 0..50 {
                    omp.critical("champ", || {
                        hits.lock().push(omp.thread_num());
                    });
                }
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        assert_eq!(hits.lock().len(), 200);
        // Every thread's trace contains the critical markers.
        for th in 0..4u32 {
            let t = out.traces.get(TraceId::new(0, th)).unwrap();
            let names: Vec<String> = t
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect();
            assert_eq!(
                names.iter().filter(|n| *n == "GOMP_critical_start").count(),
                50,
                "thread {th}"
            );
            assert_eq!(
                names.iter().filter(|n| *n == "GOMP_critical_end").count(),
                50
            );
        }
    }

    #[test]
    fn named_locks_and_shared_accesses_trace_their_identity() {
        let out = run(SimConfig::new(1), registry(), |rank| {
            rank.init()?;
            rank.omp_parallel(2, |omp| {
                for _ in 0..3 {
                    omp.lock("counter_lock", || {
                        omp.shared_read("counter");
                        omp.shared_write("counter");
                    });
                }
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        for th in 0..2u32 {
            let t = out.traces.get(TraceId::new(0, th)).unwrap();
            let names: Vec<String> = t
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect();
            let count = |n: &str| names.iter().filter(|x| *x == n).count();
            assert_eq!(count("omp_acquire@counter_lock"), 3, "thread {th}");
            assert_eq!(count("omp_release@counter_lock"), 3, "thread {th}");
            assert_eq!(count("omp_read@counter"), 3, "thread {th}");
            assert_eq!(count("omp_write@counter"), 3, "thread {th}");
            // The accesses sit between acquire and release.
            let first_acq = names
                .iter()
                .position(|n| n.starts_with("omp_acquire"))
                .unwrap();
            let first_read = names
                .iter()
                .position(|n| n.starts_with("omp_read"))
                .unwrap();
            assert!(first_acq < first_read, "thread {th}: {names:?}");
        }
    }

    #[test]
    fn single_executes_on_exactly_one_thread() {
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h2 = hits.clone();
        let out = run(SimConfig::new(1), registry(), move |rank| {
            rank.init()?;
            let h = h2.clone();
            rank.omp_parallel(4, move |omp| {
                for round in 0..3 {
                    if let Some(()) = omp.single("init_round", || {
                        h.lock().push((round, omp.thread_num()));
                    }) {
                        // executed here
                    }
                    omp.barrier().unwrap();
                }
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        let v = hits.lock();
        // One execution per encounter, all by the same winner thread.
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].0, 0);
        assert!(v.iter().all(|&(_, t)| t == v[0].1));
        // The winner's trace carries the GOMP_single_start marker.
        let t = out.traces.get(TraceId::new(0, v[0].1)).unwrap();
        let count = t
            .calls()
            .filter(|e| out.traces.registry.name(e.fn_id()) == "GOMP_single_start")
            .count();
        assert_eq!(count, 3);
    }

    #[test]
    fn static_iters_partition_without_overlap() {
        let hits = Arc::new(Mutex::new(vec![0u32; 20]));
        let h2 = hits.clone();
        let out = run(SimConfig::new(1), registry(), move |rank| {
            rank.init()?;
            let h = h2.clone();
            rank.omp_parallel(4, move |omp| {
                for i in omp.static_iters(20) {
                    h.lock()[i as usize] += 1;
                }
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        // Every iteration executed exactly once (workers partition;
        // the master stays out when workers exist).
        assert!(hits.lock().iter().all(|&c| c == 1), "{:?}", hits.lock());
    }

    #[test]
    fn static_iters_master_alone_gets_everything() {
        let hits = Arc::new(Mutex::new(0u32));
        let h2 = hits.clone();
        let out = run(SimConfig::new(1), registry(), move |rank| {
            rank.init()?;
            let h = h2.clone();
            rank.omp_parallel(1, move |omp| {
                for _ in omp.static_iters(7) {
                    *h.lock() += 1;
                }
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
        assert_eq!(*hits.lock(), 7);
    }

    #[test]
    fn team_barrier_synchronizes() {
        let out = run(SimConfig::new(1), registry(), |rank| {
            rank.init()?;
            let phase = Arc::new(Mutex::new(vec![0u32; 3]));
            let p2 = phase.clone();
            rank.omp_parallel(3, move |omp| {
                p2.lock()[omp.thread_num() as usize] = 1;
                omp.barrier().unwrap();
                // After the barrier every thread must observe phase 1
                // everywhere.
                assert!(p2.lock().iter().all(|&x| x == 1));
            });
            rank.finalize()
        });
        assert!(!out.deadlocked);
    }
}
