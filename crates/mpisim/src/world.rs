//! The shared simulation world: message matching, collectives,
//! blocking, and the quiescence deadlock detector.

use crate::collective::{CollInstance, CollSignature};
use crate::error::{AbortReason, MpiError};
use crate::hb::{HbLog, HbOp, VectorClock};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// An in-flight message: payload plus the sender's causal stamp.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Payload.
    pub data: Vec<i64>,
    /// Sender's vector clock at send time.
    pub vc: VectorClock,
}

/// A receive posted by `MPI_Irecv`, waiting for a sender to fill it.
#[derive(Debug)]
pub struct PostedRecv {
    /// Unique ID so the receiver can find its entry in `MPI_Wait`.
    pub id: u64,
    /// Expected source rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Message tag.
    pub tag: i32,
    /// Filled by the matching send.
    pub msg: Option<Msg>,
}

/// A rendezvous send waiting for its matching receive.
#[derive(Debug)]
pub struct PendingSend {
    /// Unique ID so the sender can find its entry again.
    pub id: u64,
    /// Source rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<i64>,
    /// Sender's vector clock at send time.
    pub vc: VectorClock,
}

/// Receiver-side consumption of a parked rendezvous send: removes the
/// entry and returns its payload+stamp. The blocking sender (if any)
/// completes when it observes its entry has vanished.
pub fn take_pending_send(
    st: &mut WorldState,
    src: u32,
    dst: u32,
    tag: i32,
) -> Option<(Vec<i64>, VectorClock)> {
    let idx = st
        .pending_sends
        .iter()
        .position(|p| p.src == src && p.dst == dst && p.tag == tag)?;
    let p = st.pending_sends.swap_remove(idx);
    Some((p.data, p.vc))
}

/// Mutable world state, guarded by one global lock. The lock is
/// world-global on purpose: it makes the quiescence argument airtight
/// (a predicate is re-evaluated atomically with the blocked-count
/// bookkeeping) and the simulated scale — tens of ranks — never
/// contends enough to matter.
#[derive(Debug, Default)]
pub struct WorldState {
    /// Abort reason, once aborted.
    pub aborted: Option<AbortReason>,
    /// State-mutation counter; every change bumps it and wakes everyone.
    pub version: u64,
    /// Eagerly buffered messages: (src, dst, tag) → FIFO of messages.
    pub mailbox: HashMap<(u32, u32, i32), VecDeque<Msg>>,
    /// Rendezvous sends awaiting a matching receive.
    pub pending_sends: Vec<PendingSend>,
    /// Receives posted by `MPI_Irecv`, not yet completed.
    pub posted_recvs: Vec<PostedRecv>,
    next_send_id: u64,
    /// In-flight collectives keyed by call-order slot.
    pub collectives: HashMap<u64, CollInstance>,
    /// rank → version at which it last found its predicate false.
    blocked_at: HashMap<u32, u64>,
    /// Ranks whose body has returned (will never act again).
    pub finished: u32,
    /// The ranks that finished, for the HB export.
    pub finished_ranks: Vec<u32>,
    /// Per-rank vector clocks (causality tracking — see [`crate::hb`]).
    pub vclocks: Vec<VectorClock>,
    /// Causally-stamped event log (delta-encoded clocks).
    pub hb: HbLog,
    /// rank → the operation it is currently blocked inside (registered
    /// by [`World::block_on`]; survives an abort, which is exactly what
    /// the wait-for-graph analysis reads).
    pub waiting: HashMap<u32, (String, HbOp)>,
}

impl WorldState {
    /// Advance `rank`'s clock and log `name`; returns the new stamp.
    pub fn stamp(&mut self, rank: u32, name: &str) -> VectorClock {
        self.stamp_op(rank, name, HbOp::Local)
    }

    /// [`WorldState::stamp`] with the operation's communication shape.
    pub fn stamp_op(&mut self, rank: u32, name: &str, op: HbOp) -> VectorClock {
        self.vclocks[rank as usize].tick(rank as usize);
        let vc = self.vclocks[rank as usize].clone();
        self.hb.push(dt_trace::TraceId::master(rank), name, op, &vc);
        vc
    }

    /// Merge a received stamp into `rank`'s clock, advance it, and log.
    pub fn stamp_recv(&mut self, rank: u32, name: &str, from: &VectorClock) {
        self.stamp_recv_op(rank, name, HbOp::Local, from);
    }

    /// [`WorldState::stamp_recv`] with the operation's shape.
    pub fn stamp_recv_op(&mut self, rank: u32, name: &str, op: HbOp, from: &VectorClock) {
        self.vclocks[rank as usize].merge(from);
        self.stamp_op(rank, name, op);
    }
}

/// The shared world for one simulated execution.
#[derive(Debug)]
pub struct World {
    /// Number of ranks.
    pub size: u32,
    /// Eager/rendezvous threshold in bytes (8 bytes per `i64` element).
    pub eager_limit: usize,
    /// Trace MPI-internal library calls (ParLOT "all images" mode).
    pub trace_internals: bool,
    /// Emit request-lifecycle markers (`mpi_coll@…` collective
    /// signatures, `mpi_req_pending@…` teardown witnesses) for the
    /// `reqcheck` analysis.
    pub record_requests: bool,
    state: Mutex<WorldState>,
    cv: Condvar,
    aborted_flag: AtomicBool,
    /// Mirror of `WorldState::version` readable without the lock (the
    /// watchdog polls it).
    progress: AtomicU64,
    criticals: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// `omp single` election slots: name → winning thread.
    singles: Mutex<HashMap<String, u32>>,
}

impl World {
    /// A fresh world (internals tracing and request markers off).
    pub fn new(size: u32, eager_limit: usize) -> Arc<World> {
        World::new_full(size, eager_limit, false, false)
    }

    /// A fresh world with every knob explicit.
    pub fn new_full(
        size: u32,
        eager_limit: usize,
        trace_internals: bool,
        record_requests: bool,
    ) -> Arc<World> {
        let state = WorldState {
            vclocks: vec![VectorClock::zero(size as usize); size as usize],
            hb: HbLog::new(size as usize),
            ..WorldState::default()
        };
        Arc::new(World {
            size,
            eager_limit,
            trace_internals,
            record_requests,
            state: Mutex::new(state),
            cv: Condvar::new(),
            aborted_flag: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            criticals: Mutex::new(HashMap::new()),
            singles: Mutex::new(HashMap::new()),
        })
    }

    /// Claim the `omp single` slot `name` for `thread`; true only for
    /// the first claimer.
    pub fn claim_single(&self, name: &str, thread: u32) -> bool {
        let mut m = self.singles.lock();
        match m.entry(name.to_string()) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(thread);
                true
            }
            std::collections::hash_map::Entry::Occupied(o) => *o.get() == thread,
        }
    }

    /// Lock-free abort check (polled by OpenMP worker loops, like a
    /// worker noticing the job scheduler killed the allocation).
    pub fn is_aborted(&self) -> bool {
        self.aborted_flag.load(Ordering::Acquire)
    }

    /// Current progress version (for the watchdog).
    pub fn progress_version(&self) -> u64 {
        self.progress.load(Ordering::Acquire)
    }

    fn bump_locked(&self, st: &mut WorldState) {
        st.version += 1;
        self.progress.store(st.version, Ordering::Release);
        self.cv.notify_all();
    }

    /// Abort the run (deadlock detector / watchdog / tests).
    pub fn abort(&self, reason: AbortReason) {
        let mut st = self.state.lock();
        self.abort_locked(&mut st, reason);
    }

    fn abort_locked(&self, st: &mut WorldState, reason: AbortReason) {
        if st.aborted.is_none() {
            st.aborted = Some(reason);
            self.aborted_flag.store(true, Ordering::Release);
            self.bump_locked(st);
        }
    }

    /// Run a non-blocking state mutation (eager send, collective
    /// arrival, rank completion, …) and wake all waiters.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut WorldState) -> R) -> Result<R, MpiError> {
        let mut st = self.state.lock();
        if let Some(r) = st.aborted {
            return Err(MpiError::Aborted(r));
        }
        let out = f(&mut st);
        self.bump_locked(&mut st);
        Ok(out)
    }

    /// Block rank `rank` until `pred` yields a value.
    ///
    /// `pred` must be pure on failure; it may mutate state only when it
    /// succeeds (e.g. popping the matched message) — the mutation is
    /// published with a version bump.
    ///
    /// Quiescence detection: a rank records the state version at which
    /// its predicate last failed. If *every* live rank is blocked with
    /// an up-to-date failure record, no rank can ever make progress
    /// (predicates are functions of the state and the state can only be
    /// changed by live ranks) — global deadlock, abort.
    pub fn block_until<R>(
        &self,
        rank: u32,
        mut pred: impl FnMut(&mut WorldState) -> Option<R>,
    ) -> Result<R, MpiError> {
        let mut st = self.state.lock();
        loop {
            if let Some(r) = st.aborted {
                return Err(MpiError::Aborted(r));
            }
            if let Some(out) = pred(&mut st) {
                // Success may have consumed state (message, collective
                // slot) that other predicates observe.
                self.bump_locked(&mut st);
                return Ok(out);
            }
            let v = st.version;
            st.blocked_at.insert(rank, v);
            let alive = self.size - st.finished;
            let all_blocked_current =
                st.blocked_at.len() as u32 == alive && st.blocked_at.values().all(|&bv| bv == v);
            if all_blocked_current {
                self.abort_locked(&mut st, AbortReason::Deadlock);
                st.blocked_at.remove(&rank);
                return Err(MpiError::Aborted(AbortReason::Deadlock));
            }
            self.cv.wait(&mut st);
            st.blocked_at.remove(&rank);
        }
    }

    /// [`World::block_until`], registering what `rank` is blocked *on*
    /// in [`WorldState::waiting`]. On success the registration is
    /// removed; on abort it is left in place — that frozen snapshot of
    /// blocked operations is exactly what the wait-for-graph deadlock
    /// analysis consumes.
    pub fn block_on<R>(
        &self,
        rank: u32,
        name: &str,
        op: HbOp,
        pred: impl FnMut(&mut WorldState) -> Option<R>,
    ) -> Result<R, MpiError> {
        {
            let mut st = self.state.lock();
            st.waiting.insert(rank, (name.to_string(), op));
        }
        let out = self.block_until(rank, pred);
        if out.is_ok() {
            let mut st = self.state.lock();
            st.waiting.remove(&rank);
        }
        out
    }

    /// Allocate a rendezvous-send / posted-receive ID.
    pub fn next_send_id(st: &mut WorldState) -> u64 {
        st.next_send_id += 1;
        st.next_send_id
    }

    /// Try to deliver a message straight into a matching posted
    /// receive (the progress-engine path `MPI_Irecv` enables). Returns
    /// true when delivered.
    pub fn try_deliver_posted(
        st: &mut WorldState,
        src: u32,
        dst: u32,
        tag: i32,
        data: &[i64],
        vc: &crate::hb::VectorClock,
    ) -> bool {
        if let Some(pr) = st
            .posted_recvs
            .iter_mut()
            .find(|p| p.msg.is_none() && p.src == src && p.dst == dst && p.tag == tag)
        {
            pr.msg = Some(Msg {
                data: data.to_vec(),
                vc: vc.clone(),
            });
            true
        } else {
            false
        }
    }

    /// Mark a rank's body as returned; it no longer counts as "live"
    /// for quiescence detection.
    pub fn rank_done(&self, rank: u32) {
        // Ignore the abort error: completion bookkeeping must run even
        // after an abort so joins don't hang.
        let mut st = self.state.lock();
        st.finished += 1;
        st.finished_ranks.push(rank);
        self.bump_locked(&mut st);
        // A finishing rank can expose a deadlock among the rest; the
        // remaining blocked ranks will wake (we just notified), re-check
        // and re-record, so detection happens on their side.
    }

    /// Forget a nonblocking request's world-state entry. Runs even
    /// after an abort (unlike [`World::mutate`], mirroring
    /// [`World::rank_done`]): a rank whose `MPI_Wait` was aborted must
    /// still relinquish its posted receive / parked send, otherwise the
    /// stale entry can swallow a surviving rank's message and cascade
    /// one injected fault into spurious failures elsewhere.
    pub fn forget_request(&self, id: u64) {
        let mut st = self.state.lock();
        st.pending_sends.retain(|p| p.id != id);
        st.posted_recvs.retain(|p| p.id != id);
        self.bump_locked(&mut st);
    }

    /// The named-critical-section mutex for `name` (created on first
    /// use) — models OpenMP named criticals, which are program-global.
    pub fn critical_mutex(&self, name: &str) -> Arc<Mutex<()>> {
        let mut m = self.criticals.lock();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// The current collective signature/instance map (tests only).
    pub fn with_state<R>(&self, f: impl FnOnce(&WorldState) -> R) -> R {
        f(&self.state.lock())
    }
}

/// Helpers the rank API uses for collective bookkeeping.
pub fn arrive_collective(
    st: &mut WorldState,
    world_size: usize,
    slot: u64,
    rank: u32,
    sig: CollSignature,
    op: Option<crate::collective::ReduceOp>,
    payload: Option<Vec<i64>>,
) {
    let vc = st.vclocks.get(rank as usize).cloned();
    let inst = st
        .collectives
        .entry(slot)
        .or_insert_with(|| CollInstance::new(world_size, sig));
    inst.arrive_stamped(rank as usize, sig, op, payload, vc);
}

/// Take the collective result for `rank` once complete; removes the
/// instance after the last departure.
pub fn take_collective(st: &mut WorldState, slot: u64, rank: u32) -> Option<Vec<i64>> {
    let world = st.vclocks.len();
    let inst = st.collectives.get_mut(&slot)?;
    if !inst.complete() {
        return None;
    }
    let result = inst.result.clone().expect("complete implies result");
    let joined = inst.joined_vc(world);
    inst.departed += 1;
    if inst.departed == inst.payloads.len() {
        st.collectives.remove(&slot);
    }
    // Departing from a collective makes every participant's arrival
    // causally visible.
    if let Some(vc) = st.vclocks.get_mut(rank as usize) {
        vc.merge(&joined);
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{CollKind, ReduceOp};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutate_bumps_version_and_notifies() {
        let w = World::new(2, 64);
        assert_eq!(w.progress_version(), 0);
        w.mutate(|st| {
            st.mailbox.entry((0, 1, 0)).or_default().push_back(Msg {
                data: vec![42],
                vc: VectorClock::zero(2),
            });
        })
        .unwrap();
        assert_eq!(w.progress_version(), 1);
    }

    #[test]
    fn block_until_returns_when_predicate_satisfied() {
        let w = World::new(2, 64);
        let w2 = w.clone();
        let h = thread::spawn(move || {
            w2.block_until(1, |st| {
                st.mailbox.get_mut(&(0, 1, 7)).and_then(|q| q.pop_front())
            })
        });
        thread::sleep(Duration::from_millis(20));
        w.mutate(|st| {
            st.mailbox.entry((0, 1, 7)).or_default().push_back(Msg {
                data: vec![9],
                vc: VectorClock::zero(2),
            });
        })
        .unwrap();
        assert_eq!(h.join().unwrap().unwrap().data, vec![9]);
    }

    #[test]
    fn two_blocked_ranks_deadlock_is_detected() {
        let w = World::new(2, 64);
        let mut handles = Vec::new();
        for r in 0..2u32 {
            let w = w.clone();
            handles.push(thread::spawn(move || {
                // Both wait for messages no one will send.
                w.block_until(r, |st| {
                    st.mailbox
                        .get_mut(&(1 - r, r, 0))
                        .and_then(|q| q.pop_front())
                })
            }));
        }
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            assert_eq!(err, MpiError::Aborted(AbortReason::Deadlock));
        }
        assert!(w.is_aborted());
    }

    #[test]
    fn finished_rank_exposes_deadlock_of_the_rest() {
        let w = World::new(2, 64);
        let w1 = w.clone();
        let blocked = thread::spawn(move || {
            w1.block_until(1, |st| {
                st.mailbox.get_mut(&(0, 1, 0)).and_then(|q| q.pop_front())
            })
        });
        thread::sleep(Duration::from_millis(20));
        // Rank 0 finishes without sending: rank 1 can never proceed.
        w.rank_done(0);
        let err = blocked.join().unwrap().unwrap_err();
        assert_eq!(err, MpiError::Aborted(AbortReason::Deadlock));
    }

    #[test]
    fn no_false_deadlock_when_message_is_in_flight() {
        // Rank 0 posts an eager message and *then* blocks on something
        // unsatisfiable; rank 1's recv must succeed and then the true
        // deadlock (only rank 0 left blocked... which then has no peer)
        // is declared.
        let w = World::new(2, 64);
        let w0 = w.clone();
        let sender = thread::spawn(move || {
            w0.mutate(|st| {
                st.mailbox.entry((0, 1, 0)).or_default().push_back(Msg {
                    data: vec![5],
                    vc: VectorClock::zero(2),
                });
            })
            .unwrap();
            // Block forever.
            w0.block_until(0, |st| {
                st.mailbox.get_mut(&(1, 0, 9)).and_then(|q| q.pop_front())
            })
        });
        let w1 = w.clone();
        let receiver = thread::spawn(move || {
            let got = w1
                .block_until(1, |st| {
                    st.mailbox.get_mut(&(0, 1, 0)).and_then(|q| q.pop_front())
                })
                .unwrap();
            assert_eq!(got.data, vec![5]);
            w1.rank_done(1);
        });
        receiver.join().unwrap();
        let err = sender.join().unwrap().unwrap_err();
        assert_eq!(err, MpiError::Aborted(AbortReason::Deadlock));
    }

    #[test]
    fn collective_helpers_round_trip() {
        let w = World::new(2, 64);
        let sig = CollSignature {
            kind: CollKind::Allreduce,
            count: 1,
            root: None,
        };
        w.mutate(|st| arrive_collective(st, 2, 0, 0, sig, Some(ReduceOp::Sum), Some(vec![1])))
            .unwrap();
        w.mutate(|st| {
            assert!(take_collective(st, 0, 0).is_none(), "incomplete");
            arrive_collective(st, 2, 0, 1, sig, Some(ReduceOp::Sum), Some(vec![2]));
        })
        .unwrap();
        w.mutate(|st| {
            assert_eq!(take_collective(st, 0, 0), Some(vec![3]));
            assert_eq!(take_collective(st, 0, 1), Some(vec![3]));
            assert!(st.collectives.is_empty(), "instance cleaned up");
        })
        .unwrap();
    }

    #[test]
    fn forget_request_runs_even_after_abort() {
        let w = World::new(2, 64);
        w.mutate(|st| {
            st.posted_recvs.push(PostedRecv {
                id: 7,
                src: 1,
                dst: 0,
                tag: 0,
                msg: None,
            });
        })
        .unwrap();
        w.abort(AbortReason::Deadlock);
        assert!(w.mutate(|_| ()).is_err(), "mutate refuses after abort");
        w.forget_request(7);
        w.with_state(|st| assert!(st.posted_recvs.is_empty()));
    }

    #[test]
    fn critical_mutexes_are_shared_by_name() {
        let w = World::new(1, 64);
        let a = w.critical_mutex("champ");
        let b = w.critical_mutex("champ");
        let c = w.critical_mutex("other");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
