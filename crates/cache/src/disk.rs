//! The persistent layer: one file per entry, named by the hex key.
//!
//! * `<key:032x>.nlr` — a serialized [`NlrFold`]
//! * `<key:032x>.att` — a serialized attribute set
//!
//! Both formats are magic + format version + varint-encoded payload
//! (LEB128, via `dt_trace::compress`) + a 16-byte integrity digest of
//! everything before it. Readers validate everything — magic, version,
//! digest, structural well-formedness, exact length — and return
//! `None` on any deviation: a corrupt or truncated entry is a cache
//! miss, never an error and never a wrong value. The digest closes the
//! hole structural checks leave open: a flipped byte that still parses
//! would silently decode to a *different* value under the same content
//! key. Writers go through a uniquely-named temp file and an atomic
//! rename, so readers (including concurrent sweeps sharing a
//! directory) only ever see complete entries.

use crate::{AttrSet, NlrFold, PElem, CACHE_FORMAT_VERSION};
use dt_trace::compress::{read_varint, write_varint};
use dt_trace::hash::StableHasher;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const NLR_MAGIC: &[u8; 4] = b"DTCN";
const ATTR_MAGIC: &[u8; 4] = b"DTCA";

pub(crate) fn nlr_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.nlr"))
}

pub(crate) fn attr_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.att"))
}

/// Write `bytes` to `path` atomically: a unique temp sibling (same
/// directory, so the rename cannot cross filesystems) followed by a
/// rename. Returns the bytes written, 0 on any I/O failure — the disk
/// layer is best-effort by contract.
fn write_atomic(path: &Path, bytes: &[u8]) -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let Some(dir) = path.parent() else { return 0 };
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, bytes).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return 0;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return 0;
    }
    bytes.len() as u64
}

/// Append the integrity digest: 16 bytes of [`StableHasher`] over the
/// encoded entry so far (magic and version included).
fn seal(mut bytes: Vec<u8>) -> Vec<u8> {
    let mut h = StableHasher::new();
    h.write_raw(&bytes);
    bytes.extend_from_slice(&h.finish().to_le_bytes());
    bytes
}

/// Strip and verify the integrity digest; `None` on any mismatch.
fn unseal(buf: &[u8]) -> Option<&[u8]> {
    let payload_len = buf.len().checked_sub(16)?;
    let (payload, digest) = buf.split_at(payload_len);
    let mut h = StableHasher::new();
    h.write_raw(payload);
    (h.finish().to_le_bytes() == digest).then_some(payload)
}

fn encode_pelem(out: &mut Vec<u8>, e: PElem) {
    match e {
        PElem::Sym(s) => {
            write_varint(out, 0);
            write_varint(out, u64::from(s));
        }
        PElem::Loop { local, count } => {
            write_varint(out, 1);
            write_varint(out, u64::from(local));
            write_varint(out, count);
        }
    }
}

fn decode_pelem(buf: &[u8], at: &mut usize) -> Option<PElem> {
    match read_varint(buf, at).ok()? {
        0 => Some(PElem::Sym(u32::try_from(read_varint(buf, at).ok()?).ok()?)),
        1 => {
            let local = u32::try_from(read_varint(buf, at).ok()?).ok()?;
            let count = read_varint(buf, at).ok()?;
            Some(PElem::Loop { local, count })
        }
        _ => None,
    }
}

fn encode_nlr(fold: &NlrFold) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 4 * fold.elements.len());
    out.extend_from_slice(NLR_MAGIC);
    write_varint(&mut out, u64::from(CACHE_FORMAT_VERSION));
    write_varint(&mut out, fold.input_len as u64);
    write_varint(&mut out, fold.bodies.len() as u64);
    for body in &fold.bodies {
        write_varint(&mut out, body.len() as u64);
        for &e in body {
            encode_pelem(&mut out, e);
        }
    }
    write_varint(&mut out, fold.elements.len() as u64);
    for &e in &fold.elements {
        encode_pelem(&mut out, e);
    }
    seal(out)
}

fn decode_nlr(sealed: &[u8]) -> Option<NlrFold> {
    let buf = unseal(sealed)?;
    if buf.len() < 4 || &buf[..4] != NLR_MAGIC {
        return None;
    }
    let mut at = 4;
    if read_varint(buf, &mut at).ok()? != u64::from(CACHE_FORMAT_VERSION) {
        return None;
    }
    let input_len = usize::try_from(read_varint(buf, &mut at).ok()?).ok()?;
    let n_bodies = read_varint(buf, &mut at).ok()?;
    let mut bodies = Vec::new();
    for _ in 0..n_bodies {
        let len = read_varint(buf, &mut at).ok()?;
        let mut body = Vec::new();
        for _ in 0..len {
            body.push(decode_pelem(buf, &mut at)?);
        }
        bodies.push(body);
    }
    let n_elems = read_varint(buf, &mut at).ok()?;
    let mut elements = Vec::new();
    for _ in 0..n_elems {
        elements.push(decode_pelem(buf, &mut at)?);
    }
    if at != buf.len() {
        return None; // trailing garbage
    }
    let fold = NlrFold {
        bodies,
        elements,
        input_len,
    };
    fold.is_well_formed().then_some(fold)
}

fn encode_attrs(set: &AttrSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 16 * set.len());
    out.extend_from_slice(ATTR_MAGIC);
    write_varint(&mut out, u64::from(CACHE_FORMAT_VERSION));
    write_varint(&mut out, set.len() as u64);
    for (name, weight) in set {
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&weight.to_bits().to_le_bytes());
    }
    seal(out)
}

fn decode_attrs(sealed: &[u8]) -> Option<AttrSet> {
    let buf = unseal(sealed)?;
    if buf.len() < 4 || &buf[..4] != ATTR_MAGIC {
        return None;
    }
    let mut at = 4;
    if read_varint(buf, &mut at).ok()? != u64::from(CACHE_FORMAT_VERSION) {
        return None;
    }
    let count = read_varint(buf, &mut at).ok()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let len = usize::try_from(read_varint(buf, &mut at).ok()?).ok()?;
        let name = std::str::from_utf8(buf.get(at..at + len)?).ok()?;
        at += len;
        let bits = buf.get(at..at + 8)?;
        at += 8;
        let weight = f64::from_bits(u64::from_le_bytes(bits.try_into().ok()?));
        out.push((name.to_string(), weight));
    }
    (at == buf.len()).then_some(out)
}

pub(crate) fn read_nlr(path: &Path) -> Option<(NlrFold, u64)> {
    let bytes = std::fs::read(path).ok()?;
    decode_nlr(&bytes).map(|f| (f, bytes.len() as u64))
}

pub(crate) fn write_nlr(path: &Path, fold: &NlrFold) -> u64 {
    write_atomic(path, &encode_nlr(fold))
}

pub(crate) fn read_attrs(path: &Path) -> Option<(AttrSet, u64)> {
    let bytes = std::fs::read(path).ok()?;
    decode_attrs(&bytes).map(|s| (s, bytes.len() as u64))
}

pub(crate) fn write_attrs(path: &Path, set: &AttrSet) -> u64 {
    write_atomic(path, &encode_attrs(set))
}

/// What `difftrace cache stats` reports about a cache directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// `.nlr` entries present.
    pub nlr_entries: u64,
    /// `.att` entries present.
    pub attr_entries: u64,
    /// Total bytes across both entry kinds.
    pub total_bytes: u64,
}

/// Tally the entries of a cache directory.
pub fn disk_stats(dir: &Path) -> std::io::Result<DiskStats> {
    let mut s = DiskStats::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let kind = if name.ends_with(".nlr") {
            &mut s.nlr_entries
        } else if name.ends_with(".att") {
            &mut s.attr_entries
        } else {
            continue;
        };
        *kind += 1;
        s.total_bytes += entry.metadata()?.len();
    }
    Ok(s)
}

/// Delete every cache entry (and stray temp file) in `dir`, returning
/// how many files were removed. Leaves foreign files alone.
pub fn clear_dir(dir: &Path) -> std::io::Result<u64> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let ours = name.ends_with(".nlr")
            || name.ends_with(".att")
            || (name.starts_with('.') && name.contains(".tmp."));
        if ours {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dt_cache_disk_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_fold() -> NlrFold {
        NlrFold {
            bodies: vec![
                vec![PElem::Sym(1), PElem::Sym(2)],
                vec![PElem::Loop { local: 0, count: 2 }, PElem::Sym(9)],
            ],
            elements: vec![PElem::Loop { local: 1, count: 2 }, PElem::Sym(3)],
            input_len: 11,
        }
    }

    #[test]
    fn nlr_entry_roundtrips() {
        let fold = sample_fold();
        let bytes = encode_nlr(&fold);
        assert_eq!(decode_nlr(&bytes), Some(fold));
    }

    #[test]
    fn attr_entry_roundtrips() {
        let set: AttrSet = vec![
            ("MPI_Send".into(), 8.0),
            ("L0".into(), 4.5),
            ("{a}→{b}".into(), 1.0),
        ];
        let bytes = encode_attrs(&set);
        assert_eq!(decode_attrs(&bytes), Some(set));
    }

    #[test]
    fn corruption_is_a_miss_not_an_error() {
        let good = encode_nlr(&sample_fold());
        // Truncation at every prefix length.
        for len in 0..good.len() {
            assert_eq!(decode_nlr(&good[..len]), None, "truncated at {len}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(decode_nlr(&long), None);
        // Every single-byte flip — payload or digest — is caught by the
        // integrity digest, even where the mutation would still parse.
        for i in 0..good.len() {
            let mut flipped = good.clone();
            flipped[i] ^= 0x01;
            assert_eq!(decode_nlr(&flipped), None, "flipped byte {i}");
        }
        // Wrong magic / version.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_nlr(&bad), None);
        let mut ver = good;
        ver[4] = ver[4].wrapping_add(1);
        assert_eq!(decode_nlr(&ver), None);
        // An attr blob under an NLR reader and vice versa.
        let attrs = encode_attrs(&vec![("x".into(), 1.0)]);
        assert_eq!(decode_nlr(&attrs), None);

        // A structurally invalid fold (forward body reference) encodes
        // fine but must be rejected on read.
        let evil = NlrFold {
            bodies: vec![vec![PElem::Loop { local: 9, count: 2 }]],
            elements: vec![],
            input_len: 0,
        };
        assert_eq!(decode_nlr(&encode_nlr(&evil)), None);
    }

    #[test]
    fn disk_cache_persists_across_instances() {
        let dir = tmp("persist");
        let key = 0xabcdefu128;
        {
            let c = Cache::with_dir(&dir).unwrap();
            c.put_nlr(key, Arc::new(sample_fold()));
            c.put_attrs(key, Arc::new(vec![("a".into(), 2.0)]));
            assert!(c.stats().disk_write_bytes > 0);
        }
        // A brand-new instance over the same directory hits from disk.
        let c2 = Cache::with_dir(&dir).unwrap();
        assert_eq!(*c2.get_nlr(key).unwrap(), sample_fold());
        assert_eq!(c2.get_attrs(key).unwrap().as_slice(), &[("a".into(), 2.0)]);
        let s = c2.stats();
        assert_eq!((s.nlr_hits, s.attr_hits), (1, 1));
        assert!(s.disk_read_bytes > 0);

        let ds = disk_stats(&dir).unwrap();
        assert_eq!((ds.nlr_entries, ds.attr_entries), (1, 1));
        assert!(ds.total_bytes > 0);
        assert_eq!(clear_dir(&dir).unwrap(), 2);
        assert_eq!(disk_stats(&dir).unwrap(), DiskStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_misses() {
        let dir = tmp("corrupt");
        let key = 42u128;
        let c = Cache::with_dir(&dir).unwrap();
        c.put_nlr(key, Arc::new(sample_fold()));
        // Truncate the entry on disk behind the cache's back, then ask
        // a fresh instance (no memory copy): must miss cleanly.
        let path = nlr_path(&dir, key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let fresh = Cache::with_dir(&dir).unwrap();
        assert!(fresh.get_nlr(key).is_none());
        assert_eq!(fresh.stats().nlr_misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_files_left_behind() {
        let dir = tmp("tmpfiles");
        let c = Cache::with_dir(&dir).unwrap();
        for k in 0..8u128 {
            c.put_nlr(k, Arc::new(sample_fold()));
        }
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
