//! `dt-cache` — content-addressed memoization for the DiffTrace
//! pipeline.
//!
//! A parameter sweep runs one full DiffTrace iteration per grid cell,
//! but most of the work repeats across cells: every attribute config
//! sharing a filter re-folds the identical per-trace NLR, and
//! re-running a diff after editing only the faulty corpus re-folds
//! every normal-side trace. This crate provides a [`Cache`] keyed by
//! *content* — a stable digest of the filtered symbol stream and the
//! analysis parameters — so identical work is done once:
//!
//! * `(trace content, filter K)` → the trace's NLR fold, stored
//!   *portably* (see [`NlrFold`]) so one cached fold replays into any
//!   loop table, sequential or shared, reproducing the exact loop
//!   numbering a cold build would have produced;
//! * `(NLR key, attribute config, loop numbering)` → the mined
//!   attribute set.
//!
//! An optional on-disk layer (`Cache::with_dir`) persists entries
//! across processes. Disk entries are versioned
//! ([`CACHE_FORMAT_VERSION`]) and validated structurally on read; a
//! corrupted, truncated, or foreign file is treated as a miss, never an
//! error. The cache is observational only: outputs are byte-identical
//! cold vs. warm at any thread count (enforced by the
//! `cache_equivalence` harness in the workspace root).

mod disk;

pub use disk::{clear_dir, disk_stats, DiskStats};

use dt_trace::hash::StableHasher;
use nlr::{Element, LoopId, LoopInterner};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamp of the cache key derivation *and* the on-disk entry
/// encoding. Bump whenever either changes (hash algorithm, key inputs,
/// serialization layout, or any pipeline change that alters what a
/// cached value means): old entries then miss instead of being reused
/// incorrectly.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// One element of a *portable* NLR fold: like [`nlr::Element`], but
/// loop references use trace-local IDs (first-intern order within the
/// trace) instead of table-global [`LoopId`]s, which depend on what
/// other traces interned first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PElem {
    /// An unsummarized symbol.
    Sym(u32),
    /// `count` repetitions of the trace-local body `local`.
    Loop {
        /// Index into [`NlrFold::bodies`].
        local: u32,
        /// Iteration count.
        count: u64,
    },
}

/// A per-trace NLR fold in table-independent form.
///
/// The NLR builder only ever embeds loop IDs returned by its *own*
/// intern calls, so numbering every body by its first intern occurrence
/// within the trace captures the complete fold. Replaying the bodies in
/// that order into any [`LoopInterner`] ([`replay`]) re-interns exactly
/// the sequence a cold build of this trace would have interned
/// (duplicate interns never change numbering), which is what makes
/// cached and cold analyses byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NlrFold {
    /// Distinct loop bodies in first-intern order; a body references
    /// only strictly earlier bodies (inner loops fold first).
    pub bodies: Vec<Vec<PElem>>,
    /// The top-level summarized sequence.
    pub elements: Vec<PElem>,
    /// Length of the original (filtered) symbol stream.
    pub input_len: usize,
}

impl NlrFold {
    /// Structural validity: every loop reference points at a strictly
    /// earlier body (for bodies) or any body (for elements). Disk
    /// deserialization enforces this so [`replay`] can never index out
    /// of bounds on untrusted input.
    pub fn is_well_formed(&self) -> bool {
        let ok = |es: &[PElem], limit: u32| {
            es.iter().all(|e| match e {
                PElem::Sym(_) => true,
                PElem::Loop { local, .. } => *local < limit,
            })
        };
        self.bodies.iter().enumerate().all(|(i, b)| ok(b, i as u32))
            && ok(&self.elements, self.bodies.len() as u32)
    }
}

/// A [`LoopInterner`] wrapper that records every intern result in call
/// order — the generic sibling of [`nlr::RecordingInterner`], usable
/// over a plain `&mut LoopTable` so the sequential pipeline can capture
/// fold orders for caching.
pub struct Recording<'a, I: LoopInterner> {
    inner: &'a mut I,
    order: Vec<LoopId>,
}

impl<'a, I: LoopInterner> Recording<'a, I> {
    pub fn new(inner: &'a mut I) -> Recording<'a, I> {
        Recording {
            inner,
            order: Vec::new(),
        }
    }

    /// The recorded order (every intern call's result, duplicates
    /// included).
    pub fn into_order(self) -> Vec<LoopId> {
        self.order
    }
}

impl<I: LoopInterner> LoopInterner for Recording<'_, I> {
    fn intern(&mut self, body: Vec<Element>) -> LoopId {
        let id = self.inner.intern(body);
        self.order.push(id);
        id
    }
    fn body(&self, id: LoopId) -> &[Element] {
        self.inner.body(id)
    }
}

/// Convert one build result into its portable fold: `order` is the
/// trace's recorded intern sequence (global IDs, duplicates allowed),
/// `elements`/`input_len` the built summary, `body_of` resolves a
/// global ID to its body in the table the build ran against.
///
/// # Panics
///
/// Panics if a body references a global ID absent from `order` — which
/// cannot happen for orders recorded from the NLR builder, since it
/// interns inner loops before any outer body that embeds them.
pub fn fold_from_build<F>(
    order: &[LoopId],
    elements: &[Element],
    input_len: usize,
    body_of: F,
) -> NlrFold
where
    F: Fn(LoopId) -> Vec<Element>,
{
    let mut local: HashMap<u32, u32> = HashMap::new();
    let mut bodies: Vec<Vec<PElem>> = Vec::new();
    for &gid in order {
        if local.contains_key(&gid.0) {
            continue;
        }
        let body = body_of(gid)
            .iter()
            .map(|&e| to_portable(e, &local))
            .collect();
        local.insert(gid.0, bodies.len() as u32);
        bodies.push(body);
    }
    NlrFold {
        elements: elements.iter().map(|&e| to_portable(e, &local)).collect(),
        bodies,
        input_len,
    }
}

fn to_portable(e: Element, local: &HashMap<u32, u32>) -> PElem {
    match e {
        Element::Sym(s) => PElem::Sym(s),
        Element::Loop { body, count } => PElem::Loop {
            local: *local
                .get(&body.0)
                .expect("inner loop interned before any body referencing it"),
            count,
        },
    }
}

/// Replay a fold into `interner`: intern the bodies in recorded order
/// and return the top-level elements under the interner's (global)
/// numbering. Interning an already-present body is a no-op for
/// numbering, so replaying into a table that a cold build would have
/// reached the same way yields byte-identical IDs.
///
/// # Panics
///
/// Panics on a malformed fold (forward/out-of-range body reference);
/// disk deserialization rejects those before they get here.
pub fn replay<I: LoopInterner>(fold: &NlrFold, interner: &mut I) -> Vec<Element> {
    let mut globals: Vec<LoopId> = Vec::with_capacity(fold.bodies.len());
    for body in &fold.bodies {
        let b: Vec<Element> = body.iter().map(|&pe| to_element(pe, &globals)).collect();
        globals.push(interner.intern(b));
    }
    fold.elements
        .iter()
        .map(|&pe| to_element(pe, &globals))
        .collect()
}

fn to_element(pe: PElem, globals: &[LoopId]) -> Element {
    match pe {
        PElem::Sym(s) => Element::Sym(s),
        PElem::Loop { local, count } => Element::Loop {
            body: globals[local as usize],
            count,
        },
    }
}

/// The NLR cache key for one filtered trace: a stable digest of the
/// format version, the fold bound `k`, the filtered symbol stream, and
/// the distinct-symbol → resolved-name mapping. Folding itself depends
/// only on the `u32` stream, but downstream consumers of a fold resolve
/// names through the live registry — hashing the mapping means a
/// corpus whose registry permuted (same streams, different meanings)
/// changes keys and misses safely instead of aliasing.
pub fn nlr_key<F: Fn(u32) -> String>(k: usize, symbols: &[u32], name_of: F) -> u128 {
    let mut h = StableHasher::new();
    h.write_u32(CACHE_FORMAT_VERSION);
    h.write_u64(k as u64);
    h.write_u64(symbols.len() as u64);
    for &s in symbols {
        h.write_u32(s);
    }
    let distinct: BTreeSet<u32> = symbols.iter().copied().collect();
    h.write_u64(distinct.len() as u64);
    for s in distinct {
        h.write_u32(s);
        h.write_str(&name_of(s));
    }
    h.finish()
}

/// The attribute cache key: the trace's NLR key, the attribute config
/// code, and the top-level element sequence under the *global* loop
/// numbering. Mined attribute labels embed global loop IDs (`L3`
/// renders from the table-wide ID), so the numbering is part of what a
/// cached value means: a warm run that assigns the same global IDs hits
/// and reuses the exact strings; any run that numbers differently
/// derives a different key and re-mines.
pub fn attr_key(nlr_key: u128, attr_code: &str, elements: &[Element]) -> u128 {
    let mut h = StableHasher::new();
    h.write_u32(CACHE_FORMAT_VERSION);
    h.write_u128(nlr_key);
    h.write_str(attr_code);
    h.write_u64(elements.len() as u64);
    for &e in elements {
        match e {
            Element::Sym(s) => {
                h.write_u8(0);
                h.write_u32(s);
            }
            Element::Loop { body, count } => {
                h.write_u8(1);
                h.write_u32(body.0);
                h.write_u64(count);
            }
        }
    }
    h.finish()
}

/// A mined attribute set, exactly as `difftrace::attributes::mine`
/// returns it.
pub type AttrSet = Vec<(String, f64)>;

/// Counter snapshot of a cache's activity ([`Cache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// NLR lookups answered from memory or disk.
    pub nlr_hits: u64,
    /// NLR lookups that fell through to a fresh fold.
    pub nlr_misses: u64,
    /// Attribute lookups answered from memory or disk.
    pub attr_hits: u64,
    /// Attribute lookups that fell through to fresh mining.
    pub attr_misses: u64,
    /// Bytes of valid entries read from the disk layer.
    pub disk_read_bytes: u64,
    /// Bytes of entries written to the disk layer.
    pub disk_write_bytes: u64,
}

/// The content-addressed analysis cache: two in-memory maps (NLR folds,
/// attribute sets) shared across threads, plus an optional persistent
/// directory. All methods take `&self`; the cache is designed to be
/// held in an `Arc` and shared across sweep cells and pipeline stages.
///
/// Disk writes are atomic (unique temp file + rename) and best-effort:
/// an I/O error degrades the cache to memory-only behavior for that
/// entry rather than failing the analysis.
#[derive(Debug, Default)]
pub struct Cache {
    nlr: Mutex<HashMap<u128, Arc<NlrFold>>>,
    attrs: Mutex<HashMap<u128, Arc<AttrSet>>>,
    dir: Option<PathBuf>,
    nlr_hits: AtomicU64,
    nlr_misses: AtomicU64,
    attr_hits: AtomicU64,
    attr_misses: AtomicU64,
    disk_read_bytes: AtomicU64,
    disk_write_bytes: AtomicU64,
}

impl Cache {
    /// A fresh in-memory cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// A cache backed by `dir` (created if absent): entries persist
    /// across processes, keyed by content digests, so a second run over
    /// unchanged inputs hits from disk.
    pub fn with_dir(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: Some(dir.to_path_buf()),
            ..Cache::default()
        })
    }

    /// The backing directory, when persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Look up an NLR fold. Checks memory first, then the disk layer;
    /// a disk entry that fails validation is a miss.
    pub fn get_nlr(&self, key: u128) -> Option<Arc<NlrFold>> {
        if let Some(f) = lock(&self.nlr).get(&key).cloned() {
            self.nlr_hits.fetch_add(1, Ordering::Relaxed);
            return Some(f);
        }
        if let Some(dir) = &self.dir {
            if let Some((fold, bytes)) = disk::read_nlr(&disk::nlr_path(dir, key)) {
                self.disk_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.nlr_hits.fetch_add(1, Ordering::Relaxed);
                let fold = Arc::new(fold);
                lock(&self.nlr).insert(key, fold.clone());
                return Some(fold);
            }
        }
        self.nlr_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store an NLR fold under `key` (memory, and disk when backed).
    pub fn put_nlr(&self, key: u128, fold: Arc<NlrFold>) {
        if let Some(dir) = &self.dir {
            let bytes = disk::write_nlr(&disk::nlr_path(dir, key), &fold);
            self.disk_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        lock(&self.nlr).insert(key, fold);
    }

    /// Look up a mined attribute set.
    pub fn get_attrs(&self, key: u128) -> Option<Arc<AttrSet>> {
        if let Some(a) = lock(&self.attrs).get(&key).cloned() {
            self.attr_hits.fetch_add(1, Ordering::Relaxed);
            return Some(a);
        }
        if let Some(dir) = &self.dir {
            if let Some((set, bytes)) = disk::read_attrs(&disk::attr_path(dir, key)) {
                self.disk_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.attr_hits.fetch_add(1, Ordering::Relaxed);
                let set = Arc::new(set);
                lock(&self.attrs).insert(key, set.clone());
                return Some(set);
            }
        }
        self.attr_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a mined attribute set under `key`.
    pub fn put_attrs(&self, key: u128, set: Arc<AttrSet>) {
        if let Some(dir) = &self.dir {
            let bytes = disk::write_attrs(&disk::attr_path(dir, key), &set);
            self.disk_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        lock(&self.attrs).insert(key, set);
    }

    /// Snapshot the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            nlr_hits: self.nlr_hits.load(Ordering::Relaxed),
            nlr_misses: self.nlr_misses.load(Ordering::Relaxed),
            attr_hits: self.attr_hits.load(Ordering::Relaxed),
            attr_misses: self.attr_misses.load(Ordering::Relaxed),
            disk_read_bytes: self.disk_read_bytes.load(Ordering::Relaxed),
            disk_write_bytes: self.disk_write_bytes.load(Ordering::Relaxed),
        }
    }

    /// Report the activity counters into `rec` (for `--profile` /
    /// `--metrics`). Call once per command, after the pipeline ran —
    /// the counters accumulate across every lookup the command made.
    pub fn report_to(&self, rec: &dyn dt_obs::Recorder) {
        if !rec.enabled() {
            return;
        }
        let s = self.stats();
        rec.add("cache_nlr_hits", s.nlr_hits);
        rec.add("cache_nlr_misses", s.nlr_misses);
        rec.add("cache_attr_hits", s.attr_hits);
        rec.add("cache_attr_misses", s.attr_misses);
        rec.add("cache_disk_read_bytes", s.disk_read_bytes);
        rec.add("cache_disk_write_bytes", s.disk_write_bytes);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlr::{LoopTable, Nlr, NlrBuilder};

    /// Build `symbols` sequentially into `table`, recording the fold
    /// order, and return (summary, portable fold).
    fn build_and_fold(symbols: &[u32], table: &mut LoopTable) -> (Nlr, NlrFold) {
        let builder = NlrBuilder::new(10);
        let mut rec = Recording::new(table);
        let nlr = builder.build(symbols, &mut rec);
        let order = rec.into_order();
        let fold = fold_from_build(&order, nlr.elements(), nlr.input_len(), |id| {
            table.body(id).to_vec()
        });
        (nlr, fold)
    }

    #[test]
    fn fold_roundtrips_through_replay() {
        // Nested loops: ((1 2)^2 9)^2 … plus a plain loop.
        let symbols: Vec<u32> = [1u32, 2, 1, 2, 9, 1, 2, 1, 2, 9, 3, 3, 3, 3].to_vec();
        let mut cold = LoopTable::new();
        let (nlr, fold) = build_and_fold(&symbols, &mut cold);
        assert!(fold.is_well_formed());
        assert_eq!(fold.input_len, symbols.len());

        // Replay into a fresh table: identical numbering and bodies.
        let mut warm = LoopTable::new();
        let elements = replay(&fold, &mut warm);
        assert_eq!(elements, nlr.elements());
        assert_eq!(warm.len(), cold.len());
        for i in 0..cold.len() {
            assert_eq!(warm.body(LoopId(i as u32)), cold.body(LoopId(i as u32)));
        }
    }

    #[test]
    fn fold_is_table_independent() {
        // The same trace folded into two tables with different
        // pre-existing content yields the same portable fold.
        let symbols: Vec<u32> = [5u32, 6].repeat(4);
        let mut empty = LoopTable::new();
        let (_, fold_a) = build_and_fold(&symbols, &mut empty);
        let mut seeded = LoopTable::new();
        seeded.intern(vec![Element::Sym(99)]);
        seeded.intern(vec![Element::Sym(98), Element::Sym(97)]);
        let (_, fold_b) = build_and_fold(&symbols, &mut seeded);
        assert_eq!(fold_a, fold_b);
    }

    #[test]
    fn replay_into_populated_table_matches_cold_build() {
        // Two traces share a loop body. Cache the second trace's fold
        // from an isolated build, then replay it into a table the first
        // trace already populated: numbering must equal a cold build of
        // both traces in order.
        let t1: Vec<u32> = [1u32, 2].repeat(5);
        let t2: Vec<u32> = {
            let mut v = [1u32, 2].repeat(3);
            v.extend([7u32, 8].repeat(3));
            v
        };
        let mut cold = LoopTable::new();
        let b = NlrBuilder::new(10);
        let n1 = b.build(&t1, &mut cold);
        let n2 = b.build(&t2, &mut cold);

        let mut iso = LoopTable::new();
        let (_, fold2) = build_and_fold(&t2, &mut iso);

        let mut warm = LoopTable::new();
        let w1 = b.build(&t1, &mut warm);
        let w2 = replay(&fold2, &mut warm);
        assert_eq!(w1.elements(), n1.elements());
        assert_eq!(w2, n2.elements());
        assert_eq!(warm.len(), cold.len());
    }

    #[test]
    fn nlr_key_discriminates_inputs() {
        let name = |s: u32| format!("f{s}");
        let base = nlr_key(10, &[1, 2, 3], name);
        assert_eq!(base, nlr_key(10, &[1, 2, 3], name));
        assert_ne!(base, nlr_key(11, &[1, 2, 3], name), "k in key");
        assert_ne!(base, nlr_key(10, &[1, 2], name), "stream in key");
        assert_ne!(
            base,
            nlr_key(10, &[1, 2, 3], |s| format!("g{s}")),
            "names in key"
        );
    }

    #[test]
    fn attr_key_sees_numbering_and_config() {
        let looped = [Element::Loop {
            body: LoopId(0),
            count: 4,
        }];
        let renumbered = [Element::Loop {
            body: LoopId(1),
            count: 4,
        }];
        let k = attr_key(7, "sing.actual", &looped);
        assert_eq!(k, attr_key(7, "sing.actual", &looped));
        assert_ne!(k, attr_key(7, "doub.actual", &looped));
        assert_ne!(k, attr_key(8, "sing.actual", &looped));
        assert_ne!(k, attr_key(7, "sing.actual", &renumbered));
    }

    #[test]
    fn memory_cache_hits_and_counts() {
        let c = Cache::new();
        assert!(c.get_nlr(1).is_none());
        c.put_nlr(
            1,
            Arc::new(NlrFold {
                bodies: vec![],
                elements: vec![PElem::Sym(3)],
                input_len: 1,
            }),
        );
        assert!(c.get_nlr(1).is_some());
        assert!(c.get_attrs(2).is_none());
        c.put_attrs(2, Arc::new(vec![("a".into(), 1.0)]));
        assert_eq!(c.get_attrs(2).unwrap().as_slice(), &[("a".into(), 1.0)]);
        let s = c.stats();
        assert_eq!((s.nlr_hits, s.nlr_misses), (1, 1));
        assert_eq!((s.attr_hits, s.attr_misses), (1, 1));
        assert_eq!(s.disk_read_bytes + s.disk_write_bytes, 0);
    }

    #[test]
    fn malformed_fold_is_detected() {
        let forward = NlrFold {
            bodies: vec![vec![PElem::Loop { local: 0, count: 2 }]],
            elements: vec![],
            input_len: 0,
        };
        assert!(!forward.is_well_formed(), "self/forward reference");
        let oob = NlrFold {
            bodies: vec![],
            elements: vec![PElem::Loop { local: 5, count: 2 }],
            input_len: 10,
        };
        assert!(!oob.is_well_formed(), "element past bodies");
    }
}
