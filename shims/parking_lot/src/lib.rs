//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the *subset* of the `parking_lot` API it actually uses,
//! implemented over `std::sync`. Semantics match where it matters:
//! guards are returned directly (no `LockResult`), poisoning is
//! swallowed (a poisoned std lock yields its inner guard, matching
//! parking_lot's no-poisoning behavior), and `Condvar::wait` borrows
//! the guard mutably instead of consuming it.

use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion without poisoning, `parking_lot::Mutex`-style.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard
    // out (std's wait consumes it) and put the re-acquired one back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s by mutable borrow.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        *g += 1;
        assert_eq!(*g, 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
