//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of one type. Mirrors proptest's combinator
/// names; generation is a plain function of the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Bounded recursion: each level chooses between the leaf strategy
    /// and one application of `recurse`, up to `depth` levels. The
    /// `desired_size`/`expected_branch_size` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: predicate `{}` rejected 1000 cases",
            self.reason
        );
    }
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- primitive strategies ------------------------------------------------

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 % span) as i128 + s as i128;
                v as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// `&str` strategies: a small char-class regex subset
/// (`[class]{min,max}`, e.g. `"[A-Za-z_]{1,12}"`, plus `.{min,max}`
/// where `.` means printable ASCII), which are the only string-strategy
/// forms this workspace uses.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!(
                "string strategy `{self}` not supported by the proptest shim \
                 (expected `[chars]{{min,max}}` or `.{{min,max}}`)"
            )
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[A-Za-z_]{1,12}` (or `.{0,20}`) into (alphabet, min, max).
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    // `.` = any printable ASCII character, metacharacters included —
    // what "arbitrary string" tests (e.g. fuzzing a regex parser) want.
    if let Some(rep) = pat.strip_prefix('.') {
        let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = parse_repeat_bounds(rep)?;
        return Some(((' '..='~').collect(), min, max));
    }
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = parse_repeat_bounds(rep)?;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i], cs[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

/// Parse the inside of a `{min,max}` (or `{n}`) repetition.
fn parse_repeat_bounds(rep: &str) -> Option<(usize, usize)> {
    let (min, max) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if max < min {
        return None;
    }
    Some((min, max))
}

// ---- tuples --------------------------------------------------------------

macro_rules! impl_tuple {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A.0);
impl_tuple!(A.0, B.1);
impl_tuple!(A.0, B.1, C.2);
impl_tuple!(A.0, B.1, C.2, D.3);
impl_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---- any ----------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<u32>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn string_class_strategy() {
        let mut rng = TestRng::from_seed(2);
        let s = "[A-Za-z_]{1,12}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..=12).contains(&v.len()));
            assert!(v.chars().all(|c| c.is_ascii_alphabetic() || c == '_'));
        }
    }

    #[test]
    fn union_uses_all_branches() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // only generated, never destructured
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..50 {
            let _ = s.generate(&mut rng); // must not hang or overflow
        }
    }
}
