//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u32..5, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
