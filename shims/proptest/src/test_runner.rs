//! The deterministic case runner and its RNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (the `cases` knob is the only one this
/// workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generation RNG: xoshiro256** seeded per (test name, case index),
/// so every case replays identically across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name, mixed with the case index — a stable
/// cross-platform seed.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Execute `body` for each case with a per-case deterministic RNG.
/// On failure, reports the test name, case index, and seed, then
/// re-raises the panic.
pub fn run<F: Fn(&mut TestRng)>(cfg: &ProptestConfig, name: &str, body: F) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases)
        .max(1);
    for case in 0..cases {
        let seed = seed_for(name, case);
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "proptest(shim): property `{name}` failed at case {case}/{cases} \
                 (seed {seed:#018x}; rerun replays the same sequence)"
            );
            resume_unwind(payload);
        }
    }
}
