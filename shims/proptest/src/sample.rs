//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option list");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_every_option() {
        let mut rng = TestRng::from_seed(11);
        let s = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
