//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the part of proptest's API its test-suites use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`/`prop_recursive`, integer /
//! float / char-class-regex / tuple / `Just` strategies,
//! `collection::vec`, `sample::select`, `prop_oneof!`, and the
//! [`proptest!`] macro with `#![proptest_config(...)]`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its deterministic seed
//!   (test name + case index) instead of a minimized input; rerunning
//!   the test replays the identical sequence, so failures reproduce
//!   exactly.
//! * **Panic-based assertions.** `prop_assert*` delegates to the std
//!   `assert*` family rather than returning `Result`.
//! * `PROPTEST_CASES` overrides the case count, like real proptest.

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod sample;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among same-valued strategies (optionally weighted in
/// real proptest; this shim supports the unweighted form the workspace
/// uses).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-defining macro. Supports the form used across this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(any::<bool>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when an assumption does not hold. Without
/// shrinking machinery a discarded case simply returns early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
