//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the part of criterion's API its benches use: `Criterion` with
//! `warm_up_time`/`measurement_time`/`sample_size`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros. Statistics are
//! simpler than real criterion's (mean/min/max over timed batches,
//! printed as plain text) but the bench *code* is identical, so swapping
//! the real crate back in later is a Cargo.toml-only change.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        let cfg = self.clone();
        run_one(&cfg, &name.into(), None, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_name());
        run_one(self.criterion, &label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_name());
        run_one(self.criterion, &label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts `&str`, `String`, or `BenchmarkId` as a benchmark label.
pub trait IntoBenchmarkName {
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Passed to the benchmark closure; `iter` measures the routine.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Aim each sample at measurement_time / sample_size.
        let sample_budget = self
            .cfg
            .measurement
            .checked_div(self.cfg.sample_size as u32)
            .unwrap_or(Duration::from_millis(10));
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            self.samples.push(
                elapsed
                    .checked_div(iters_per_sample as u32)
                    .unwrap_or_default(),
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        cfg,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let thr = match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("  thrpt: {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!("  thrpt: {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{} {} {}]{thr}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// Define a benchmark group function. Both real-criterion forms are
/// supported: `criterion_group!(benches, f1, f2)` and
/// `criterion_group!{name = benches; config = expr; targets = f1, f2}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("id", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
