//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the small part of `rand` it uses: `StdRng::seed_from_u64`,
//! `Rng::gen`/`gen_range`, and `SliceRandom::shuffle`/`choose`. The
//! generator is xoshiro256**, seeded via SplitMix64 — deterministic
//! across platforms, which is all the workloads need (they only require
//! a stable pseudo-random stream per seed, not `rand`'s exact one).

/// Core RNG abstraction: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here:
                // the tiny modulo bias (span ≪ 2^64) is irrelevant for
                // workload generation.
                let v = (rng.next_u64() as u128 % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 % span) as i128 + s as i128;
                v as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, auto-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = r.gen_range(0..10_000);
            assert!((0..10_000).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
