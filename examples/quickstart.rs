//! Quickstart: the whole DiffTrace loop in ~40 lines.
//!
//! 1. Run a workload twice — healthy and with an injected bug — under
//!    the simulated MPI runtime, collecting ParLOT-style traces.
//! 2. Diff the executions: filter → NLR → concept lattice → JSM →
//!    JSM_D → B-score → suspicious traces.
//! 3. Inspect the top suspect with diffNLR.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn main() {
    // One shared function-name registry so IDs align across both runs.
    let registry = Arc::new(FunctionRegistry::new());

    // The paper's §II walk-through: 16-rank odd/even sort; the bug
    // swaps the Send/Recv order in rank 5 after the 7th iteration.
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone());
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
        registry,
    );
    println!(
        "normal: {} traces, deadlocked={}; faulty: {} traces, deadlocked={}",
        normal.traces.len(),
        normal.deadlocked,
        faulty.traces.len(),
        faulty.deadlocked
    );

    // One DiffTrace iteration: keep MPI calls, summarize loops (K=10),
    // mine single-entry attributes with actual frequencies, cluster
    // with Ward linkage.
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal.traces, &faulty.traces, &params);

    println!("\nB-score: {:.3}", d.bscore);
    println!("suspicious processes: {:?}", d.suspicious_processes);
    let top = d.suspicious_threads[0];
    println!("top suspicious trace: {top}\n");

    // The paper's Figure 5: rank 5's loop flipped from L1^16 to
    // L1^7 · L0^9.
    println!("{}", d.diff_nlr(top).unwrap());
}
