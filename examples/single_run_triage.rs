//! No-reference triage (§II-A of the paper): when there is no "last
//! known good" execution, cluster the traces of the faulty run alone —
//! truncated processes look highly dissimilar from those that
//! terminated normally.
//!
//! ```text
//! cargo run --release --example single_run_triage
//! ```

use difftrace::{analyze_single, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_lulesh, LuleshConfig};

fn main() {
    // Only the faulty run exists: rank 2 skipped LagrangeLeapFrog and
    // the job stalled.
    let out = run_lulesh(
        &LuleshConfig::paper(Some(LuleshConfig::skip_bug())),
        Arc::new(FunctionRegistry::new()),
    );
    println!(
        "single faulty execution: {} traces, deadlocked={}",
        out.traces.len(),
        out.deadlocked
    );

    // The missing-thread signal alone is damning: rank 2 never opened
    // its parallel region, so it produced a single trace.
    for p in out.traces.processes() {
        let n = out.traces.process_traces(p).len();
        let marker = if n == 1 {
            "   <- spawned no workers!"
        } else {
            ""
        };
        println!("rank {p}: {n} traces{marker}");
    }

    let params = Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let report = analyze_single(&out.traces, &params, 4);
    println!("\nclusters (largest first):");
    for (i, c) in report.clusters.iter().enumerate() {
        println!(
            "  {i}: {}",
            c.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "\noutliers: {:?}",
        report
            .outliers
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "\nrank 2 never entered the Lagrange phase: it spawned no\n\
         workers, and its master trace lacks the whole kernel family —\n\
         at k = 4 it is a singleton cluster, flagged with no reference\n\
         run at all."
    );
}
