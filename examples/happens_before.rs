//! Happens-before mining on a deadlocked run — the paper's §VII-2
//! future-work extension (logical timestamps / OTF2-style event logs /
//! PRODOMETER-style progress triage).
//!
//! ```text
//! cargo run --release --example happens_before
//! ```

use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn main() {
    // The §II-G dlBug: rank 5 receives on a tag nobody sends.
    let out = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::dl_bug())),
        Arc::new(FunctionRegistry::new()),
    );
    assert!(out.deadlocked);

    println!("== OTF2-style causally-stamped event log (tail) ==");
    let log = out.hb.to_event_log();
    for line in log.lines().rev().take(12).collect::<Vec<_>>().iter().rev() {
        println!("{line}");
    }

    println!("\ntotal MPI events logged: {}", out.hb.len());

    println!("\n== last event per rank ==");
    for (p, e) in out.hb.last_event_per_rank().iter().enumerate() {
        if let Some(e) = e {
            println!("rank {p:>2}: {:<14} lamport t={}", e.name, e.vc.lamport());
        }
    }

    let least = out.hb.least_progressed_ranks();
    println!(
        "\nleast-progressed (causally minimal) ranks: {least:?}\n\
         — the stall's origin neighbourhood; rank 5's bogus receive\n\
         keeps its neighbours (and transitively everyone) from passing\n\
         their next exchange, so the minimal frontier sits around it."
    );
}
