//! Hunting the ILCS OpenMP bug (§IV-B): an unprotected champion update
//! in worker thread 4 of process 6. Sweeps the filter/attribute grid
//! like the paper's Table VI and prints the ranking table plus the
//! Figure 7a diffNLR.
//!
//! ```text
//! cargo run --release --example ilcs_bug_hunt
//! ```

use difftrace::{
    diff_runs, render_ranking, sweep, AttrConfig, AttrKind, FilterConfig, FreqMode, KeepClass,
    Params,
};
use dt_trace::{FunctionRegistry, TraceId};
use std::sync::Arc;
use workloads::{run_ilcs, IlcsConfig};

fn main() {
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_ilcs(&IlcsConfig::paper(None), registry.clone()).traces;
    let faulty = run_ilcs(
        &IlcsConfig::paper(Some(IlcsConfig::omp_crit_bug())),
        registry,
    )
    .traces;

    // Filter grid: memory / OpenMP-critical / user-code classes.
    let cust = KeepClass::Custom("^CPU_".to_string());
    let mut filters = Vec::new();
    for drop_returns in [true, false] {
        filters.push(FilterConfig {
            drop_returns,
            drop_plt: true,
            keep: vec![KeepClass::Memory, KeepClass::OmpCritical, cust.clone()],
            nlr_k: 10,
        });
    }
    let rows = sweep(
        &normal,
        &faulty,
        &filters,
        &AttrConfig::ALL,
        cluster::Method::Ward,
    );
    println!("{}", render_ranking(&rows));
    println!("every informative row flags trace 6.4 — the planted bug site\n");

    let params = Params::new(
        filters[0].clone(),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    println!("{}", d.diff_nlr(TraceId::new(6, 4)).unwrap());
    println!(
        "the normal run brackets its memcpy with GOMP_critical_start/end;\n\
         the buggy run does not — exactly the paper's Figure 7a."
    );
}
