//! ParLOT trace-compression statistics across all three workloads —
//! the §I claim ("compression ratios exceeding 21,000 … a few
//! kilobytes per second per core") and the §V LULESH numbers.
//!
//! ```text
//! cargo run --release --example compression_stats
//! ```

use dt_trace::{FunctionRegistry, TraceSet, TraceSetStats};
use std::sync::Arc;
use workloads::{run_ilcs, run_lulesh, run_oddeven, IlcsConfig, LuleshConfig, OddEvenConfig};

fn report(name: &str, set: &TraceSet) {
    let stats = TraceSetStats::measure(set);
    println!("== {name} ==");
    println!("  traces:                      {}", set.len());
    println!(
        "  calls / process (avg):       {:.0}",
        stats.avg_calls_per_process()
    );
    println!(
        "  distinct fns / process (avg): {:.0}",
        stats.avg_distinct_per_process()
    );
    println!(
        "  compressed / thread (avg):   {:.2} KB",
        stats.avg_compressed_bytes_per_thread() / 1024.0
    );
    println!(
        "  compression ratio:           {:.0}×",
        stats.overall_ratio()
    );
    println!();
}

fn main() {
    let reg = || Arc::new(FunctionRegistry::new());
    report(
        "odd/even sort (16 ranks)",
        &run_oddeven(&OddEvenConfig::paper(None), reg()).traces,
    );
    report(
        "ILCS-TSP (8 ranks × 4 workers)",
        &run_ilcs(&IlcsConfig::paper(None), reg()).traces,
    );
    report(
        "LULESH proxy (8 ranks × 4 threads, paper-scale)",
        &run_lulesh(&LuleshConfig::paper_scale(), reg()).traces,
    );
    println!(
        "loopier traces compress better — the LULESH proxy's per-element\n\
         kernels push the ratio into the hundreds, which is what makes\n\
         whole-program tracing practical (ParLOT, §I)."
    );
}
