//! The §II-G dlBug walk-through: a *real* MPI deadlock, detected by
//! the simulator's quiescence check, diagnosed by diffNLR — plus the
//! ParLOT trace-file round trip (traces are stored compressed and
//! decompressed by the analysis front-end).
//!
//! ```text
//! cargo run --example oddeven_deadlock
//! ```

use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::{store, FunctionRegistry, TraceId};
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn main() {
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone());
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::dl_bug())),
        registry,
    );
    assert!(faulty.deadlocked, "dlBug must deadlock");
    println!(
        "faulty run aborted: {:?} ({} rank errors)",
        faulty.abort_reason,
        faulty.errors.len()
    );

    // ParLOT writes compressed per-thread trace files; round-trip the
    // faulty execution through the on-disk format.
    let dir = std::env::temp_dir().join("difftrace_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("faulty.dtts");
    store::save(&faulty.traces, &path).expect("save traces");
    let loaded = store::load(&path).expect("load traces");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "stored {} traces in {} bytes ({} bytes/trace) at {}",
        loaded.len(),
        bytes,
        bytes as usize / loaded.len(),
        path.display()
    );

    // Diff the pair and look at rank 5 — the planted culprit.
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal.traces, &loaded, &params);
    println!("\nsuspicious processes: {:?}", d.suspicious_processes);
    println!("\n{}", d.diff_nlr(TraceId::master(5)).unwrap());
    println!(
        "note: the faulty trace never reaches MPI_Finalize — the hang\n\
         signature the paper highlights in Figure 6."
    );
    std::fs::remove_file(&path).ok();
}
