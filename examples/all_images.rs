//! Main-image vs all-images tracing (ParLOT's two capture levels,
//! §II-A of the paper). The paper's runs traced the *main image* only
//! and name "collecting more profound traces (e.g., ParLOT(all
//! images))" as the way to sharpen results — the simulator supports
//! both; this example shows what the extra level buys the Table I
//! filters.
//!
//! ```text
//! cargo run --release --example all_images
//! ```

use difftrace::filter::table_i_catalog;
use dt_trace::FunctionRegistry;
use mpisim::{run, ReduceOp, SimConfig};
use std::sync::Arc;

fn ping_pong(cfg: SimConfig) -> dt_trace::TraceSet {
    run(cfg, Arc::new(FunctionRegistry::new()), |rank| {
        rank.init()?;
        let peer = 1 - rank.rank();
        for i in 0..8 {
            if rank.rank() == 0 {
                rank.send(peer, i, &[i64::from(i)])?;
                let _ = rank.recv(peer, i)?;
            } else {
                let got = rank.recv(peer, i)?;
                rank.send(peer, i, &got)?;
            }
        }
        let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
        rank.finalize()
    })
    .traces
}

fn main() {
    let main_image = ping_pong(SimConfig::new(2));
    let all_images = ping_pong(SimConfig::new(2).with_internals());

    println!(
        "{:<22} {:>12} {:>12}",
        "Table I filter", "main image", "all images"
    );
    println!("{}", "-".repeat(48));
    for (name, f) in table_i_catalog(10) {
        let a = f.coverage(&main_image);
        let b = f.coverage(&all_images);
        println!(
            "{name:<22} {:>7} evts {:>7} evts",
            a.kept_events, b.kept_events
        );
    }
    println!(
        "\nthe Memory / Network / Poll / MPI-internal rows only light up\n\
         in all-images mode — the \"dial into\" ability the paper's §VI\n\
         highlights, and the knob its §IV-D future work reaches for."
    );
}
