//! Triage on the LULESH proxy (§V): rank 2 never calls
//! `LagrangeLeapFrog`, so its neighbours starve in the halo exchange
//! and the whole job stalls. DiffTrace's ranking pins rank 2; diffNLR
//! shows where each process stopped making progress.
//!
//! ```text
//! cargo run --release --example lulesh_triage
//! ```

use difftrace::{
    diff_runs, render_ranking, sweep, AttrConfig, AttrKind, FilterConfig, FreqMode, Params,
};
use dt_trace::{FunctionRegistry, TraceId};
use std::sync::Arc;
use workloads::{run_lulesh, LuleshConfig};

fn main() {
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_lulesh(&LuleshConfig::paper(None), registry.clone()).traces;
    let faulty_run = run_lulesh(
        &LuleshConfig::paper(Some(LuleshConfig::skip_bug())),
        registry,
    );
    println!(
        "faulty run: deadlocked={} abort={:?}",
        faulty_run.deadlocked, faulty_run.abort_reason
    );
    let faulty = faulty_run.traces;

    let filters = vec![
        FilterConfig::everything(10),
        FilterConfig {
            drop_returns: false,
            ..FilterConfig::everything(10)
        },
    ];
    let rows = sweep(
        &normal,
        &faulty,
        &filters,
        &AttrConfig::ALL,
        cluster::Method::Ward,
    );
    println!("{}", render_ranking(&rows));

    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    for p in [2u32, 1] {
        println!("{}", d.diff_nlr(TraceId::master(p)).unwrap());
    }
    println!(
        "rank 2's trace is missing the whole Lagrange phase; rank 1's\n\
         trace is truncated inside the halo exchange it was waiting on."
    );
}
