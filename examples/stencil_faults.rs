//! The heat-diffusion stencil workload: three fault flavours and what
//! call-trace diffing can (and cannot) see.
//!
//! ```text
//! cargo run --release --example stencil_faults
//! ```

use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_stencil, StencilConfig, StencilFault};

fn main() {
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );

    for (name, fault) in [
        (
            "wrong-neighbor (deadlock)",
            StencilFault::WrongNeighbor {
                rank: 3,
                wrong_peer: 6,
            },
        ),
        (
            // At the heat front: blocks the flow into rank 1.
            "stale-halo (silent, wrong result)",
            StencilFault::StaleHalo {
                rank: 1,
                after_iter: 2,
            },
        ),
        (
            // Anti-diffusion at the heat front: the field is wrong and
            // the run never converges; per-iteration call shape is
            // unchanged, only loop trip counts move.
            "flipped-sign (silent, loop-count change only)",
            StencilFault::FlippedSign { rank: 1 },
        ),
    ] {
        let registry = Arc::new(FunctionRegistry::new());
        let mut cfg = StencilConfig::default_8();
        let (normal, nfield) = run_stencil(&cfg, registry.clone());
        cfg.fault = Some(fault);
        let (faulty, ffield) = run_stencil(&cfg, registry);

        let d = diff_runs(&normal.traces, &faulty.traces, &params);
        println!("== {name} ==");
        println!(
            "  deadlocked: {}   fields differ: {}   B-score: {:.3}",
            faulty.deadlocked,
            nfield != ffield,
            d.bscore
        );
        println!("  suspicious processes: {:?}", d.suspicious_processes);
        if let Some(&top) = d.suspicious_threads.first() {
            let dn = d.diff_nlr(top).unwrap();
            if dn.is_identical() {
                println!("  diffNLR({top}): identical traces");
            } else {
                println!("{}", indent(&dn.render()));
            }
        } else {
            println!(
                "  no suspects — the fault left no footprint in the call\n\
                 \x20 traces (the boundary of whole-program trace diffing;\n\
                 \x20 the paper's future work points at data-aware attributes)"
            );
        }
        println!();
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
